#!/usr/bin/env bash
# Convenience wrapper around the tmbench unified benchmark runner, so local
# runs and the CI bench-smoke job invoke identical command lines.
#
# Usage:
#   scripts/bench.sh quick [extra tmbench flags...]
#       Short smoke run (25 ms per data point) writing BENCH_results.json.
#       This is exactly what the CI bench-smoke job runs.
#   scripts/bench.sh full [extra tmbench flags...]
#       Publication-style run (1 s per data point, 3 repetitions) writing
#       BENCH_results.json.
#   scripts/bench.sh gate [BASELINE] [GATE_PCT]
#       Diff BENCH_results.json against BASELINE (default BENCH_baseline.json)
#       with a GATE_PCT% regression threshold (default 10); exits non-zero on
#       regression.
#   scripts/bench.sh check [FILE]
#       Validate a report file (default BENCH_results.json) against the
#       schema.
set -euo pipefail

cd "$(dirname "$0")/.."

profile="${1:-quick}"
shift || true

tmbench() {
    cargo run --release --quiet -p tlstm-bench --bin tmbench -- "$@"
}

case "$profile" in
  quick)
    TLSTM_BENCH_MS="${TLSTM_BENCH_MS:-25}" \
      tmbench --quick --out BENCH_results.json "$@"
    ;;
  full)
    TLSTM_BENCH_MS="${TLSTM_BENCH_MS:-1000}" TLSTM_BENCH_REPS="${TLSTM_BENCH_REPS:-3}" \
      tmbench --out BENCH_results.json "$@"
    ;;
  gate)
    baseline="${1:-BENCH_baseline.json}"
    gate_pct="${2:-10}"
    tmbench --baseline "$baseline" --current BENCH_results.json --gate "$gate_pct"
    ;;
  check)
    tmbench --check-schema "${1:-BENCH_results.json}"
    ;;
  *)
    echo "usage: $0 {quick|full|gate [baseline] [pct]|check [file]} [tmbench flags...]" >&2
    exit 2
    ;;
esac
