//! Shared deterministic harness for the workspace's multi-threaded STM tests.
//!
//! Three recurring needs of the integration/stress tests live here:
//!
//! * [`TestRng`] — a seeded, deterministic PRNG so every test run replays the
//!   same operation streams (override the seed per call site, never from
//!   ambient entropy);
//! * [`bounded_threads`] — caps test thread counts at the machine's
//!   parallelism so oversubscribed CI runners don't turn contention tests
//!   into multi-minute crawls;
//! * [`with_watchdog`] — runs a test body on a helper thread and panics if it
//!   exceeds its deadline, turning a livelocked or deadlocked STM run into a
//!   loud failure instead of a CI job that hangs forever;
//! * [`EnvVarGuard`] — scoped, mutex-serialised environment-variable
//!   overrides, so tests of env-driven configuration (`TLSTM_BENCH_*`) can't
//!   race each other inside one test process;
//! * [`CountingAlloc`] — an allocation-counting global allocator for the
//!   zero-allocation hot-path tests;
//! * [`CrashPoints`] — a named crash-point registry for deterministic
//!   crash-injection tests (the `txlog` WAL writer honors these), zero-cost
//!   when disabled;
//! * [`TempDir`] — a unique scratch directory removed on drop, for tests that
//!   exercise real file I/O (WAL segments, snapshots).

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Process-wide counter behind [`CountingAlloc`].
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// An allocation-counting wrapper around the system allocator.
///
/// Install it in a test binary with
/// `#[global_allocator] static GLOBAL: CountingAlloc = CountingAlloc;` and
/// read the running count with [`allocation_count`]. Every `alloc`,
/// `alloc_zeroed` and `realloc` increments the counter; `dealloc` does not.
/// Keep one measuring `#[test]` per binary — tests in a binary run
/// concurrently and would pollute each other's counts.
pub struct CountingAlloc;

impl std::fmt::Debug for CountingAlloc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CountingAlloc")
    }
}

/// Number of heap allocations performed by this process so far (only counted
/// while [`CountingAlloc`] is installed as the global allocator).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Default deadline applied by [`with_default_watchdog`]. Generous enough for
/// debug builds on slow CI, far below any CI-level job timeout.
pub const DEFAULT_TEST_DEADLINE: Duration = Duration::from_secs(120);

/// A small deterministic PRNG (xorshift*) for reproducible test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (zero is remapped to a constant).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// `true` with probability `percent`/100.
    pub fn percent(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Caps a desired test thread count at the machine's available parallelism
/// (and at 1 from below), so contention tests scale down on small runners.
pub fn bounded_threads(desired: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(2);
    desired.clamp(1, available.max(1))
}

/// Runs `body` on a helper thread and waits at most `deadline` for it.
///
/// If the body finishes, its panic (if any) is propagated to the caller so
/// ordinary assertion failures keep working. If the deadline expires the
/// calling test panics with a diagnostic — the runaway helper thread is
/// leaked, which is acceptable in a test process that is about to fail.
///
/// # Panics
///
/// Panics if `body` panics or does not finish within `deadline`.
pub fn with_watchdog<T: Send + 'static>(
    deadline: Duration,
    body: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::Builder::new()
        .name("test-body".to_string())
        .spawn(move || {
            let _ = tx.send(body());
        })
        .expect("failed to spawn watchdog test thread");
    match rx.recv_timeout(deadline) {
        Ok(value) => {
            worker.join().expect("test body panicked after reporting");
            value
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The body panicked before sending: join to propagate the panic.
            match worker.join() {
                Err(panic) => std::panic::resume_unwind(panic),
                Ok(()) => unreachable!("worker disconnected without panicking"),
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // Leave a post-mortem: dump the txobs trace rings (per-thread
            // event history with thread labels) before killing the test.
            // Empty unless the hung test enabled tracing, but stress tests
            // that opt in get a timeline of what each thread last did.
            eprintln!(
                "watchdog: dumping txobs trace rings (tracing {}):",
                if txobs::tracing_enabled() {
                    "enabled"
                } else {
                    "disabled — enable with txobs::set_tracing(true) for event history"
                }
            );
            txobs::dump_to_stderr();
            panic!(
                "test exceeded its {:?} watchdog deadline — probable deadlock or livelock \
                 in the STM runtime under test",
                deadline
            );
        }
    }
}

/// [`with_watchdog`] with the [`DEFAULT_TEST_DEADLINE`].
pub fn with_default_watchdog<T: Send + 'static>(body: impl FnOnce() -> T + Send + 'static) -> T {
    with_watchdog(DEFAULT_TEST_DEADLINE, body)
}

/// Serialises every environment-variable access that goes through
/// [`EnvVarGuard`]. Rust's test harness runs tests of one binary on multiple
/// threads, and `std::env::set_var` racing a concurrent `getenv` is undefined
/// behaviour on most platforms — so all env-touching tests must go through
/// this lock.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A scoped environment-variable override.
///
/// [`EnvVarGuard::set`] acquires the process-wide env lock, remembers the
/// variable's previous state and sets the new value; dropping the guard
/// restores the variable and releases the lock. Tests that only *read* the
/// environment should hold [`EnvVarGuard::lock_only`] for their duration so
/// they cannot observe another test's half-applied overrides.
#[derive(Debug)]
#[must_use = "the override is reverted when the guard drops"]
pub struct EnvVarGuard {
    var: Option<(String, Option<String>)>,
    _lock: Option<MutexGuard<'static, ()>>,
}

impl EnvVarGuard {
    fn lock() -> MutexGuard<'static, ()> {
        // A previous test panicking while holding the lock poisons it; the
        // environment is still in a defined state (its Drop ran), so continue.
        ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the env lock and sets `name` to `value`.
    pub fn set(name: &str, value: &str) -> EnvVarGuard {
        let lock = Self::lock();
        let mut guard = Self::set_unlocked(name, value);
        guard._lock = Some(lock);
        guard
    }

    /// Sets `name` to `value` *without* acquiring the env lock — only valid
    /// while another [`EnvVarGuard`] in the same scope already holds it
    /// (e.g. to override a second variable).
    pub fn set_unlocked(name: &str, value: &str) -> EnvVarGuard {
        let previous = std::env::var(name).ok();
        std::env::set_var(name, value);
        EnvVarGuard {
            var: Some((name.to_string(), previous)),
            _lock: None,
        }
    }

    /// Acquires the env lock without overriding anything (for tests that read
    /// the environment and must not race concurrent overrides).
    pub fn lock_only() -> EnvVarGuard {
        EnvVarGuard {
            var: None,
            _lock: Some(Self::lock()),
        }
    }
}

/// A named crash-point registry for deterministic crash-injection tests.
///
/// Production code inserts `if crash_points.should_crash("component::point")`
/// checks at interesting places (the `txlog` WAL writer honors the append
/// path `wal::before-append`, `wal::mid-frame`,
/// `wal::after-append-before-fsync`, `wal::after-fsync-before-ack` and the
/// rotation path `wal::before-rotate-fsync`,
/// `wal::after-create-before-dirsync`, `wal::after-rotate-before-ack` —
/// `txlog::crash_points` holds the authoritative list); tests
/// [`arm`](CrashPoints::arm) one
/// point and the component simulates a process crash when it is reached —
/// typically by abandoning all further I/O and failing every in-flight
/// acknowledgement.
///
/// The registry is designed to be **zero-cost when disabled**: the default
/// (disarmed) handle answers `should_crash` with a single relaxed atomic load
/// and never takes a lock. Firing is one-shot — the first matching check
/// consumes the armed point, so a "crashed" component that keeps calling
/// `should_crash` on its way down does not re-trigger.
///
/// Handles are cheap clones sharing one registry, so a test can keep a handle
/// while the component under test owns another. Each handle tree is
/// independent: concurrently running tests arm their own registries without
/// cross-talk (this crate deliberately provides no process-global instance;
/// `txlog` hoists its own env-armed default into one). For cross-process
/// experiments, [`CrashPoints::from_env`] arms the point named by an
/// environment variable at construction time.
#[derive(Debug, Clone, Default)]
pub struct CrashPoints {
    inner: Arc<CrashInner>,
}

#[derive(Debug, Default)]
struct CrashInner {
    /// Fast-path gate: `false` ⇒ nothing armed, `should_crash` is one load.
    enabled: AtomicBool,
    armed: Mutex<Option<String>>,
    fired: Mutex<Option<String>>,
}

impl CrashPoints {
    /// A disarmed registry (every `should_crash` answers `false`).
    pub fn disabled() -> Self {
        CrashPoints::default()
    }

    /// A registry armed from the environment variable `var`, if it is set to
    /// a non-empty point name; disarmed otherwise.
    pub fn from_env(var: &str) -> Self {
        let points = CrashPoints::default();
        if let Ok(point) = std::env::var(var) {
            if !point.is_empty() {
                points.arm(&point);
            }
        }
        points
    }

    /// Arms `point`: the next `should_crash(point)` returns `true` (once).
    /// Re-arming replaces any previously armed point.
    pub fn arm(&self, point: &str) {
        *self.inner.armed.lock().unwrap() = Some(point.to_string());
        self.inner.enabled.store(true, Ordering::Release);
    }

    /// Disarms the registry without clearing the fired record.
    pub fn disarm(&self) {
        self.inner.enabled.store(false, Ordering::Release);
        *self.inner.armed.lock().unwrap() = None;
    }

    /// `true` iff `point` is the armed crash point. The first matching call
    /// consumes the armed point (one-shot) and records it as fired. When
    /// nothing is armed this is a single relaxed atomic load.
    #[inline]
    pub fn should_crash(&self, point: &str) -> bool {
        if !self.inner.enabled.load(Ordering::Acquire) {
            return false;
        }
        self.check_slow(point)
    }

    #[cold]
    fn check_slow(&self, point: &str) -> bool {
        let mut armed = self.inner.armed.lock().unwrap();
        if armed.as_deref() == Some(point) {
            *self.inner.fired.lock().unwrap() = armed.take();
            self.inner.enabled.store(false, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// The point that fired, if any did.
    pub fn fired(&self) -> Option<String> {
        self.inner.fired.lock().unwrap().clone()
    }
}

/// Monotonic counter making [`TempDir`] names unique within one process.
static TEMP_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A uniquely named scratch directory under the system temp dir, removed
/// (recursively) when dropped. For tests that exercise real file I/O.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `<tmp>/<prefix>-<pid>-<seq>`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn new(prefix: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{}",
            std::process::id(),
            TEMP_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("failed to create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

impl Drop for EnvVarGuard {
    fn drop(&mut self) {
        if let Some((name, previous)) = self.var.take() {
            match previous {
                Some(value) => std::env::set_var(&name, value),
                None => std::env::remove_var(&name),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = TestRng::new(0);
        assert_ne!(r.next_u64(), 0);
        for _ in 0..100 {
            assert!(r.range(3, 9) < 9);
            let _ = r.percent(50);
        }
    }

    #[test]
    fn bounded_threads_clamps() {
        assert_eq!(bounded_threads(0), 1);
        assert!(bounded_threads(1_000_000) >= 1);
        assert!(bounded_threads(2) <= 2);
    }

    #[test]
    fn watchdog_returns_value() {
        assert_eq!(with_watchdog(Duration::from_secs(5), || 42), 42);
    }

    #[test]
    fn watchdog_propagates_body_panic() {
        let result = std::panic::catch_unwind(|| {
            with_watchdog(Duration::from_secs(5), || panic!("inner failure"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn env_guard_sets_and_restores() {
        let name = "TLSTM_TESTUTIL_ENV_GUARD_PROBE";
        {
            let _outer = EnvVarGuard::set(name, "outer");
            assert_eq!(std::env::var(name).as_deref(), Ok("outer"));
            {
                let _inner = EnvVarGuard::set_unlocked(name, "inner");
                assert_eq!(std::env::var(name).as_deref(), Ok("inner"));
            }
            assert_eq!(std::env::var(name).as_deref(), Ok("outer"));
        }
        assert!(std::env::var(name).is_err(), "guard must remove the var");
    }

    #[test]
    fn crash_points_fire_once_and_only_when_armed() {
        let points = CrashPoints::disabled();
        assert!(!points.should_crash("wal::before-append"));
        assert_eq!(points.fired(), None);

        points.arm("wal::mid-frame");
        assert!(!points.should_crash("wal::before-append"), "wrong point");
        assert!(points.should_crash("wal::mid-frame"));
        assert!(!points.should_crash("wal::mid-frame"), "firing is one-shot");
        assert_eq!(points.fired(), Some("wal::mid-frame".to_string()));

        // Clones share the registry.
        let clone = points.clone();
        points.arm("wal::after-fsync-before-ack");
        assert!(clone.should_crash("wal::after-fsync-before-ack"));
        assert!(!points.should_crash("wal::after-fsync-before-ack"));

        points.arm("x");
        points.disarm();
        assert!(!points.should_crash("x"));
    }

    #[test]
    fn crash_points_arm_from_env() {
        let var = "TLSTM_TESTUTIL_CRASH_POINT_PROBE";
        {
            let _guard = EnvVarGuard::set(var, "wal::before-append");
            let points = CrashPoints::from_env(var);
            assert!(points.should_crash("wal::before-append"));
        }
        let _guard = EnvVarGuard::lock_only();
        let points = CrashPoints::from_env(var);
        assert!(!points.should_crash("wal::before-append"));
    }

    #[test]
    fn temp_dir_is_unique_and_removed_on_drop() {
        let a = TempDir::new("testutil-probe");
        let b = TempDir::new("testutil-probe");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        std::fs::write(a.path().join("f"), b"x").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "temp dir must be removed on drop");
    }

    #[test]
    fn watchdog_fires_on_hang() {
        let result = std::panic::catch_unwind(|| {
            with_watchdog(Duration::from_millis(50), || loop {
                std::thread::sleep(Duration::from_millis(10));
            });
        });
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("watchdog"), "unexpected panic message: {msg}");
    }
}
