//! Torn-tail corruption matrix: a crash can leave the final frame of the
//! newest segment in any half-written or bit-damaged state. For a small log
//! this test truncates the file at **every** byte offset of the final frame
//! and flips **every** bit of its header and CRC; recovery must never panic,
//! must stop at the last valid LSN, and must preserve every earlier record.

use std::path::Path;

use tlstm_testutil::TempDir;
use txlog::frame::{encode_frame_into, FRAME_HEADER_LEN};
use txlog::{files, recover};

/// Builds a segment of `n` records with distinct payload lengths and returns
/// `(bytes, frame boundaries)` — `boundaries[i]` is the byte offset where
/// record `i`'s frame starts; the file ends at `boundaries[n]`.
fn build_log(n: u64) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut boundaries = vec![0];
    for lsn in 0..n {
        let payload: Vec<u8> = (0..(7 + lsn * 3)).map(|i| (lsn * 31 + i) as u8).collect();
        encode_frame_into(&mut bytes, lsn, &payload);
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

fn write_log(dir: &Path, bytes: &[u8]) {
    std::fs::write(files::segment_path(dir, 0), bytes).unwrap();
}

/// Recovery of a log whose final frame was damaged must yield exactly the
/// records before it, and repair the file so a re-scan is clean.
fn assert_recovers_prefix(dir: &Path, want_records: u64, context: &str) {
    let log = recover(dir).unwrap_or_else(|e| panic!("{context}: recovery errored: {e}"));
    assert_eq!(log.next_lsn, want_records, "{context}: wrong replay stop");
    assert_eq!(log.records.len() as u64, want_records, "{context}");
    for (i, (lsn, _)) in log.records.iter().enumerate() {
        assert_eq!(*lsn, i as u64, "{context}: records must stay dense");
    }
    // The repair must leave a cleanly scannable file.
    let again = recover(dir).unwrap();
    assert_eq!(again.next_lsn, want_records, "{context}: repair not clean");
    assert!(
        again.diagnostics.is_empty(),
        "{context}: {:?}",
        again.diagnostics
    );
}

#[test]
fn truncation_at_every_byte_offset_of_the_final_frame() {
    let records = 4u64;
    let (bytes, boundaries) = build_log(records);
    let last_start = boundaries[records as usize - 1];
    let dir = TempDir::new("txlog-torn");
    for cut in last_start..bytes.len() {
        write_log(dir.path(), &bytes[..cut]);
        // cut == last_start removes the final frame exactly; anything past it
        // leaves a torn frame that must be discarded the same way.
        assert_recovers_prefix(dir.path(), records - 1, &format!("cut at byte {cut}"));
    }
    // The untouched log recovers fully.
    write_log(dir.path(), &bytes);
    assert_recovers_prefix(dir.path(), records, "no truncation");
}

#[test]
fn every_bit_flip_in_the_final_frame_header_and_crc() {
    let records = 3u64;
    let (bytes, boundaries) = build_log(records);
    let last_start = boundaries[records as usize - 1];
    let dir = TempDir::new("txlog-torn");
    // The header (magic, len, lsn) and the CRC field itself.
    for offset in last_start..last_start + FRAME_HEADER_LEN {
        for bit in 0..8u8 {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 1 << bit;
            write_log(dir.path(), &corrupt);
            assert_recovers_prefix(
                dir.path(),
                records - 1,
                &format!("flip byte {offset} bit {bit}"),
            );
        }
    }
}

#[test]
fn every_bit_flip_in_the_final_frame_payload() {
    let records = 3u64;
    let (bytes, boundaries) = build_log(records);
    let last_start = boundaries[records as usize - 1] + FRAME_HEADER_LEN;
    let dir = TempDir::new("txlog-torn");
    for offset in last_start..bytes.len() {
        for bit in 0..8u8 {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 1 << bit;
            write_log(dir.path(), &corrupt);
            assert_recovers_prefix(
                dir.path(),
                records - 1,
                &format!("flip payload byte {offset} bit {bit}"),
            );
        }
    }
}

/// The same torn-tail shapes, produced end-to-end by the fault injector
/// instead of post-hoc file surgery: an ENOSPC short write halfway through a
/// frame, whose cleanup truncation also fails, leaves a genuinely torn
/// segment straight from the writer — recovery must repair it identically.
/// The batch the fault lands on varies, so the torn frame sits at different
/// offsets and behind different numbers of acked records each round.
#[test]
fn fault_injected_short_writes_produce_repairable_torn_tails() {
    use std::sync::Arc;
    use tlstm_testutil::CrashPoints;
    use txlog::{
        Fault, FaultError, FaultFs, FsyncPolicy, LogWriter, RetryPolicy, StorageOp, WalError,
        WalOptions,
    };

    for fail_at in 0..4u64 {
        let context = format!("short write on record {fail_at}");
        let dir = TempDir::new("txlog-torn-fault");
        let fs = FaultFs::new();
        let plan = fs.plan();
        let writer = LogWriter::open(
            dir.path(),
            &WalOptions {
                start_lsn: 0,
                fsync: FsyncPolicy::Always,
                crash_points: CrashPoints::disabled(),
                preallocate_bytes: 64 * 1024,
                fs: Arc::new(fs),
                retry: RetryPolicy::none(),
            },
        )
        .unwrap();
        for lsn in 0..fail_at {
            let payload: Vec<u8> = (0..(7 + lsn * 3)).map(|i| (lsn * 31 + i) as u8).collect();
            writer.append(lsn, payload).unwrap().wait().unwrap();
        }
        plan.arm(StorageOp::Write, Fault::once(FaultError::Enospc).short());
        plan.arm(StorageOp::SetLen, Fault::forever(FaultError::Eio));
        let payload: Vec<u8> = (0..64).collect();
        let outcome = writer.append(fail_at, payload).unwrap().wait();
        assert_eq!(
            outcome,
            Err(WalError::storage(
                StorageOp::Write,
                std::io::ErrorKind::StorageFull
            )),
            "{context}"
        );
        drop(writer);
        assert_recovers_prefix(dir.path(), fail_at, &context);
    }
}

#[test]
fn corruption_in_a_middle_frame_discards_everything_after_it() {
    // Not a torn tail, but the same "stop at the last valid LSN" rule: a
    // damaged middle frame invalidates it and everything behind it (the log
    // is only trusted as a dense prefix).
    let records = 5u64;
    let (bytes, boundaries) = build_log(records);
    let dir = TempDir::new("txlog-torn");
    let mid_start = boundaries[2];
    let mut corrupt = bytes.clone();
    corrupt[mid_start + FRAME_HEADER_LEN] ^= 0x01; // payload byte of record 2
    write_log(dir.path(), &corrupt);
    assert_recovers_prefix(dir.path(), 2, "mid-frame corruption");
}
