//! The disk-fault matrix (ISSUE 8 tentpole, txlog side): every injected
//! storage fault — EIO/ENOSPC, short writes, fsync failures, at every
//! writer-path site, under both fsync policies — must end in exactly one of
//! two outcomes:
//!
//! 1. acknowledged records survive a follow-up recovery, or
//! 2. the caller observed a typed [`WalError`] (never a panic).
//!
//! Plus the pins of the failure-model policy: transient write errors are
//! retried with backoff and absorbed; a failed fsync is terminal and can
//! never advance the durable watermark (fsyncgate); a poisoned log refuses
//! new work with [`WalError::Degraded`] while in-flight victims get the
//! root-cause [`WalError::Storage`].
//!
//! A process-wide panic-hook counter verifies the "zero panics" half of the
//! contract: no test in this binary expects a panic, so the counter must
//! stay zero however the faults land in the writer threads.

use std::io::ErrorKind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

use tlstm_testutil::{with_default_watchdog, CrashPoints, TempDir};
use txlog::{
    recover, Fault, FaultError, FaultFs, FsyncPolicy, LogWriter, RetryPolicy, StorageOp, WalError,
    WalOptions,
};

const TEST_PREALLOC: u64 = 64 * 1024;

static PANICS: AtomicUsize = AtomicUsize::new(0);

/// Counts every panic in the process (writer threads included) on top of the
/// default hook. Tests assert the count stays zero — a fault that panicked a
/// stage thread instead of propagating a typed error would be invisible to
/// the test body otherwise (stage panics are swallowed by the join in
/// `LogWriter::drop`).
fn install_panic_counter() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            PANICS.fetch_add(1, Ordering::SeqCst);
            previous(info);
        }));
    });
}

fn options(fsync: FsyncPolicy, fs: &FaultFs, retry: RetryPolicy) -> WalOptions {
    WalOptions {
        start_lsn: 0,
        fsync,
        crash_points: CrashPoints::disabled(),
        preallocate_bytes: TEST_PREALLOC,
        fs: Arc::new(fs.clone()),
        retry,
    }
}

fn payload(lsn: u64) -> Vec<u8> {
    format!("record-{lsn}").into_bytes()
}

/// Appends and acknowledges records `0..n`.
fn ack_prefix(writer: &LogWriter, n: u64) {
    for lsn in 0..n {
        writer.append(lsn, payload(lsn)).unwrap().wait().unwrap();
    }
}

/// Asserts the recovered log is exactly the dense records `0..expected` (the
/// payloads of [`payload`]).
#[track_caller]
fn assert_dense_prefix(dir: &std::path::Path, expected: std::ops::RangeInclusive<u64>, ctx: &str) {
    let log = recover(dir).unwrap();
    assert!(
        expected.contains(&log.next_lsn),
        "{ctx}: recovered {} records, wanted {expected:?}",
        log.next_lsn
    );
    assert_eq!(
        log.records,
        (0..log.next_lsn)
            .map(|l| (l, payload(l)))
            .collect::<Vec<_>>(),
        "{ctx}: recovered history is not a dense prefix"
    );
}

/// Transient write errors are absorbed: with `n ≤ max_retries` injected
/// failures the append retries (truncating the short prefix in between) and
/// the committer never sees an error.
#[test]
fn transient_write_faults_are_retried_and_acked() {
    install_panic_counter();
    with_default_watchdog(|| {
        for n in 1..=3u32 {
            for short in [false, true] {
                let ctx = format!("times={n} short={short}");
                let dir = TempDir::new("txlog-fault-retry");
                let fs = FaultFs::new();
                let plan = fs.plan();
                let writer = LogWriter::open(
                    dir.path(),
                    &options(FsyncPolicy::Always, &fs, RetryPolicy::default()),
                )
                .unwrap();
                ack_prefix(&writer, 1);

                let mut fault = Fault::times(n, FaultError::Eio);
                if short {
                    fault = fault.short();
                }
                plan.arm(StorageOp::Write, fault);
                writer.append(1, payload(1)).unwrap().wait().unwrap();
                assert!(!writer.is_dead(), "{ctx}");
                assert_eq!(writer.failure(), None, "{ctx}");
                assert_eq!(plan.fired_count(StorageOp::Write), n as usize, "{ctx}");

                // The log keeps running normally after the fault clears.
                writer.append(2, payload(2)).unwrap().wait().unwrap();
                drop(writer);
                assert_dense_prefix(dir.path(), 3..=3, &ctx);
            }
        }
        assert_eq!(PANICS.load(Ordering::SeqCst), 0);
    });
}

/// A permanent write fault exhausts the retries and poisons the log: the
/// in-flight committer gets the root-cause `Storage { Write, .. }`, later
/// work is refused with `Degraded`, and the acked prefix survives recovery.
#[test]
fn exhausted_write_retries_poison_the_log_with_the_root_cause() {
    install_panic_counter();
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-fault-poison");
        let fs = FaultFs::new();
        let plan = fs.plan();
        let writer = LogWriter::open(
            dir.path(),
            &options(FsyncPolicy::Always, &fs, RetryPolicy::default()),
        )
        .unwrap();
        ack_prefix(&writer, 3);

        plan.arm(StorageOp::Write, Fault::forever(FaultError::Eio));
        let root_cause = WalError::storage(StorageOp::Write, ErrorKind::Other);
        let outcome = writer.append(3, payload(3)).unwrap().wait();
        assert_eq!(outcome, Err(root_cause.clone()));
        assert_eq!(
            plan.fired_count(StorageOp::Write),
            4,
            "initial attempt + max_retries"
        );
        assert!(writer.is_dead());
        assert_eq!(writer.failure(), Some(root_cause));

        // New work is refused up front, with Degraded — not the root cause,
        // and never Crashed.
        assert_eq!(
            writer.append(4, payload(4)).map(|_| ()),
            Err(WalError::Degraded)
        );
        assert_eq!(writer.rotate(), Err(WalError::Degraded));
        drop(writer);

        assert_dense_prefix(dir.path(), 3..=3, "permanent write fault");
        assert_eq!(PANICS.load(Ordering::SeqCst), 0);
    });
}

/// ENOSPC mid-append (a short write whose cleanup truncation also fails)
/// leaves a torn tail on disk — and the log must be *repairable*: recovery
/// discards the torn frame, keeps every acked record, and a second recovery
/// scans clean.
#[test]
fn enospc_short_write_leaves_a_repairable_log() {
    install_panic_counter();
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-fault-enospc");
        let fs = FaultFs::new();
        let plan = fs.plan();
        let writer = LogWriter::open(
            dir.path(),
            &options(FsyncPolicy::Always, &fs, RetryPolicy::none()),
        )
        .unwrap();
        ack_prefix(&writer, 3);

        // The short write lands half the frame; the cleanup truncation is
        // also failed, so the torn bytes stay on disk (the worst case).
        plan.arm(StorageOp::Write, Fault::once(FaultError::Enospc).short());
        plan.arm(StorageOp::SetLen, Fault::forever(FaultError::Eio));
        let outcome = writer.append(3, payload(3)).unwrap().wait();
        assert_eq!(
            outcome,
            Err(WalError::storage(StorageOp::Write, ErrorKind::StorageFull))
        );
        assert!(writer.is_dead());
        drop(writer);

        // Recovery (on the real fs) repairs the torn tail: acked records
        // survive, the torn frame is discarded, the repair is durable.
        let log = recover(dir.path()).unwrap();
        assert_eq!(log.next_lsn, 3, "only the acked records are recoverable");
        assert_eq!(
            log.records,
            (0..3).map(|l| (l, payload(l))).collect::<Vec<_>>()
        );
        assert!(
            log.diagnostics.iter().any(|d| d.contains("torn tail")),
            "expected a torn-tail diagnostic, got {:?}",
            log.diagnostics
        );
        let again = recover(dir.path()).unwrap();
        assert!(again.diagnostics.is_empty(), "{:?}", again.diagnostics);
        assert_eq!(PANICS.load(Ordering::SeqCst), 0);
    });
}

/// The fsyncgate pin: a failed fsync is never retried-and-acked. The durable
/// watermark stays exactly where the last *successful* fsync left it, the
/// sync stage poisons the log with `Storage { Fsync, .. }`, and — because the
/// fault budget is `Times(1)` — a later fsync *would* succeed, which must
/// not matter: no later fsync is ever issued against the poisoned segment.
#[test]
fn a_failed_fsync_never_advances_the_durable_watermark() {
    install_panic_counter();
    with_default_watchdog(|| {
        for fsync in [
            FsyncPolicy::Always,
            FsyncPolicy::Group(Duration::from_millis(1)),
        ] {
            let ctx = format!("fsync={fsync}");
            let dir = TempDir::new("txlog-fault-fsyncgate");
            let fs = FaultFs::new();
            let plan = fs.plan();
            let writer =
                LogWriter::open(dir.path(), &options(fsync, &fs, RetryPolicy::default())).unwrap();
            ack_prefix(&writer, 3);
            assert_eq!(writer.durable_watermark(), 3, "{ctx}");

            // Fails exactly once, then would succeed — the poisoned log must
            // never give it the chance.
            plan.arm(StorageOp::Fsync, Fault::once(FaultError::Eio));
            let outcome = writer.append(3, payload(3)).unwrap().wait();
            assert_eq!(
                outcome,
                Err(WalError::storage(StorageOp::Fsync, ErrorKind::Other)),
                "{ctx}"
            );
            assert!(writer.is_dead(), "{ctx}");
            assert_eq!(plan.fired_count(StorageOp::Fsync), 1, "{ctx}");
            assert_eq!(
                writer.durable_watermark(),
                3,
                "{ctx}: a failed fsync advanced the watermark"
            );
            assert_eq!(writer.durable_lsn(), 3, "{ctx}");
            assert_eq!(
                writer.append(4, payload(4)).map(|_| ()),
                Err(WalError::Degraded),
                "{ctx}"
            );
            drop(writer);
            assert_eq!(
                plan.fired_count(StorageOp::Fsync),
                1,
                "{ctx}: the sync stage retried a failed fsync"
            );

            // Record 3's bytes were written (never fsynced): in-process
            // recovery may see them, a power loss might not — either way the
            // acked prefix survives and the history is dense.
            assert_dense_prefix(dir.path(), 3..=4, &ctx);
        }
        assert_eq!(PANICS.load(Ordering::SeqCst), 0);
    });
}

/// The full site matrix: {EIO, ENOSPC} × {append sites, rotation sites} ×
/// {fsync=always, fsync=group}. Every combination must surface the typed
/// root cause naming the failed op, keep every acked record recoverable, and
/// never panic.
#[test]
fn every_fault_site_surfaces_typed_errors_and_preserves_acked_records() {
    install_panic_counter();
    with_default_watchdog(|| {
        let policies = [
            FsyncPolicy::Always,
            FsyncPolicy::Group(Duration::from_millis(1)),
        ];
        for fsync in policies {
            for error in [FaultError::Eio, FaultError::Enospc] {
                // Append-path sites: the fault fires while record 3 is in
                // flight; its ticket carries the root cause.
                for op in [StorageOp::Write, StorageOp::Fsync] {
                    let ctx = format!("append {op} {error} fsync={fsync}");
                    let dir = TempDir::new("txlog-fault-matrix");
                    let fs = FaultFs::new();
                    let writer =
                        LogWriter::open(dir.path(), &options(fsync, &fs, RetryPolicy::none()))
                            .unwrap();
                    ack_prefix(&writer, 3);
                    fs.plan().arm(op, Fault::forever(error));
                    let outcome = writer.append(3, payload(3)).unwrap().wait();
                    assert_eq!(outcome, Err(WalError::storage(op, error.kind())), "{ctx}");
                    assert!(writer.is_dead(), "{ctx}");
                    assert_eq!(
                        writer.append(4, payload(4)).map(|_| ()),
                        Err(WalError::Degraded),
                        "{ctx}"
                    );
                    drop(writer);
                    assert_dense_prefix(dir.path(), 3..=4, &ctx);
                }

                // Rotation-path sites: the fault fires inside rotate(); the
                // rotation caller carries the root cause.
                for op in [
                    StorageOp::SetLen,
                    StorageOp::Fsync,
                    StorageOp::Create,
                    StorageOp::SyncDir,
                ] {
                    let ctx = format!("rotate {op} {error} fsync={fsync}");
                    let dir = TempDir::new("txlog-fault-matrix");
                    let fs = FaultFs::new();
                    let writer =
                        LogWriter::open(dir.path(), &options(fsync, &fs, RetryPolicy::none()))
                            .unwrap();
                    ack_prefix(&writer, 3);
                    fs.plan().arm(op, Fault::forever(error));
                    let outcome = writer.rotate();
                    assert_eq!(outcome, Err(WalError::storage(op, error.kind())), "{ctx}");
                    assert!(writer.is_dead(), "{ctx}");
                    drop(writer);
                    assert_dense_prefix(dir.path(), 3..=3, &ctx);
                }
            }
        }
        assert_eq!(PANICS.load(Ordering::SeqCst), 0);
    });
}

/// Faults on the open path (directory creation, segment creation,
/// preallocation, the initial fsyncs) surface as typed `io::Error`s from
/// `LogWriter::open` — and once the one-shot fault is spent, the same open
/// succeeds.
#[test]
fn open_path_faults_surface_typed_io_errors() {
    install_panic_counter();
    with_default_watchdog(|| {
        for op in [
            StorageOp::CreateDir,
            StorageOp::Create,
            StorageOp::SetLen,
            StorageOp::Fsync,
            StorageOp::SyncDir,
        ] {
            let dir = TempDir::new("txlog-fault-open");
            let fs = FaultFs::new();
            fs.plan().arm(op, Fault::once(FaultError::Enospc));
            let err = LogWriter::open(
                dir.path(),
                &options(FsyncPolicy::Always, &fs, RetryPolicy::none()),
            )
            .map(|_| ())
            .unwrap_err();
            assert_eq!(err.kind(), ErrorKind::StorageFull, "{op}");

            // Fault spent: the retry from a clean slate works.
            let writer = LogWriter::open(
                dir.path(),
                &options(FsyncPolicy::Always, &fs, RetryPolicy::none()),
            )
            .unwrap();
            writer.append(0, payload(0)).unwrap().wait().unwrap();
            drop(writer);
        }
        assert_eq!(PANICS.load(Ordering::SeqCst), 0);
    });
}

/// Recovery through a faulty fs propagates storage errors as typed
/// `io::Error`s (corrupt *content* is handled; failing *operations* are
/// surfaced).
#[test]
fn recovery_propagates_storage_errors_typed() {
    install_panic_counter();
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-fault-recover");
        let writer = LogWriter::open(
            dir.path(),
            &WalOptions {
                fsync: FsyncPolicy::Always,
                crash_points: CrashPoints::disabled(),
                preallocate_bytes: TEST_PREALLOC,
                ..WalOptions::default()
            },
        )
        .unwrap();
        ack_prefix(&writer, 2);
        drop(writer);

        let fs = FaultFs::new();
        for op in [StorageOp::ListDir, StorageOp::Read] {
            fs.plan().arm(op, Fault::once(FaultError::Eio));
            let err = txlog::recovery::recover_with(&fs, dir.path()).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Other, "{op}");
        }
        // Faults spent: the same recovery succeeds.
        let log = txlog::recovery::recover_with(&fs, dir.path()).unwrap();
        assert_eq!(log.next_lsn, 2);
        assert_eq!(PANICS.load(Ordering::SeqCst), 0);
    });
}
