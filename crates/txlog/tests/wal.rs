//! Integration tests of the pipelined group-commit writer: re-sequencing,
//! fsync policies, rotation, preallocation trims, clean shutdown, watermark
//! acknowledgement, and deterministic crash injection on both the append and
//! the rotation path.

use std::time::Duration;

use tlstm_testutil::{with_default_watchdog, CrashPoints, EnvVarGuard, TempDir};
use txlog::files::segment_path;
use txlog::{crash_points, recover, FsyncPolicy, LogWriter, WalError, WalOptions};

/// Small preallocation for tests: big enough that no test segment outgrows
/// it, small enough that untrimmed tails stay cheap to scan.
const TEST_PREALLOC: u64 = 64 * 1024;

fn options(fsync: FsyncPolicy) -> WalOptions {
    WalOptions {
        start_lsn: 0,
        fsync,
        crash_points: CrashPoints::disabled(),
        preallocate_bytes: TEST_PREALLOC,
        ..WalOptions::default()
    }
}

fn crash_options(crash: &CrashPoints) -> WalOptions {
    WalOptions {
        crash_points: crash.clone(),
        ..options(FsyncPolicy::Always)
    }
}

fn payload(lsn: u64) -> Vec<u8> {
    format!("record-{lsn}").into_bytes()
}

#[test]
fn out_of_order_appends_are_resequenced() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-wal");
        let writer = LogWriter::open(dir.path(), &options(FsyncPolicy::Always)).unwrap();
        // LSN 2 and 1 arrive before 0: nothing can be written until the run
        // is contiguous, then the whole batch goes out at once.
        let t2 = writer.append(2, payload(2)).unwrap();
        let t1 = writer.append(1, payload(1)).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(writer.durable_lsn(), 0, "a gap blocks everything behind it");
        let t0 = writer.append(0, payload(0)).unwrap();
        t0.wait().unwrap();
        t1.wait().unwrap();
        t2.wait().unwrap();
        assert_eq!(writer.durable_lsn(), 3);
        drop(writer);

        let log = recover(dir.path()).unwrap();
        assert_eq!(
            log.records,
            (0..3).map(|l| (l, payload(l))).collect::<Vec<_>>(),
            "the on-disk log is dense and in LSN order"
        );
        assert_eq!(log.next_lsn, 3);
        assert!(log.diagnostics.is_empty());
    });
}

#[test]
fn concurrent_committers_all_become_durable() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-wal");
        for fsync in [
            FsyncPolicy::Always,
            FsyncPolicy::Group(Duration::from_millis(1)),
            FsyncPolicy::None,
        ] {
            let writer = LogWriter::open(dir.path(), &options(fsync)).unwrap();
            let handle = writer.handle();
            std::thread::scope(|scope| {
                for thread in 0..4u64 {
                    let handle = handle.clone();
                    scope.spawn(move || {
                        // Interleaved LSNs across threads: 0,4,8,... etc.
                        for i in 0..16u64 {
                            let lsn = i * 4 + thread;
                            let ticket = handle.append(lsn, payload(lsn)).unwrap();
                            ticket.wait().unwrap();
                        }
                    });
                }
            });
            assert_eq!(writer.durable_lsn(), 64, "{fsync:?}");
            drop(writer);
            let log = recover(dir.path()).unwrap();
            assert_eq!(log.records.len(), 64, "{fsync:?}");
            assert_eq!(log.next_lsn, 64, "{fsync:?}");
        }
    });
}

/// Lost-wakeup regression for the `notify_one` stage handoffs: each condvar
/// in the pipeline has exactly one consumer, so a swallowed notification
/// would strand the writer (and this test would hit the watchdog). Many
/// concurrent appenders hammer the `work_cv`/`sync_cv` edges under every
/// fsync policy.
#[test]
fn notify_one_wakeups_are_never_lost_under_contention() {
    with_default_watchdog(|| {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 32;
        for fsync in [
            FsyncPolicy::Always,
            FsyncPolicy::Group(Duration::from_millis(1)),
            FsyncPolicy::None,
        ] {
            let dir = TempDir::new("txlog-wal-wakeup");
            let writer = LogWriter::open(dir.path(), &options(fsync)).unwrap();
            let handle = writer.handle();
            std::thread::scope(|scope| {
                for thread in 0..THREADS {
                    let handle = handle.clone();
                    scope.spawn(move || {
                        for i in 0..PER_THREAD {
                            let lsn = i * THREADS + thread;
                            let ticket = handle.append(lsn, payload(lsn)).unwrap();
                            ticket.wait().unwrap();
                        }
                    });
                }
            });
            assert_eq!(writer.durable_lsn(), THREADS * PER_THREAD, "{fsync:?}");
            assert_eq!(
                writer.durable_watermark(),
                writer.durable_lsn(),
                "{fsync:?}: watermark and locked read must agree at rest"
            );
            drop(writer);
            let log = recover(dir.path()).unwrap();
            assert_eq!(
                log.records.len(),
                (THREADS * PER_THREAD) as usize,
                "{fsync:?}"
            );
        }
    });
}

/// Ticket storm: 64 threads submit their LSNs in reverse stride order, so
/// the pending map is full of gaps and acks can only advance when the run
/// becomes contiguous. Asserts the dense-acknowledgement invariant and that
/// the fast-path atomic watermark never disagrees with the locked
/// `durable_lsn()` read.
#[test]
fn ticket_storm_acks_densely_and_watermark_agrees() {
    with_default_watchdog(|| {
        const THREADS: u64 = 64;
        const PER_THREAD: u64 = 4;
        let dir = TempDir::new("txlog-wal-storm");
        let writer = LogWriter::open(dir.path(), &options(FsyncPolicy::Always)).unwrap();
        let handle = writer.handle();
        std::thread::scope(|scope| {
            for thread in 0..THREADS {
                let handle = handle.clone();
                scope.spawn(move || {
                    // Append the thread's highest LSN first (no waiting), so
                    // arrival order is heavily out-of-order across threads.
                    let tickets: Vec<_> = (0..PER_THREAD)
                        .rev()
                        .map(|i| {
                            let lsn = i * THREADS + thread;
                            handle.append(lsn, payload(lsn)).unwrap()
                        })
                        .collect();
                    for ticket in tickets {
                        let lsn = ticket.lsn();
                        ticket.wait().unwrap();
                        // Dense ack order: an acknowledged record is covered
                        // by the watermark, which in turn never runs ahead of
                        // the locked authoritative read.
                        let watermark = handle.durable_watermark();
                        assert!(
                            watermark > lsn,
                            "acked LSN {lsn} above watermark {watermark}"
                        );
                        let locked = handle.durable_lsn();
                        assert!(
                            watermark <= locked,
                            "fast path ({watermark}) ahead of the locked read ({locked})"
                        );
                    }
                });
            }
        });
        assert_eq!(writer.durable_lsn(), THREADS * PER_THREAD);
        assert_eq!(writer.durable_watermark(), writer.durable_lsn());
        drop(writer);
        let log = recover(dir.path()).unwrap();
        assert_eq!(
            log.records,
            (0..THREADS * PER_THREAD)
                .map(|l| (l, payload(l)))
                .collect::<Vec<_>>(),
            "the on-disk log is the dense in-order history"
        );
    });
}

/// Shutdown with records stranded behind a sequence gap must not hang: the
/// contiguous prefix is flushed and acknowledged, the stranded tickets fail.
#[test]
fn shutdown_with_gap_stranded_records_fails_their_tickets() {
    with_default_watchdog(|| {
        for fsync in [
            FsyncPolicy::Always,
            FsyncPolicy::Group(Duration::from_secs(60)), // interval never expires
            FsyncPolicy::None,
        ] {
            let dir = TempDir::new("txlog-wal-gap");
            let writer = LogWriter::open(dir.path(), &options(fsync)).unwrap();
            let t0 = writer.append(0, payload(0)).unwrap();
            // LSN 1 never arrives: 2 and 3 can never be written.
            let t2 = writer.append(2, payload(2)).unwrap();
            let t3 = writer.append(3, payload(3)).unwrap();
            drop(writer); // must not hang on the stranded records
            t0.wait().unwrap();
            assert_eq!(t2.wait(), Err(WalError::Crashed), "{fsync:?}");
            assert_eq!(t3.wait(), Err(WalError::Crashed), "{fsync:?}");
            let log = recover(dir.path()).unwrap();
            assert_eq!(log.records, vec![(0, payload(0))], "{fsync:?}");
            assert!(
                log.diagnostics.is_empty(),
                "{fsync:?}: {:?}",
                log.diagnostics
            );
        }
    });
}

#[test]
fn rotation_starts_a_new_segment_and_keeps_every_record() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-wal");
        let writer = LogWriter::open(dir.path(), &options(FsyncPolicy::Always)).unwrap();
        for lsn in 0..5 {
            writer.append(lsn, payload(lsn)).unwrap().wait().unwrap();
        }
        let new_start = writer.rotate().unwrap();
        assert_eq!(new_start, 5);
        for lsn in 5..8 {
            writer.append(lsn, payload(lsn)).unwrap().wait().unwrap();
        }
        drop(writer);

        let segments = txlog::list_segments(dir.path()).unwrap();
        assert_eq!(
            segments.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            vec![0, 5]
        );
        let log = recover(dir.path()).unwrap();
        assert_eq!(log.records.len(), 8);
        assert_eq!(log.next_lsn, 8);
    });
}

/// Preallocation lifecycle: segments span the configured extent while open
/// and are trimmed back to their written bytes when closed — by rotation and
/// by clean shutdown — so only a crash leaves a zero tail behind.
#[test]
fn preallocated_segments_are_trimmed_at_rotation_and_shutdown() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-wal-prealloc");
        let writer = LogWriter::open(dir.path(), &options(FsyncPolicy::Always)).unwrap();
        assert_eq!(
            std::fs::metadata(segment_path(dir.path(), 0))
                .unwrap()
                .len(),
            TEST_PREALLOC,
            "a fresh segment spans the full preallocated extent"
        );
        for lsn in 0..4 {
            writer.append(lsn, payload(lsn)).unwrap().wait().unwrap();
        }
        let new_start = writer.rotate().unwrap();
        let closed = std::fs::metadata(segment_path(dir.path(), 0))
            .unwrap()
            .len();
        assert!(
            closed > 0 && closed < TEST_PREALLOC,
            "rotation trims the outgoing segment (len {closed})"
        );
        assert_eq!(
            std::fs::metadata(segment_path(dir.path(), new_start))
                .unwrap()
                .len(),
            TEST_PREALLOC,
            "the successor segment is preallocated"
        );
        writer.append(4, payload(4)).unwrap().wait().unwrap();
        drop(writer);
        let last = std::fs::metadata(segment_path(dir.path(), new_start))
            .unwrap()
            .len();
        assert!(
            last > 0 && last < TEST_PREALLOC,
            "clean shutdown trims the final segment (len {last})"
        );
        let log = recover(dir.path()).unwrap();
        assert_eq!(log.next_lsn, 5);
        assert!(log.diagnostics.is_empty(), "{:?}", log.diagnostics);
    });
}

#[test]
fn clean_shutdown_flushes_under_every_policy() {
    with_default_watchdog(|| {
        for fsync in [
            FsyncPolicy::Always,
            FsyncPolicy::Group(Duration::from_secs(60)), // interval never expires
            FsyncPolicy::None,
        ] {
            let dir = TempDir::new("txlog-wal");
            let writer = LogWriter::open(dir.path(), &options(fsync)).unwrap();
            let tickets: Vec<_> = (0..10)
                .map(|lsn| writer.append(lsn, payload(lsn)).unwrap())
                .collect();
            drop(writer); // clean shutdown: flush + fsync + ack
            for ticket in tickets {
                ticket.wait().unwrap();
            }
            let log = recover(dir.path()).unwrap();
            assert_eq!(log.records.len(), 10, "{fsync:?}");
        }
    });
}

#[test]
fn group_policy_acks_within_the_interval() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-wal");
        let writer = LogWriter::open(
            dir.path(),
            &options(FsyncPolicy::Group(Duration::from_millis(2))),
        )
        .unwrap();
        // Waiting on the ticket parks until the periodic fsync covers it; the
        // ack must arrive without any further appends.
        writer.append(0, payload(0)).unwrap().wait().unwrap();
        assert!(writer.durable_lsn() >= 1);
    });
}

/// [`WalOptions::default`] hands out one process-wide registry parsed from
/// [`txlog::CRASH_POINT_ENV`] exactly once, instead of re-reading the
/// environment per call.
#[test]
fn default_options_share_one_env_parsed_registry() {
    // First default() initialises the process-wide registry while the
    // variable is guaranteed unset...
    let guard = EnvVarGuard::lock_only();
    let a = WalOptions::default();
    drop(guard);
    // ...so setting it afterwards must change nothing: the environment is
    // parsed once per process, not per call.
    let _guard = EnvVarGuard::set(txlog::CRASH_POINT_ENV, crash_points::MID_FRAME);
    let b = WalOptions::default();
    assert!(
        !b.crash_points.should_crash(crash_points::MID_FRAME),
        "the env var must not be re-read on later default() calls"
    );
    // Both handles share the same registry: arming through one is visible
    // through the other (a probe name no real code path checks).
    a.crash_points.arm("test::probe");
    assert!(b.crash_points.should_crash("test::probe"));
    assert_eq!(a.crash_points.fired(), Some("test::probe".to_string()));
    // Leave the shared registry disarmed for any other user in this process.
    a.crash_points.disarm();
}

/// The append-path crash matrix: arm each point, submit records, and check
/// which records survive recovery. Invariant: every *acknowledged* record
/// survives; the on-disk log is always a dense prefix of the submitted
/// stream; recovery never panics.
#[test]
fn crash_points_kill_the_writer_and_preserve_acked_prefix() {
    with_default_watchdog(|| {
        for point in crash_points::APPEND {
            let dir = TempDir::new("txlog-wal-crash");
            let crash = CrashPoints::disabled();
            let writer = LogWriter::open(dir.path(), &crash_options(&crash)).unwrap();

            // Phase 1: records 0..3 acknowledged before the point is armed.
            for lsn in 0..3 {
                writer.append(lsn, payload(lsn)).unwrap().wait().unwrap();
            }
            // Phase 2: arm, then submit record 3 — the writer dies at the
            // armed point while handling it.
            crash.arm(point);
            let outcome = writer
                .append(3, payload(3))
                .and_then(|ticket| ticket.wait());
            if point == crash_points::AFTER_FSYNC_BEFORE_ACK {
                // The fsync covering record 3 succeeded before the writer
                // died, so its ticket reports durable even without the ack.
                assert_eq!(outcome, Ok(()), "{point}");
            } else {
                assert_eq!(outcome, Err(WalError::Crashed), "{point}");
            }
            assert!(writer.is_dead(), "{point}");
            assert_eq!(crash.fired(), Some(point.to_string()), "{point}");
            // Dead writers refuse further work.
            assert_eq!(
                writer.append(4, payload(4)).map(|_| ()),
                Err(WalError::Crashed),
                "{point}"
            );
            assert_eq!(writer.rotate(), Err(WalError::Crashed), "{point}");
            drop(writer);

            let log = recover(dir.path()).unwrap();
            // The acked records must survive; record 3 may or may not,
            // depending on where the crash hit — but the result is always a
            // dense prefix.
            assert!(log.next_lsn >= 3, "{point}: acked records lost");
            assert!(log.next_lsn <= 4, "{point}");
            assert_eq!(
                log.records,
                (0..log.next_lsn)
                    .map(|l| (l, payload(l)))
                    .collect::<Vec<_>>(),
                "{point}"
            );
            match point {
                // Died before any byte of record 3 hit the file.
                crash_points::BEFORE_APPEND => assert_eq!(log.next_lsn, 3, "{point}"),
                // Died mid-write: a torn final frame that recovery discards
                // (the torn bytes make the tail non-zero, so it is reported
                // as corruption, not as preallocation residue).
                crash_points::MID_FRAME => {
                    assert_eq!(log.next_lsn, 3, "{point}");
                    assert!(
                        log.diagnostics.iter().any(|d| d.contains("torn tail")),
                        "{point}: expected a torn-tail diagnostic, got {:?}",
                        log.diagnostics
                    );
                }
                // Fully written (and in-process files keep unfsynced bytes),
                // so the unacknowledged record is visible after recovery; at
                // AFTER_FSYNC_BEFORE_ACK its survival is mandatory — the
                // ticket reported Ok above.
                crash_points::AFTER_APPEND_BEFORE_FSYNC | crash_points::AFTER_FSYNC_BEFORE_ACK => {
                    assert_eq!(log.next_lsn, 4, "{point}")
                }
                other => unreachable!("unknown crash point {other}"),
            }
        }
    });
}

/// The rotation-path crash matrix: arm each rotation point, crash inside
/// `rotate()`, and check that every acknowledged record survives recovery —
/// including across the repaired debris a mid-rotation crash leaves (an
/// untrimmed outgoing segment, or an orphaned all-zero successor).
#[test]
fn rotation_crash_points_kill_the_writer_and_preserve_acked_records() {
    with_default_watchdog(|| {
        for point in crash_points::ROTATION {
            let dir = TempDir::new("txlog-wal-rotate-crash");
            let crash = CrashPoints::disabled();
            let writer = LogWriter::open(dir.path(), &crash_options(&crash)).unwrap();
            for lsn in 0..5 {
                writer.append(lsn, payload(lsn)).unwrap().wait().unwrap();
            }
            crash.arm(point);
            assert_eq!(writer.rotate(), Err(WalError::Crashed), "{point}");
            assert!(writer.is_dead(), "{point}");
            assert_eq!(crash.fired(), Some(point.to_string()), "{point}");
            assert_eq!(
                writer.append(5, payload(5)).map(|_| ()),
                Err(WalError::Crashed),
                "{point}: dead writers refuse appends"
            );
            drop(writer);

            let log = recover(dir.path()).unwrap();
            assert_eq!(
                log.records,
                (0..5).map(|l| (l, payload(l))).collect::<Vec<_>>(),
                "{point}: acked records lost"
            );
            assert_eq!(log.next_lsn, 5, "{point}");
            // The repair is complete: a second recovery scans clean.
            let again = recover(dir.path()).unwrap();
            assert_eq!(again.records, log.records, "{point}");
            assert!(
                again.diagnostics.is_empty(),
                "{point}: second recovery not clean: {:?}",
                again.diagnostics
            );
            // The repaired directory boots a fresh writer that appends on.
            let writer = LogWriter::open(
                dir.path(),
                &WalOptions {
                    start_lsn: log.next_lsn,
                    ..options(FsyncPolicy::Always)
                },
            )
            .unwrap();
            writer.append(5, payload(5)).unwrap().wait().unwrap();
            drop(writer);
            let log = recover(dir.path()).unwrap();
            assert_eq!(log.next_lsn, 6, "{point}");
            assert_eq!(log.records.len(), 6, "{point}");
        }
    });
}

#[test]
fn crash_with_waiters_behind_a_gap_fails_them_all() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-wal-crash");
        let crash = CrashPoints::disabled();
        let writer = LogWriter::open(dir.path(), &crash_options(&crash)).unwrap();
        // LSN 1 parks behind the missing 0; the crash on 0's append must
        // wake and fail it.
        let t1 = writer.append(1, payload(1)).unwrap();
        crash.arm(crash_points::BEFORE_APPEND);
        let t0 = writer.append(0, payload(0)).unwrap();
        assert_eq!(t0.wait(), Err(WalError::Crashed));
        assert_eq!(t1.wait(), Err(WalError::Crashed));
        drop(writer);
        let log = recover(dir.path()).unwrap();
        assert_eq!(log.records, Vec::new());
    });
}
