//! Integration tests of the group-commit writer: re-sequencing, fsync
//! policies, rotation, clean shutdown, and deterministic crash injection.

use std::time::Duration;

use tlstm_testutil::{with_default_watchdog, CrashPoints, TempDir};
use txlog::{crash_points, recover, FsyncPolicy, LogWriter, WalError, WalOptions};

fn options(fsync: FsyncPolicy) -> WalOptions {
    WalOptions {
        start_lsn: 0,
        fsync,
        crash_points: CrashPoints::disabled(),
    }
}

fn payload(lsn: u64) -> Vec<u8> {
    format!("record-{lsn}").into_bytes()
}

#[test]
fn out_of_order_appends_are_resequenced() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-wal");
        let writer = LogWriter::open(dir.path(), &options(FsyncPolicy::Always)).unwrap();
        // LSN 2 and 1 arrive before 0: nothing can be written until the run
        // is contiguous, then the whole batch goes out at once.
        let t2 = writer.append(2, payload(2)).unwrap();
        let t1 = writer.append(1, payload(1)).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(writer.durable_lsn(), 0, "a gap blocks everything behind it");
        let t0 = writer.append(0, payload(0)).unwrap();
        t0.wait().unwrap();
        t1.wait().unwrap();
        t2.wait().unwrap();
        assert_eq!(writer.durable_lsn(), 3);
        drop(writer);

        let log = recover(dir.path()).unwrap();
        assert_eq!(
            log.records,
            (0..3).map(|l| (l, payload(l))).collect::<Vec<_>>(),
            "the on-disk log is dense and in LSN order"
        );
        assert_eq!(log.next_lsn, 3);
        assert!(log.diagnostics.is_empty());
    });
}

#[test]
fn concurrent_committers_all_become_durable() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-wal");
        for fsync in [
            FsyncPolicy::Always,
            FsyncPolicy::Group(Duration::from_millis(1)),
            FsyncPolicy::None,
        ] {
            let writer = LogWriter::open(dir.path(), &options(fsync)).unwrap();
            let handle = writer.handle();
            std::thread::scope(|scope| {
                for thread in 0..4u64 {
                    let handle = handle.clone();
                    scope.spawn(move || {
                        // Interleaved LSNs across threads: 0,4,8,... etc.
                        for i in 0..16u64 {
                            let lsn = i * 4 + thread;
                            let ticket = handle.append(lsn, payload(lsn)).unwrap();
                            ticket.wait().unwrap();
                        }
                    });
                }
            });
            assert_eq!(writer.durable_lsn(), 64, "{fsync:?}");
            drop(writer);
            let log = recover(dir.path()).unwrap();
            assert_eq!(log.records.len(), 64, "{fsync:?}");
            assert_eq!(log.next_lsn, 64, "{fsync:?}");
        }
    });
}

#[test]
fn rotation_starts_a_new_segment_and_keeps_every_record() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-wal");
        let writer = LogWriter::open(dir.path(), &options(FsyncPolicy::Always)).unwrap();
        for lsn in 0..5 {
            writer.append(lsn, payload(lsn)).unwrap().wait().unwrap();
        }
        let new_start = writer.rotate().unwrap();
        assert_eq!(new_start, 5);
        for lsn in 5..8 {
            writer.append(lsn, payload(lsn)).unwrap().wait().unwrap();
        }
        drop(writer);

        let segments = txlog::list_segments(dir.path()).unwrap();
        assert_eq!(
            segments.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            vec![0, 5]
        );
        let log = recover(dir.path()).unwrap();
        assert_eq!(log.records.len(), 8);
        assert_eq!(log.next_lsn, 8);
    });
}

#[test]
fn clean_shutdown_flushes_under_every_policy() {
    with_default_watchdog(|| {
        for fsync in [
            FsyncPolicy::Always,
            FsyncPolicy::Group(Duration::from_secs(60)), // interval never expires
            FsyncPolicy::None,
        ] {
            let dir = TempDir::new("txlog-wal");
            let writer = LogWriter::open(dir.path(), &options(fsync)).unwrap();
            let tickets: Vec<_> = (0..10)
                .map(|lsn| writer.append(lsn, payload(lsn)).unwrap())
                .collect();
            drop(writer); // clean shutdown: flush + fsync + ack
            for ticket in tickets {
                ticket.wait().unwrap();
            }
            let log = recover(dir.path()).unwrap();
            assert_eq!(log.records.len(), 10, "{fsync:?}");
        }
    });
}

#[test]
fn group_policy_acks_within_the_interval() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-wal");
        let writer = LogWriter::open(
            dir.path(),
            &options(FsyncPolicy::Group(Duration::from_millis(2))),
        )
        .unwrap();
        // Waiting on the ticket parks until the periodic fsync covers it; the
        // ack must arrive without any further appends.
        writer.append(0, payload(0)).unwrap().wait().unwrap();
        assert!(writer.durable_lsn() >= 1);
    });
}

/// The crash matrix: arm each WAL crash point, submit records, and check
/// which records survive recovery. Invariant: every *acknowledged* record
/// survives; the on-disk log is always a dense prefix of the submitted
/// stream; recovery never panics.
#[test]
fn crash_points_kill_the_writer_and_preserve_acked_prefix() {
    with_default_watchdog(|| {
        for point in crash_points::ALL {
            let dir = TempDir::new("txlog-wal-crash");
            let crash = CrashPoints::disabled();
            let writer = LogWriter::open(
                dir.path(),
                &WalOptions {
                    start_lsn: 0,
                    fsync: FsyncPolicy::Always,
                    crash_points: crash.clone(),
                },
            )
            .unwrap();

            // Phase 1: records 0..3 acknowledged before the point is armed.
            for lsn in 0..3 {
                writer.append(lsn, payload(lsn)).unwrap().wait().unwrap();
            }
            // Phase 2: arm, then submit record 3 — the writer dies at the
            // armed point while handling it.
            crash.arm(point);
            let outcome = writer
                .append(3, payload(3))
                .and_then(|ticket| ticket.wait());
            assert_eq!(outcome, Err(WalError::Crashed), "{point}");
            assert!(writer.is_dead(), "{point}");
            assert_eq!(crash.fired(), Some(point.to_string()), "{point}");
            // Dead writers refuse further work.
            assert_eq!(
                writer.append(4, payload(4)).map(|_| ()),
                Err(WalError::Crashed),
                "{point}"
            );
            assert_eq!(writer.rotate(), Err(WalError::Crashed), "{point}");
            drop(writer);

            let log = recover(dir.path()).unwrap();
            // The acked records must survive; record 3 may or may not,
            // depending on where the crash hit — but the result is always a
            // dense prefix.
            assert!(log.next_lsn >= 3, "{point}: acked records lost");
            assert!(log.next_lsn <= 4, "{point}");
            assert_eq!(
                log.records,
                (0..log.next_lsn)
                    .map(|l| (l, payload(l)))
                    .collect::<Vec<_>>(),
                "{point}"
            );
            match point {
                // Died before any byte of record 3 hit the file.
                crash_points::BEFORE_APPEND => assert_eq!(log.next_lsn, 3, "{point}"),
                // Died mid-write: a torn final frame that recovery discards.
                crash_points::MID_FRAME => {
                    assert_eq!(log.next_lsn, 3, "{point}");
                    assert!(
                        log.diagnostics.iter().any(|d| d.contains("torn tail")),
                        "{point}: expected a torn-tail diagnostic, got {:?}",
                        log.diagnostics
                    );
                }
                // Fully written (and in-process files keep unfsynced bytes),
                // so the unacknowledged record is visible after recovery.
                crash_points::AFTER_APPEND_BEFORE_FSYNC | crash_points::AFTER_FSYNC_BEFORE_ACK => {
                    assert_eq!(log.next_lsn, 4, "{point}")
                }
                other => unreachable!("unknown crash point {other}"),
            }
        }
    });
}

#[test]
fn crash_with_waiters_behind_a_gap_fails_them_all() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txlog-wal-crash");
        let crash = CrashPoints::disabled();
        let writer = LogWriter::open(
            dir.path(),
            &WalOptions {
                start_lsn: 0,
                fsync: FsyncPolicy::Always,
                crash_points: crash.clone(),
            },
        )
        .unwrap();
        // LSN 1 parks behind the missing 0; the crash on 0's append must
        // wake and fail it.
        let t1 = writer.append(1, payload(1)).unwrap();
        crash.arm(crash_points::BEFORE_APPEND);
        let t0 = writer.append(0, payload(0)).unwrap();
        assert_eq!(t0.wait(), Err(WalError::Crashed));
        assert_eq!(t1.wait(), Err(WalError::Crashed));
        drop(writer);
        let log = recover(dir.path()).unwrap();
        assert_eq!(log.records, Vec::new());
    });
}
