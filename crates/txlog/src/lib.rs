//! # txlog — durability for the transactional key-value store
//!
//! The write-ahead-log subsystem of the TLSTM reproduction's serving stack:
//! a **logical redo log** of committed transactions layered *above* the STM
//! commit point, plus snapshots and crash recovery. `txlog` is payload
//! agnostic — records are opaque byte strings stamped with a dense **log
//! sequence number** (LSN) that the caller assigns at STM commit time — so
//! the same machinery can log `txkv` batch plans today and other subsystems
//! tomorrow.
//!
//! Three pieces:
//!
//! * [`frame`] — the on-disk record framing: length-prefixed, CRC-32
//!   protected frames that recovery can validate byte-by-byte, so a torn
//!   tail (a crash mid-append) is detected and cleanly discarded;
//! * [`LogWriter`] — the **pipelined group-commit** writer: an append stage
//!   drains committed records (re-sequencing out-of-order arrivals into LSN
//!   order) and appends each batch in a single `write` to a preallocated
//!   segment, while a second sync stage fsyncs the previous batch per the
//!   configured [`FsyncPolicy`] — fsync latency overlaps the next batch's
//!   fill. Committers wait on a [`CommitTicket`] whose fast path is one
//!   atomic load of the durable watermark. The writer honors the `wal::*`
//!   crash points of [`tlstm_testutil::CrashPoints`] for deterministic
//!   crash-injection tests;
//! * [`recovery`] + [`files`] — snapshot files, log segments, and the
//!   recovery scan: load the newest valid snapshot, replay the contiguous
//!   record suffix, stop at the first torn/corrupt frame, and repair the
//!   tail so the next boot starts from a clean log.
//!
//! ## Example
//!
//! ```rust
//! use tlstm_testutil::TempDir;
//! use txlog::{FsyncPolicy, LogWriter, WalOptions};
//!
//! let dir = TempDir::new("txlog-doc");
//! let writer = LogWriter::open(dir.path(), &WalOptions::default()).unwrap();
//! let handle = writer.handle();
//! let ticket = handle.append(0, b"first record".to_vec()).unwrap();
//! ticket.wait().unwrap(); // parks until LSN 0 is durable
//! drop(writer);
//!
//! let recovered = txlog::recover(dir.path()).unwrap();
//! assert_eq!(recovered.records, vec![(0, b"first record".to_vec())]);
//! assert_eq!(recovered.next_lsn, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod files;
pub mod frame;
pub mod recovery;
pub mod vfs;
pub mod writer;

pub use files::{list_segments, list_snapshots, prune_obsolete, read_snapshot, write_snapshot};
pub use frame::{crc32, crc32_parts, read_frames, FrameScan};
pub use recovery::{recover, RecoveredLog};
pub use tlstm_testutil::CrashPoints;
pub use vfs::{
    Fault, FaultBudget, FaultError, FaultFs, FaultPlan, RealFs, StorageOp, WalFile, WalFs,
};
pub use writer::{
    CommitTicket, LogWriter, RetryPolicy, WalHandle, WalOptions, DEFAULT_SEGMENT_PREALLOC,
};

use std::fmt;
use std::time::Duration;

/// The crash points the WAL writer honors (names for
/// [`tlstm_testutil::CrashPoints::arm`]). Each simulates the process dying at
/// that instant: the writer abandons all further I/O and every unacknowledged
/// committer fails with [`WalError::Crashed`].
pub mod crash_points {
    /// Before the batch of frames is written to the segment file at all.
    pub const BEFORE_APPEND: &str = "wal::before-append";
    /// Mid-write: only a prefix of the batch reaches the file, leaving a
    /// torn final frame.
    pub const MID_FRAME: &str = "wal::mid-frame";
    /// After the frames are fully written but before the fsync.
    pub const AFTER_APPEND_BEFORE_FSYNC: &str = "wal::after-append-before-fsync";
    /// After the fsync but before committers are acknowledged.
    pub const AFTER_FSYNC_BEFORE_ACK: &str = "wal::after-fsync-before-ack";
    /// At the start of a segment rotation, before the outgoing segment is
    /// trimmed and fsynced.
    pub const BEFORE_ROTATE_FSYNC: &str = "wal::before-rotate-fsync";
    /// After the successor segment is created and preallocated but before
    /// its directory entry is fsynced.
    pub const AFTER_CREATE_BEFORE_DIRSYNC: &str = "wal::after-create-before-dirsync";
    /// After the directory fsync, before the rotation is published and
    /// waiters acknowledged.
    pub const AFTER_ROTATE_BEFORE_ACK: &str = "wal::after-rotate-before-ack";

    /// The append-path crash points, in pipeline order. These fire while a
    /// record batch is being handled, so an armed point is guaranteed to
    /// trigger on the next append.
    pub const APPEND: [&str; 4] = [
        BEFORE_APPEND,
        MID_FRAME,
        AFTER_APPEND_BEFORE_FSYNC,
        AFTER_FSYNC_BEFORE_ACK,
    ];

    /// The rotation-path crash points, in pipeline order. These fire only
    /// inside [`crate::LogWriter::rotate`] handling (e.g. the log-truncation
    /// step after a snapshot).
    pub const ROTATION: [&str; 3] = [
        BEFORE_ROTATE_FSYNC,
        AFTER_CREATE_BEFORE_DIRSYNC,
        AFTER_ROTATE_BEFORE_ACK,
    ];

    /// All WAL crash points (append path, then rotation path).
    pub const ALL: [&str; 7] = [
        BEFORE_APPEND,
        MID_FRAME,
        AFTER_APPEND_BEFORE_FSYNC,
        AFTER_FSYNC_BEFORE_ACK,
        BEFORE_ROTATE_FSYNC,
        AFTER_CREATE_BEFORE_DIRSYNC,
        AFTER_ROTATE_BEFORE_ACK,
    ];
}

/// Environment variable [`WalOptions::default`] arms crash points from, for
/// cross-process crash experiments.
pub const CRASH_POINT_ENV: &str = "TXLOG_CRASH_POINT";

/// Default interval of [`FsyncPolicy::Group`].
pub const DEFAULT_GROUP_INTERVAL: Duration = Duration::from_millis(2);

/// When the log writer issues `fsync` — the durability/latency trade-off of
/// the write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync every drained batch before acknowledging it. Group commit still
    /// amortises the fsync over every record that arrived while the previous
    /// batch was being written, but no acknowledged record can be lost.
    Always,
    /// Fsync at most once per interval: records are acknowledged when the
    /// periodic fsync covers them, bounding acknowledged-write loss to zero
    /// while batching fsyncs harder than [`FsyncPolicy::Always`] under light
    /// load (committers wait up to one interval for their ack).
    Group(Duration),
    /// Never fsync (acknowledge as soon as the OS has the bytes). For
    /// benchmarking the logging overhead in isolation — acknowledged writes
    /// can be lost on a real power failure.
    None,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Group(DEFAULT_GROUP_INTERVAL)
    }
}

impl FsyncPolicy {
    /// The identifier used in CLI flags and reports (`always`, `group`,
    /// `none`).
    pub fn label(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Group(_) => "group",
            FsyncPolicy::None => "none",
        }
    }

    /// Parses a CLI token: `always`, `group`, `group:<ms>` or `none`.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted options for anything else.
    pub fn parse(token: &str) -> Result<FsyncPolicy, String> {
        let unknown = || {
            format!("unknown fsync policy '{token}' (want one of: always, group, group:<ms>, none)")
        };
        match token {
            "always" => Ok(FsyncPolicy::Always),
            "group" => Ok(FsyncPolicy::Group(DEFAULT_GROUP_INTERVAL)),
            "none" => Ok(FsyncPolicy::None),
            other => match other.strip_prefix("group:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .ok()
                    .filter(|&ms| ms > 0)
                    .map(|ms| FsyncPolicy::Group(Duration::from_millis(ms)))
                    .ok_or_else(unknown),
                None => Err(unknown()),
            },
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Group(interval) => write!(f, "group:{}", interval.as_millis()),
            other => f.write_str(other.label()),
        }
    }
}

/// Why a WAL operation failed — the error taxonomy of the failure model.
///
/// The three variants carry distinct contracts:
///
/// * [`WalError::Crashed`] — the writer *died* (an armed crash point
///   simulating the process dying). Only a restart + recovery brings the log
///   back.
/// * [`WalError::Storage`] — a storage operation failed after the configured
///   retries (or, for fsync, immediately — a failed fsync is never retried:
///   the kernel may have dropped the dirty pages, so a later "successful"
///   fsync proves nothing about them). This is the *root cause* reported to
///   the committer whose record was in flight; the log is poisoned.
/// * [`WalError::Degraded`] — the log was already poisoned by an earlier
///   [`WalError::Storage`] failure when this operation arrived; it was
///   refused up front without touching storage or staging the record. The
///   caller can keep reading and retry writes after the store re-arms onto a
///   fresh segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The writer died (injected crash point) before the record was
    /// acknowledged as durable. The in-memory commit happened; recovery
    /// may or may not include the record.
    Crashed,
    /// A storage operation failed; the record in flight was not acknowledged
    /// and the log is poisoned until it is re-armed (or the process restarts
    /// and recovers).
    Storage {
        /// The operation that failed.
        op: StorageOp,
        /// The `io::ErrorKind` the operation reported (e.g.
        /// [`std::io::ErrorKind::StorageFull`] for ENOSPC).
        kind: std::io::ErrorKind,
    },
    /// The log was already poisoned by an earlier storage failure; the
    /// operation was refused without side effects.
    Degraded,
}

impl WalError {
    /// A [`WalError::Storage`] for a failed `op`.
    pub fn storage(op: StorageOp, kind: std::io::ErrorKind) -> WalError {
        WalError::Storage { op, kind }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Crashed => {
                f.write_str("the WAL writer crashed before the record was durable")
            }
            WalError::Storage { op, kind } => {
                write!(f, "WAL storage failure: {op} failed ({kind}); the log is poisoned")
            }
            WalError::Degraded => f.write_str(
                "the WAL is degraded by an earlier storage failure; writes are refused until it is re-armed",
            ),
        }
    }
}

impl std::error::Error for WalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses_and_rejects() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(
            FsyncPolicy::parse("group"),
            Ok(FsyncPolicy::Group(DEFAULT_GROUP_INTERVAL))
        );
        assert_eq!(
            FsyncPolicy::parse("group:7"),
            Ok(FsyncPolicy::Group(Duration::from_millis(7)))
        );
        assert_eq!(FsyncPolicy::parse("none"), Ok(FsyncPolicy::None));
        for bad in ["", "Always", "group:", "group:0", "group:x", "sync"] {
            let err = FsyncPolicy::parse(bad).unwrap_err();
            assert!(err.contains("always, group, group:<ms>, none"), "{err}");
        }
    }

    #[test]
    fn fsync_policy_labels_and_display() {
        assert_eq!(FsyncPolicy::Always.label(), "always");
        assert_eq!(FsyncPolicy::default().label(), "group");
        assert_eq!(FsyncPolicy::None.label(), "none");
        assert_eq!(
            FsyncPolicy::Group(Duration::from_millis(5)).to_string(),
            "group:5"
        );
        assert_eq!(FsyncPolicy::Always.to_string(), "always");
    }
}
