//! The storage abstraction under the WAL — and the fault injector behind it.
//!
//! Every file-system operation the log writer, segment/snapshot layout and
//! recovery scan perform goes through the [`WalFs`]/[`WalFile`] traits
//! instead of calling `std::fs` directly. Production uses [`RealFs`] (a
//! zero-cost passthrough); tests wrap it in a [`FaultFs`] whose shared
//! [`FaultPlan`] can arm any [`StorageOp`] to fail with an injected
//! EIO/ENOSPC — one-shot, N-times-then-succeed, forever, or probabilistically
//! — optionally leaving a *short write* behind (a written prefix of the
//! buffer, exactly what a real ENOSPC mid-`write(2)` leaves).
//!
//! The plan mirrors the [`tlstm_testutil::CrashPoints`] idiom: cheap cloned
//! handles share one registry, a disarmed plan answers every check with a
//! single relaxed atomic load, and everything that fired is recorded for the
//! test to assert on. Schedules can also be written as strings (see
//! [`FaultPlan::parse`]) for CLI/experiment use:
//!
//! ```text
//! write:enospc:once:short ; fsync:eio:times=2 ; rename:eio:p=250,seed=7
//! ```
//!
//! Fault *policy* — what the writer does when an injected (or real) error
//! comes back — lives in [`crate::writer`]: bounded retry with exponential
//! backoff for appends, poison-never-retry for fsync, typed
//! [`crate::WalError::Storage`] surfacing everywhere else.

use std::fmt;
use std::fs;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The storage operations the WAL performs — the injection *sites* of a
/// [`FaultPlan`] and the `op` carried by [`crate::WalError::Storage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageOp {
    /// Creating the log directory (`create_dir_all`).
    CreateDir,
    /// Creating (or truncating) a segment/snapshot file.
    Create,
    /// Re-opening an existing file for in-place repair.
    Open,
    /// Reading a whole file (segments and snapshots during recovery).
    Read,
    /// Listing the log directory.
    ListDir,
    /// Appending bytes to an open file.
    Write,
    /// `fsync`/`fdatasync` of an open file.
    Fsync,
    /// Truncating/extending an open file (`ftruncate`).
    SetLen,
    /// Renaming a file (snapshot tmp → final).
    Rename,
    /// Unlinking a file (pruning, discarding unreachable segments).
    Remove,
    /// `fsync` of the directory itself (entry durability).
    SyncDir,
}

impl StorageOp {
    /// Every operation, for exhaustive fault matrices.
    pub const ALL: [StorageOp; 11] = [
        StorageOp::CreateDir,
        StorageOp::Create,
        StorageOp::Open,
        StorageOp::Read,
        StorageOp::ListDir,
        StorageOp::Write,
        StorageOp::Fsync,
        StorageOp::SetLen,
        StorageOp::Rename,
        StorageOp::Remove,
        StorageOp::SyncDir,
    ];

    /// The identifier used in schedule strings and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            StorageOp::CreateDir => "create-dir",
            StorageOp::Create => "create",
            StorageOp::Open => "open",
            StorageOp::Read => "read",
            StorageOp::ListDir => "list-dir",
            StorageOp::Write => "write",
            StorageOp::Fsync => "fsync",
            StorageOp::SetLen => "set-len",
            StorageOp::Rename => "rename",
            StorageOp::Remove => "remove",
            StorageOp::SyncDir => "sync-dir",
        }
    }

    fn parse(token: &str) -> Option<StorageOp> {
        StorageOp::ALL.into_iter().find(|op| op.label() == token)
    }
}

impl fmt::Display for StorageOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An open WAL file: the write-side surface the log writer needs. Reads go
/// through [`WalFs::read`] (recovery slurps whole files).
pub trait WalFile: Send + fmt::Debug {
    /// Appends `buf` at the current cursor. May fail after writing a prefix
    /// (a *short write*) — the writer repairs with [`WalFile::set_len`] +
    /// [`WalFile::seek_to`].
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Repositions the write cursor (recovery from a short write). Never
    /// fault-injected: it touches no storage, only the descriptor.
    fn seek_to(&mut self, pos: u64) -> io::Result<()>;
    /// `fdatasync`: data durability, metadata only if needed.
    fn sync_data(&self) -> io::Result<()>;
    /// `fsync`: data + metadata durability.
    fn sync_all(&self) -> io::Result<()>;
    /// Truncates or extends the file.
    fn set_len(&self, len: u64) -> io::Result<()>;
    /// A second handle to the same open file (the sync stage's handle).
    fn try_clone(&self) -> io::Result<Box<dyn WalFile>>;
}

/// The file-system surface of the WAL: everything `writer`, `files` and
/// `recovery` touch. Implementations must be shareable across the writer
/// threads ([`Send`] + [`Sync`]).
pub trait WalFs: Send + Sync + fmt::Debug {
    /// `create_dir_all`.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Creates (truncating if present) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>>;
    /// Opens an existing file for in-place repair (no truncation).
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn WalFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Lists a directory as `(file_name, full_path)` pairs (files whose
    /// names are not valid UTF-8 are skipped — the WAL never creates any).
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<(String, PathBuf)>>;
    /// Renames a file (atomic within a directory on POSIX).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Unlinks a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs the directory itself, making renames/creations/unlinks of its
    /// entries durable. Without this, a power failure could persist the
    /// unlink of an old snapshot while the rename of its replacement is
    /// still only in the page cache.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production file system: a passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl RealFs {
    /// A shared handle, for options defaults.
    pub fn shared() -> Arc<dyn WalFs> {
        Arc::new(RealFs)
    }
}

#[derive(Debug)]
struct RealFile(fs::File);

impl WalFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(pos)).map(|_| ())
    }
    fn sync_data(&self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn try_clone(&self) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(RealFile(self.0.try_clone()?)))
    }
}

impl WalFs for RealFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(RealFile(fs::File::create(path)?)))
    }
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(RealFile(
            fs::OpenOptions::new().write(true).open(path)?,
        )))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<(String, PathBuf)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                out.push((name.to_string(), entry.path()));
            }
        }
        Ok(out)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            fs::File::open(dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            // Directory handles cannot be fsynced portably elsewhere;
            // metadata durability then depends on the platform's rename
            // semantics.
            let _ = dir;
            Ok(())
        }
    }
}

/// Which errno an injected fault surfaces as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// A generic I/O error (EIO — media failure, controller timeout, ...).
    Eio,
    /// Out of space (ENOSPC).
    Enospc,
}

impl FaultError {
    /// The `io::ErrorKind` the injected error carries (what
    /// [`crate::WalError::Storage`] ends up reporting).
    pub fn kind(self) -> io::ErrorKind {
        match self {
            FaultError::Eio => io::ErrorKind::Other,
            FaultError::Enospc => io::ErrorKind::StorageFull,
        }
    }

    /// The identifier used in schedule strings.
    pub fn label(self) -> &'static str {
        match self {
            FaultError::Eio => "eio",
            FaultError::Enospc => "enospc",
        }
    }

    fn parse(token: &str) -> Option<FaultError> {
        match token {
            "eio" => Some(FaultError::Eio),
            "enospc" => Some(FaultError::Enospc),
            _ => None,
        }
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// When an armed fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultBudget {
    /// Fail the next `n` matching operations, then succeed (disarms itself;
    /// `Times(1)` is the one-shot).
    Times(u32),
    /// Fail every matching operation until the plan is cleared.
    Forever,
    /// Fail each matching operation with probability `permille`/1000,
    /// deterministically derived from the seeded xorshift state.
    Permille {
        /// Firing probability in 1/1000ths.
        permille: u32,
        /// Current xorshift* state (seeded at arm time).
        state: u64,
    },
}

/// One armed fault: which error, how often, and whether a failing write
/// leaves a short (half-written) prefix behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The injected errno.
    pub error: FaultError,
    /// How many / which matching operations fail.
    pub budget: FaultBudget,
    /// For [`StorageOp::Write`]: write the first half of the buffer before
    /// failing, modelling ENOSPC/EIO mid-`write(2)`.
    pub short_write: bool,
}

impl Fault {
    /// Fails exactly the next matching operation.
    pub fn once(error: FaultError) -> Fault {
        Fault::times(1, error)
    }

    /// Fails the next `n` matching operations, then succeeds.
    pub fn times(n: u32, error: FaultError) -> Fault {
        Fault {
            error,
            budget: FaultBudget::Times(n),
            short_write: false,
        }
    }

    /// Fails every matching operation until lifted.
    pub fn forever(error: FaultError) -> Fault {
        Fault {
            error,
            budget: FaultBudget::Forever,
            short_write: false,
        }
    }

    /// Fails each matching operation with probability `permille`/1000
    /// (deterministic per `seed`).
    pub fn permille(permille: u32, seed: u64, error: FaultError) -> Fault {
        Fault {
            error,
            budget: FaultBudget::Permille {
                permille,
                state: if seed == 0 {
                    0x9E37_79B9_7F4A_7C15
                } else {
                    seed
                },
            },
            short_write: false,
        }
    }

    /// Marks the fault as a short write (half the buffer lands first).
    pub fn short(mut self) -> Fault {
        self.short_write = true;
        self
    }
}

#[derive(Debug, Default)]
struct PlanInner {
    /// Fast-path gate: `false` ⇒ nothing armed, `check` is one load.
    enabled: AtomicBool,
    /// Armed faults, at most one per op (re-arming replaces).
    armed: Mutex<Vec<(StorageOp, Fault)>>,
    /// Every fault that fired, in order.
    fired: Mutex<Vec<(StorageOp, FaultError)>>,
}

/// A shared, armable fault schedule (the [`CrashPoints`] idiom for storage
/// errors). Clones share one registry; a disarmed plan costs one relaxed
/// atomic load per operation.
///
/// [`CrashPoints`]: tlstm_testutil::CrashPoints
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl FaultPlan {
    /// A plan with nothing armed.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arms `fault` on `op`, replacing any fault already armed there.
    pub fn arm(&self, op: StorageOp, fault: Fault) {
        let mut armed = lock_plan(&self.inner.armed);
        armed.retain(|(armed_op, _)| *armed_op != op);
        armed.push((op, fault));
        self.inner.enabled.store(true, Ordering::Release);
    }

    /// Lifts the fault armed on `op`, if any.
    pub fn lift(&self, op: StorageOp) {
        let mut armed = lock_plan(&self.inner.armed);
        armed.retain(|(armed_op, _)| *armed_op != op);
        if armed.is_empty() {
            self.inner.enabled.store(false, Ordering::Release);
        }
    }

    /// Lifts every armed fault (the "storage recovered" transition a
    /// successful `try_rearm` depends on). The fired record is kept.
    pub fn clear(&self) {
        lock_plan(&self.inner.armed).clear();
        self.inner.enabled.store(false, Ordering::Release);
    }

    /// Consults the plan for `op`. `Some((error, short_write))` means the
    /// operation must fail with `error` (after a half-buffer prefix write if
    /// `short_write` and the op is a write). Decrements/consumes budgets and
    /// records the firing.
    pub fn check(&self, op: StorageOp) -> Option<(io::Error, bool)> {
        if !self.inner.enabled.load(Ordering::Acquire) {
            return None;
        }
        self.check_slow(op)
    }

    #[cold]
    fn check_slow(&self, op: StorageOp) -> Option<(io::Error, bool)> {
        let mut armed = lock_plan(&self.inner.armed);
        let index = armed.iter().position(|(armed_op, _)| *armed_op == op)?;
        let (error, short) = {
            let fault = &mut armed[index].1;
            let fires = match &mut fault.budget {
                FaultBudget::Times(n) => {
                    *n = n.saturating_sub(1);
                    true
                }
                FaultBudget::Forever => true,
                FaultBudget::Permille { permille, state } => {
                    // xorshift* step, same generator as testutil::TestRng.
                    let mut x = *state;
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    *state = x;
                    x.wrapping_mul(0x2545_F491_4F6C_DD1D) % 1000 < u64::from(*permille)
                }
            };
            if !fires {
                return None;
            }
            (fault.error, fault.short_write)
        };
        if matches!(armed[index].1.budget, FaultBudget::Times(0)) {
            armed.remove(index);
            if armed.is_empty() {
                self.inner.enabled.store(false, Ordering::Release);
            }
        }
        drop(armed);
        lock_plan(&self.inner.fired).push((op, error));
        Some((
            io::Error::new(error.kind(), format!("injected {error} on {op}")),
            short,
        ))
    }

    /// Every fault that fired so far, in firing order.
    pub fn fired(&self) -> Vec<(StorageOp, FaultError)> {
        lock_plan(&self.inner.fired).clone()
    }

    /// How many times a fault fired on `op`.
    pub fn fired_count(&self, op: StorageOp) -> usize {
        lock_plan(&self.inner.fired)
            .iter()
            .filter(|(fired_op, _)| *fired_op == op)
            .count()
    }

    /// Parses a schedule string into a plan. Clauses are `;`-separated;
    /// each clause is `op:error[:mode][:short]` with
    ///
    /// * `op` — a [`StorageOp::label`] (`write`, `fsync`, `set-len`, ...),
    /// * `error` — `eio` or `enospc`,
    /// * `mode` — `once` (default), `times=<n>`, `always`, or
    ///   `p=<permille>[,seed=<s>]`,
    /// * `short` — only meaningful on `write`: leave a half-written prefix.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause and the accepted
    /// grammar.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let plan = FaultPlan::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let bad = |why: &str| {
                format!(
                    "bad fault clause '{clause}' ({why}); want \
                     op:error[:mode][:short] with op one of \
                     {}, error eio|enospc, mode once|times=<n>|always|p=<permille>[,seed=<s>]",
                    StorageOp::ALL.map(|op| op.label()).join("|"),
                )
            };
            let mut parts = clause.split(':');
            let op = parts
                .next()
                .and_then(StorageOp::parse)
                .ok_or_else(|| bad("unknown op"))?;
            let error = parts
                .next()
                .and_then(FaultError::parse)
                .ok_or_else(|| bad("unknown error"))?;
            let mut fault = Fault::once(error);
            for part in parts {
                match part {
                    "once" => fault.budget = FaultBudget::Times(1),
                    "always" => fault.budget = FaultBudget::Forever,
                    "short" => fault.short_write = true,
                    other => {
                        if let Some(n) = other.strip_prefix("times=") {
                            let n: u32 = n.parse().map_err(|_| bad("bad times=<n>"))?;
                            fault.budget = FaultBudget::Times(n.max(1));
                        } else if let Some(p) = other.strip_prefix("p=") {
                            let (permille, seed) = match p.split_once(",seed=") {
                                Some((p, s)) => (
                                    p.parse().map_err(|_| bad("bad p=<permille>"))?,
                                    s.parse().map_err(|_| bad("bad seed=<s>"))?,
                                ),
                                None => (p.parse().map_err(|_| bad("bad p=<permille>"))?, 1),
                            };
                            let short = fault.short_write;
                            fault = Fault::permille(permille, seed, error);
                            fault.short_write = short;
                        } else {
                            return Err(bad("unknown modifier"));
                        }
                    }
                }
            }
            plan.arm(op, fault);
        }
        Ok(plan)
    }
}

/// Poisoned-plan policy: the plan's locks protect test-harness bookkeeping
/// only; a panic while holding one means the *test* is already failing, so
/// continuing with the inner value cannot corrupt anything durable.
fn lock_plan<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// A [`WalFs`] that injects the faults of a shared [`FaultPlan`] in front of
/// an inner file system (by default [`RealFs`]).
#[derive(Debug, Clone)]
pub struct FaultFs {
    inner: Arc<dyn WalFs>,
    plan: FaultPlan,
}

impl Default for FaultFs {
    fn default() -> Self {
        FaultFs::new()
    }
}

impl FaultFs {
    /// A fault layer over [`RealFs`] with a fresh (disarmed) plan.
    pub fn new() -> FaultFs {
        FaultFs::wrapping(Arc::new(RealFs))
    }

    /// A fault layer over an arbitrary inner file system.
    pub fn wrapping(inner: Arc<dyn WalFs>) -> FaultFs {
        FaultFs {
            inner,
            plan: FaultPlan::new(),
        }
    }

    /// A fault layer over [`RealFs`] driven by an existing plan handle.
    pub fn with_plan(plan: FaultPlan) -> FaultFs {
        FaultFs {
            inner: Arc::new(RealFs),
            plan,
        }
    }

    /// A cloned handle to the plan, for arming/inspecting from the test
    /// while the file system itself is owned by the store under test.
    pub fn plan(&self) -> FaultPlan {
        self.plan.clone()
    }
}

#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn WalFile>,
    plan: FaultPlan,
}

impl WalFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Some((error, short)) = self.plan.check(StorageOp::Write) {
            if short && buf.len() >= 2 {
                // A short write: half the buffer lands before the error —
                // best-effort, the error below is what the caller handles.
                let _ = self.inner.write_all(&buf[..buf.len() / 2]);
            }
            return Err(error);
        }
        self.inner.write_all(buf)
    }
    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        // Never injected: repositioning touches only the descriptor.
        self.inner.seek_to(pos)
    }
    fn sync_data(&self) -> io::Result<()> {
        if let Some((error, _)) = self.plan.check(StorageOp::Fsync) {
            return Err(error);
        }
        self.inner.sync_data()
    }
    fn sync_all(&self) -> io::Result<()> {
        if let Some((error, _)) = self.plan.check(StorageOp::Fsync) {
            return Err(error);
        }
        self.inner.sync_all()
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        if let Some((error, _)) = self.plan.check(StorageOp::SetLen) {
            return Err(error);
        }
        self.inner.set_len(len)
    }
    fn try_clone(&self) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(FaultFile {
            inner: self.inner.try_clone()?,
            plan: self.plan.clone(),
        }))
    }
}

impl WalFs for FaultFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        if let Some((error, _)) = self.plan.check(StorageOp::CreateDir) {
            return Err(error);
        }
        self.inner.create_dir_all(dir)
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        if let Some((error, _)) = self.plan.check(StorageOp::Create) {
            return Err(error);
        }
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            plan: self.plan.clone(),
        }))
    }
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        if let Some((error, _)) = self.plan.check(StorageOp::Open) {
            return Err(error);
        }
        Ok(Box::new(FaultFile {
            inner: self.inner.open_write(path)?,
            plan: self.plan.clone(),
        }))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if let Some((error, _)) = self.plan.check(StorageOp::Read) {
            return Err(error);
        }
        self.inner.read(path)
    }
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<(String, PathBuf)>> {
        if let Some((error, _)) = self.plan.check(StorageOp::ListDir) {
            return Err(error);
        }
        self.inner.list_dir(dir)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some((error, _)) = self.plan.check(StorageOp::Rename) {
            return Err(error);
        }
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if let Some((error, _)) = self.plan.check(StorageOp::Remove) {
            return Err(error);
        }
        self.inner.remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if let Some((error, _)) = self.plan.check(StorageOp::SyncDir) {
            return Err(error);
        }
        self.inner.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_passes_everything_through() {
        let plan = FaultPlan::new();
        for op in StorageOp::ALL {
            assert!(plan.check(op).is_none(), "{op}");
        }
        assert_eq!(plan.fired(), Vec::new());
    }

    #[test]
    fn one_shot_faults_fire_once_on_their_op_only() {
        let plan = FaultPlan::new();
        plan.arm(StorageOp::Fsync, Fault::once(FaultError::Eio));
        assert!(plan.check(StorageOp::Write).is_none(), "wrong op");
        let (error, short) = plan.check(StorageOp::Fsync).expect("armed");
        assert_eq!(error.kind(), io::ErrorKind::Other);
        assert!(!short);
        assert!(plan.check(StorageOp::Fsync).is_none(), "one-shot");
        assert_eq!(plan.fired(), vec![(StorageOp::Fsync, FaultError::Eio)]);
        assert_eq!(plan.fired_count(StorageOp::Fsync), 1);
        assert_eq!(plan.fired_count(StorageOp::Write), 0);
    }

    #[test]
    fn times_and_forever_budgets() {
        let plan = FaultPlan::new();
        plan.arm(StorageOp::Write, Fault::times(2, FaultError::Enospc));
        assert!(plan.check(StorageOp::Write).is_some());
        assert!(plan.check(StorageOp::Write).is_some());
        assert!(plan.check(StorageOp::Write).is_none(), "budget exhausted");

        plan.arm(StorageOp::Write, Fault::forever(FaultError::Eio));
        for _ in 0..10 {
            assert!(plan.check(StorageOp::Write).is_some());
        }
        plan.clear();
        assert!(plan.check(StorageOp::Write).is_none(), "cleared");
        assert_eq!(plan.fired_count(StorageOp::Write), 12, "history kept");
    }

    #[test]
    fn permille_faults_are_deterministic_per_seed() {
        let fire_pattern = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new();
            plan.arm(
                StorageOp::Write,
                Fault::permille(500, seed, FaultError::Eio),
            );
            (0..64)
                .map(|_| plan.check(StorageOp::Write).is_some())
                .collect()
        };
        assert_eq!(fire_pattern(7), fire_pattern(7), "same seed, same schedule");
        let fired = fire_pattern(7).iter().filter(|&&f| f).count();
        assert!(
            (10..=54).contains(&fired),
            "p=0.5 over 64 draws fired {fired} times"
        );
    }

    #[test]
    fn enospc_maps_to_storage_full() {
        let plan = FaultPlan::new();
        plan.arm(StorageOp::Write, Fault::once(FaultError::Enospc));
        let (error, _) = plan.check(StorageOp::Write).expect("armed");
        assert_eq!(error.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn clones_share_the_registry() {
        let plan = FaultPlan::new();
        let clone = plan.clone();
        plan.arm(StorageOp::Remove, Fault::once(FaultError::Eio));
        assert!(clone.check(StorageOp::Remove).is_some());
        assert!(plan.check(StorageOp::Remove).is_none());
        assert_eq!(plan.fired_count(StorageOp::Remove), 1);
    }

    #[test]
    fn schedule_strings_parse_and_reject() {
        let plan = FaultPlan::parse("write:enospc:once:short ; fsync:eio:times=2").unwrap();
        let (error, short) = plan.check(StorageOp::Write).expect("armed");
        assert_eq!(error.kind(), io::ErrorKind::StorageFull);
        assert!(short);
        assert!(plan.check(StorageOp::Fsync).is_some());
        assert!(plan.check(StorageOp::Fsync).is_some());
        assert!(plan.check(StorageOp::Fsync).is_none());

        let plan = FaultPlan::parse("rename:eio:p=1000,seed=3").unwrap();
        assert!(
            plan.check(StorageOp::Rename).is_some(),
            "p=1000 always fires"
        );

        let plan = FaultPlan::parse("set-len:eio:always").unwrap();
        for _ in 0..4 {
            assert!(plan.check(StorageOp::SetLen).is_some());
        }

        assert!(FaultPlan::parse("")
            .unwrap()
            .check(StorageOp::Write)
            .is_none());
        for bad in [
            "florp:eio",
            "write:ebadf",
            "write:eio:sometimes",
            "write:eio:times=x",
            "write:eio:p=",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains("bad fault clause"), "{bad}: {err}");
        }
    }

    #[test]
    fn fault_fs_injects_on_files_and_short_writes_leave_a_prefix() {
        let dir = tlstm_testutil::TempDir::new("txlog-vfs");
        let fs = FaultFs::new();
        let plan = fs.plan();
        let path = dir.path().join("probe");

        let mut file = fs.create(&path).unwrap();
        file.write_all(b"0123456789").unwrap();

        plan.arm(StorageOp::Write, Fault::once(FaultError::Enospc).short());
        let err = file.write_all(b"ABCDEFGH").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        drop(file);
        assert_eq!(
            fs.read(&path).unwrap(),
            b"0123456789ABCD",
            "half the failed buffer landed before the error"
        );

        plan.arm(StorageOp::Read, Fault::once(FaultError::Eio));
        assert!(fs.read(&path).is_err());
        assert_eq!(fs.read(&path).unwrap(), b"0123456789ABCD", "one-shot");
    }
}
