//! The recovery scan: snapshot + contiguous record suffix + tail repair.
//!
//! [`recover`] runs **before** a new [`crate::LogWriter`] is opened on a log
//! directory. It rebuilds the durable state description:
//!
//! 1. load the **newest valid snapshot** (invalid/torn ones are skipped with
//!    a diagnostic, falling back to older snapshots, then to "empty");
//! 2. replay the segments from the snapshot's LSN on, collecting the
//!    **dense** record run `base, base+1, ...` (records below the base are
//!    covered by the snapshot and skipped);
//! 3. stop at the first torn or corrupt frame — the torn tail a crash
//!    mid-append leaves — and **repair** it: the torn segment is truncated
//!    back to its last valid frame boundary and any later segment is
//!    deleted, so the next scan of the directory is clean.
//!
//! The recovery invariants the tests pin down:
//!
//! * recovery never panics, whatever the bytes on disk;
//! * the recovered records are exactly `base..next_lsn` in order — a
//!   *batch-boundary prefix* of the committed history;
//! * every record acknowledged under `fsync=always`/`group` is below
//!   `next_lsn` (acks happen only after the covering fsync).

#![deny(clippy::unwrap_used)]

use std::io;
use std::path::Path;

use crate::files::{list_segments_with, list_snapshots_with, read_snapshot_with};
use crate::frame::read_frames;
use crate::vfs::{RealFs, WalFs};

/// What [`recover`] found in a log directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredLog {
    /// The newest valid snapshot, as `(lsn, payload)`: the payload covers
    /// every record with `lsn <` the snapshot LSN.
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// The dense record run to replay on top of the snapshot, ascending.
    pub records: Vec<(u64, Vec<u8>)>,
    /// The LSN the next committed record must carry (pass as
    /// [`crate::WalOptions::start_lsn`]).
    pub next_lsn: u64,
    /// Human-readable notes about anything skipped, repaired or discarded.
    pub diagnostics: Vec<String>,
}

/// Scans (and, where a torn tail is found, repairs) the log directory.
/// See the module docs for the exact rules. Creates the directory if absent.
///
/// # Errors
///
/// Propagates file-system failures (unreadable directory, failed truncation).
/// Corrupt *content* is never an error — it is skipped or discarded with a
/// diagnostic.
pub fn recover(dir: &Path) -> io::Result<RecoveredLog> {
    recover_with(&RealFs, dir)
}

/// [`recover`] through an explicit [`WalFs`] (fault-injection tests drive a
/// [`crate::FaultFs`] through this).
///
/// # Errors
///
/// Propagates file-system failures (unreadable directory, failed truncation).
pub fn recover_with(fs: &dyn WalFs, dir: &Path) -> io::Result<RecoveredLog> {
    fs.create_dir_all(dir)?;
    let mut diagnostics = Vec::new();

    let mut snapshot = None;
    for (_, path) in list_snapshots_with(fs, dir)? {
        match read_snapshot_with(fs, &path) {
            Some(found) => {
                snapshot = Some(found);
                break;
            }
            None => diagnostics.push(format!(
                "ignoring invalid snapshot {} (torn or corrupt)",
                path.display()
            )),
        }
    }
    let base = snapshot.as_ref().map_or(0, |(lsn, _)| *lsn);

    let segments = list_segments_with(fs, dir)?;
    // Replay starts in the last segment that begins at or below the base;
    // earlier segments are fully covered by the snapshot.
    let start_index = segments
        .iter()
        .rposition(|&(start, _)| start <= base)
        .unwrap_or(0);

    let mut records = Vec::new();
    let mut expected = base;
    let mut stopped = false;
    for (start, path) in &segments[start_index..] {
        if stopped {
            // Anything after the stop point is unreachable history; delete it
            // so the directory's "dense prefix" invariant holds again.
            fs.remove_file(path)?;
            diagnostics.push(format!(
                "deleted unreachable segment {} (starts at LSN {start} beyond the valid tail)",
                path.display()
            ));
            continue;
        }
        let bytes = fs.read(path)?;
        let scan = read_frames(&bytes);
        for (lsn, payload) in scan.records {
            if lsn < expected {
                continue; // covered by the snapshot
            }
            if lsn == expected {
                records.push((lsn, payload));
                expected += 1;
            } else {
                diagnostics.push(format!(
                    "LSN gap in {}: expected {expected}, found {lsn}; stopping replay",
                    path.display()
                ));
                stopped = true;
                break;
            }
        }
        if let Some(reason) = scan.truncation {
            if !stopped {
                // An all-zero tail is preallocation residue (the writer
                // extends segments with `set_len` and trims them at close;
                // a crash skips the trim) — expected, not corruption.
                if bytes[scan.valid_bytes..].iter().all(|&b| b == 0) {
                    diagnostics.push(format!(
                        "trimmed preallocated tail of {}: {} zero bytes",
                        path.display(),
                        bytes.len() - scan.valid_bytes
                    ));
                } else {
                    diagnostics.push(format!(
                        "discarded torn tail of {}: {reason}",
                        path.display()
                    ));
                }
            }
            // Repair: drop the torn bytes so future scans end cleanly.
            let file = fs.open_write(path)?;
            file.set_len(scan.valid_bytes as u64)?;
            file.sync_data()?;
            stopped = true;
        }
    }

    Ok(RecoveredLog {
        snapshot,
        records,
        next_lsn: expected,
        diagnostics,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::files::{segment_path, write_snapshot};
    use crate::frame::encode_frame_into;
    use tlstm_testutil::TempDir;

    fn write_segment(dir: &Path, start: u64, records: &[(u64, &[u8])]) {
        let mut bytes = Vec::new();
        for &(lsn, payload) in records {
            encode_frame_into(&mut bytes, lsn, payload);
        }
        std::fs::write(segment_path(dir, start), bytes).unwrap();
    }

    #[test]
    fn empty_directory_recovers_to_empty() {
        let dir = TempDir::new("txlog-recover");
        let log = recover(dir.path()).unwrap();
        assert_eq!(log.snapshot, None);
        assert_eq!(log.records, Vec::new());
        assert_eq!(log.next_lsn, 0);
        // A directory that does not exist yet is created.
        let log = recover(&dir.path().join("nested")).unwrap();
        assert_eq!(log.next_lsn, 0);
    }

    #[test]
    fn snapshot_plus_suffix_replay() {
        let dir = TempDir::new("txlog-recover");
        write_segment(dir.path(), 0, &[(0, b"a"), (1, b"b"), (2, b"c")]);
        write_segment(dir.path(), 3, &[(3, b"d"), (4, b"e")]);
        write_snapshot(dir.path(), 2, b"snap@2").unwrap();
        let log = recover(dir.path()).unwrap();
        assert_eq!(log.snapshot, Some((2, b"snap@2".to_vec())));
        // Record 2 is in the first segment (below the rotation point) but not
        // covered by the snapshot; 0 and 1 are skipped.
        assert_eq!(
            log.records,
            vec![(2, b"c".to_vec()), (3, b"d".to_vec()), (4, b"e".to_vec()),]
        );
        assert_eq!(log.next_lsn, 5);
    }

    #[test]
    fn invalid_snapshot_falls_back_to_older() {
        let dir = TempDir::new("txlog-recover");
        write_segment(dir.path(), 0, &[(0, b"a"), (1, b"b")]);
        write_snapshot(dir.path(), 1, b"good").unwrap();
        let bad = write_snapshot(dir.path(), 2, b"newer-but-corrupt").unwrap();
        let mut bytes = std::fs::read(&bad).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&bad, bytes).unwrap();

        let log = recover(dir.path()).unwrap();
        assert_eq!(log.snapshot, Some((1, b"good".to_vec())));
        assert_eq!(log.records, vec![(1, b"b".to_vec())]);
        assert_eq!(log.next_lsn, 2);
        assert!(!log.diagnostics.is_empty());
    }

    #[test]
    fn torn_tail_is_discarded_and_repaired() {
        let dir = TempDir::new("txlog-recover");
        let mut bytes = Vec::new();
        encode_frame_into(&mut bytes, 0, b"keep me");
        let keep = bytes.len();
        encode_frame_into(&mut bytes, 1, b"torn record");
        let torn = keep + (bytes.len() - keep) / 2;
        std::fs::write(segment_path(dir.path(), 0), &bytes[..torn]).unwrap();

        let log = recover(dir.path()).unwrap();
        assert_eq!(log.records, vec![(0, b"keep me".to_vec())]);
        assert_eq!(log.next_lsn, 1);
        assert!(log.diagnostics.iter().any(|d| d.contains("torn tail")));
        // The file was truncated back to the valid prefix: a second recovery
        // is clean.
        assert_eq!(
            std::fs::metadata(segment_path(dir.path(), 0))
                .unwrap()
                .len(),
            keep as u64
        );
        let again = recover(dir.path()).unwrap();
        assert_eq!(again.records, log.records);
        assert!(again.diagnostics.is_empty());
    }

    #[test]
    fn segments_after_a_torn_segment_are_deleted() {
        // Simulates: crash left a torn tail in wal-0, a restart then opened
        // wal-1 and appended — recovery of *that* state must keep wal-1. But
        // if wal-0's torn tail were still present with a *stale* wal-2 from
        // an older incarnation beyond a gap, the stale segment is deleted.
        let dir = TempDir::new("txlog-recover");
        let mut bytes = Vec::new();
        encode_frame_into(&mut bytes, 0, b"a");
        let keep = bytes.len();
        encode_frame_into(&mut bytes, 1, b"torn");
        std::fs::write(segment_path(dir.path(), 0), &bytes[..bytes.len() - 3]).unwrap();
        write_segment(dir.path(), 5, &[(5, b"stale")]);

        let log = recover(dir.path()).unwrap();
        assert_eq!(log.records, vec![(0, b"a".to_vec())]);
        assert_eq!(log.next_lsn, 1);
        assert!(!segment_path(dir.path(), 5).exists());
        assert_eq!(
            std::fs::metadata(segment_path(dir.path(), 0))
                .unwrap()
                .len(),
            keep as u64
        );
    }

    #[test]
    fn lsn_gap_stops_replay() {
        let dir = TempDir::new("txlog-recover");
        write_segment(dir.path(), 0, &[(0, b"a"), (2, b"gap")]);
        let log = recover(dir.path()).unwrap();
        assert_eq!(log.records, vec![(0, b"a".to_vec())]);
        assert_eq!(log.next_lsn, 1);
        assert!(log.diagnostics.iter().any(|d| d.contains("gap")));
    }

    #[test]
    fn recovery_never_panics_on_garbage() {
        let dir = TempDir::new("txlog-recover");
        std::fs::write(segment_path(dir.path(), 0), b"complete nonsense").unwrap();
        std::fs::write(crate::files::snapshot_path(dir.path(), 3), b"junk").unwrap();
        let log = recover(dir.path()).unwrap();
        assert_eq!(log.snapshot, None);
        assert_eq!(log.records, Vec::new());
        assert_eq!(log.next_lsn, 0);
    }
}
