//! The pipelined group-commit log writer.
//!
//! Two stages, two threads:
//!
//! * the **append stage** owns the current segment file. It drains committed
//!   `(lsn, payload)` records from the pending map (re-sequencing
//!   out-of-order arrivals so the on-disk log is always a dense, in-order
//!   prefix), encodes them into one batch buffer and `write`s it — then
//!   immediately loops to fill the next batch;
//! * the **sync stage** fsyncs what the append stage has written and
//!   acknowledges committers. While it is inside `fsync(2)` for batch N, the
//!   append stage is already encoding and writing batch N+1 — the fsync
//!   latency overlaps the next batch's fill instead of serialising with it.
//!
//! Segments are pre-allocated with `set_len` when created, so steady-state
//! appends stay inside the allocated extent and `sync_data` never pays a
//! metadata update. The preallocated zero tail is trimmed back to the
//! written bytes whenever a segment is closed (rotation or clean shutdown);
//! only a crash can leave one behind, and recovery treats an all-zero tail
//! as clean preallocation residue, not corruption.
//!
//! Committers hand records to the writer via [`WalHandle::append`] **after**
//! their STM commit assigned the LSN, then wait on the returned
//! [`CommitTicket`]. Acknowledgement is a *sequence watermark*: the sync
//! stage publishes `durable_upto` both under the state lock and as an atomic
//! that [`CommitTicket::wait`] loads first — a committer whose record is
//! already durable returns without touching the lock or parking. Laggards
//! fall back to one shared condvar that is woken **once per fsync**, so the
//! ack fan-out is O(1) per batch, not O(committers).
//!
//! The [`FsyncPolicy`] decides when the sync stage runs:
//! [`Always`](FsyncPolicy::Always) fsyncs every written batch (pipelined with
//! the next fill), [`Group`](FsyncPolicy::Group) fsyncs on an interval clock,
//! [`None`](FsyncPolicy::None) skips the sync stage entirely — the append
//! stage acknowledges right after the `write`.
//!
//! ## Failure model
//!
//! All storage goes through the [`WalFs`]/[`WalFile`] traits (production:
//! [`crate::RealFs`]; tests: [`crate::FaultFs`]), and every failure follows
//! one policy:
//!
//! * **Failed appends retry.** A failed `write` may be transient (and may
//!   have landed a short prefix); the append stage truncates the segment
//!   back to the last good byte, restores the cursor and retries with
//!   exponential backoff, bounded by [`RetryPolicy`]. Exhausted retries
//!   poison the log with [`WalError::Storage`].
//! * **A failed fsync is never retried.** After a failed `fsync(2)` the
//!   kernel may have dropped the dirty pages while keeping them clean in
//!   cache, so a *later* fsync that returns success proves nothing about
//!   them (the "fsyncgate" hazard). The sync stage poisons the log
//!   immediately; `durable_upto` and the watermark only ever advance over
//!   bytes a **successful** fsync covered.
//! * **A poisoned log refuses new work without side effects.** In-flight
//!   committers get the root-cause [`WalError::Storage`]; later appends and
//!   rotations get [`WalError::Degraded`] up front. The store layer can
//!   then keep serving reads and re-arm onto a fresh log (see
//!   `txkv::durable`).
//!
//! Both stages also honor the [`crate::crash_points`] of the configured
//! [`CrashPoints`] registry: when one fires, the stage abandons all I/O
//! exactly at that pipeline position, marks the log dead with
//! [`WalError::Crashed`] and fails every unacknowledged ticket — an
//! in-process, deterministic stand-in for the machine dying at that instant.
//! The one exception is a ticket whose LSN a successful fsync had already
//! covered when the writer died: its record is durable, so it reports `Ok`
//! (tracked by a second atomic, the *synced* watermark, stored before the
//! post-fsync crash points are consulted).

#![deny(clippy::unwrap_used)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tlstm_testutil::CrashPoints;

use crate::files::segment_path;
use crate::frame::encode_frame_into;
use crate::vfs::{StorageOp, WalFile, WalFs};
use crate::{crash_points, FsyncPolicy, RealFs, WalError, CRASH_POINT_ENV};

/// Default segment preallocation ([`WalOptions::preallocate_bytes`]).
pub const DEFAULT_SEGMENT_PREALLOC: u64 = 4 * 1024 * 1024;

/// The process-wide crash-point registry armed from [`CRASH_POINT_ENV`].
///
/// Read once: a process simulates at most one crash, and benchmarks open
/// stores in a loop — re-parsing the environment per [`WalOptions::default`]
/// would be wasted work (and was, before this was hoisted).
fn env_crash_points() -> &'static CrashPoints {
    static ENV: OnceLock<CrashPoints> = OnceLock::new();
    ENV.get_or_init(|| CrashPoints::from_env(CRASH_POINT_ENV))
}

/// Bounded retry with exponential backoff for *transient* append errors
/// ([`WalOptions::retry`]). Only `write` failures retry — see the module
/// docs for why fsync failures never do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times a failed write is retried before the log is poisoned
    /// (`0` fails on the first error).
    pub max_retries: u32,
    /// Backoff before retry `k` is `base_backoff × 2^(k-1)`, capped at 50ms.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(500),
        }
    }
}

impl RetryPolicy {
    /// No retries: every storage error is immediately terminal. Used by
    /// fault tests that need the first injected error surfaced as-is.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
        }
    }

    /// The backoff before retry attempt `attempt` (1-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        (self.base_backoff * 2u32.saturating_pow(exp)).min(Duration::from_millis(50))
    }
}

/// Configuration of a [`LogWriter`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// The LSN the next appended record will carry (0 for a fresh log,
    /// [`crate::RecoveredLog::next_lsn`] after recovery). The writer opens a
    /// fresh segment named after it.
    pub start_lsn: u64,
    /// When appends are fsynced (and therefore acknowledged).
    pub fsync: FsyncPolicy,
    /// Crash-injection registry; [`CrashPoints::disabled`] in production.
    /// [`WalOptions::default`] hands out the process-wide registry armed
    /// from [`CRASH_POINT_ENV`] (parsed once); tests inject their own.
    pub crash_points: CrashPoints,
    /// Size each new segment is extended to at creation (`set_len`), so
    /// steady-state fsyncs never pay a metadata update. `0` disables
    /// preallocation. Segments grow past this transparently if needed.
    pub preallocate_bytes: u64,
    /// The storage layer: [`crate::RealFs`] in production, a
    /// [`crate::FaultFs`] under fault injection.
    pub fs: Arc<dyn WalFs>,
    /// Retry/backoff for transient append errors.
    pub retry: RetryPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            start_lsn: 0,
            fsync: FsyncPolicy::default(),
            crash_points: env_crash_points().clone(),
            preallocate_bytes: DEFAULT_SEGMENT_PREALLOC,
            fs: RealFs::shared(),
            retry: RetryPolicy::default(),
        }
    }
}

/// Poisoned-mutex policy: the writer's mutexes guard multi-field state
/// transitions, so a thread that panicked while holding one may have left
/// the state torn. Serving from it could acknowledge non-durable records —
/// strictly worse than crashing — so the panic is propagated loudly instead
/// of recovered. (Stage threads themselves never panic on I/O failure: those
/// paths return typed [`WalError`]s; a poisoned lock therefore indicates a
/// bug, not a storage fault.)
fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex
        .lock()
        .expect("WAL mutex poisoned: a writer thread panicked mid-update")
}

#[derive(Debug)]
struct State {
    /// Committed records not yet written, keyed by LSN (re-sequencing buffer).
    pending: BTreeMap<u64, Vec<u8>>,
    /// The next LSN the writer will append — everything below is in the file.
    next_append: u64,
    /// All records with `lsn < durable_upto` are durable and acknowledged.
    /// Mirrored into [`Shared::durable_watermark`] under this lock.
    durable_upto: u64,
    /// All records with `lsn < written_upto` are written (≥ durable_upto
    /// while an fsync is pending, equal at rest).
    written_upto: u64,
    /// Rotation handshake: requests vs completions.
    rotations_requested: u64,
    rotations_done: u64,
    /// Start LSN of the segment currently being written.
    segment_start: u64,
    /// The append stage exited after a clean shutdown; the sync stage owes
    /// one final flush-and-ack before marking the log dead.
    append_done: bool,
    /// The first failure the writer suffered, if any. `Some` means nothing
    /// further will be written or acknowledged: [`WalError::Crashed`] for a
    /// simulated crash, [`WalError::Storage`] for a poisoned log.
    failure: Option<WalError>,
    /// Clean-shutdown request (set by [`LogWriter::drop`]).
    shutdown: bool,
}

impl State {
    fn dead(&self) -> bool {
        self.failure.is_some()
    }
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Lock-free mirror of [`State::durable_upto`]: the committers' ack
    /// fast path. Stored (release) under the state lock, loaded (acquire)
    /// without it.
    durable_watermark: AtomicU64,
    /// All records with `lsn <` this were covered by a **successful** fsync,
    /// whether or not the ack that follows it ever ran. Lets a ticket whose
    /// record became durable right before the writer died report `Ok`
    /// instead of `Crashed`. Always ≥ the durable watermark.
    synced_watermark: AtomicU64,
    /// The sync stage's handle to the current segment (swapped at rotation).
    /// Held only across a single `fsync` or the rotation swap.
    sync_file: Mutex<Box<dyn WalFile>>,
    /// Wakes the append stage (new work, rotation request, shutdown).
    /// Exactly one waiter — notify with `notify_one`.
    work_cv: Condvar,
    /// Wakes the sync stage (bytes written, shutdown handoff). Exactly one
    /// waiter — notify with `notify_one`.
    sync_cv: Condvar,
    /// Wakes committers and rotation waiters (durability advanced, death).
    ack_cv: Condvar,
}

impl Shared {
    /// Records the writer's (first) failure and wakes everyone: in-flight
    /// committers fail with the root cause, both stages exit, new work is
    /// refused.
    fn fail(&self, error: WalError) {
        let mut state = lock(&self.state);
        if state.failure.is_none() {
            // Storage failures are faults worth alerting on; `Crashed` also
            // marks clean shutdown and simulated crashes, so it is excluded
            // from the fault counter.
            if matches!(error, WalError::Storage { .. }) {
                txobs::metrics::wal().faults.inc();
            }
            state.failure = Some(error);
        }
        self.ack_cv.notify_all();
        self.work_cv.notify_one();
        self.sync_cv.notify_one();
    }

    /// Records that a successful fsync covered everything below `upto`.
    /// Must happen *before* any post-fsync crash point is consulted, so a
    /// dying writer cannot take this knowledge with it.
    fn note_synced(&self, upto: u64) {
        self.synced_watermark.fetch_max(upto, Ordering::AcqRel);
    }

    /// Acknowledges every record below `upto` as durable: one watermark
    /// store and one condvar broadcast per batch, regardless of how many
    /// committers are waiting.
    fn ack_durable(&self, upto: u64) {
        let mut state = lock(&self.state);
        if upto > state.durable_upto {
            state.durable_upto = upto;
            self.note_synced(upto);
            self.durable_watermark.store(upto, Ordering::Release);
            let wal = txobs::metrics::wal();
            wal.watermark_lag
                .set(state.written_upto.saturating_sub(upto));
            wal.queue_depth.set(state.pending.len() as u64);
            txobs::trace::trace(txobs::EventKind::WalWatermark, upto);
            self.ack_cv.notify_all();
        }
    }
}

/// The error a *new* operation gets when the log already failed earlier: a
/// storage-poisoned log degrades (the caller may re-arm and retry), a
/// simulated crash stays [`WalError::Crashed`] (only restart + recovery
/// helps). In-flight operations get the root cause itself instead.
fn refusal(failure: &WalError) -> WalError {
    match failure {
        WalError::Storage { .. } | WalError::Degraded => WalError::Degraded,
        WalError::Crashed => WalError::Crashed,
    }
}

/// The pipelined group-commit write-ahead-log writer: owns the append and
/// sync threads.
///
/// Dropping the writer performs a clean shutdown: the contiguous pending
/// prefix is flushed, the segment is trimmed to its written bytes, fsynced
/// and acknowledged, then both threads exit (any record stranded behind a
/// sequence gap fails its ticket).
#[derive(Debug)]
pub struct LogWriter {
    shared: Arc<Shared>,
    append_thread: Option<JoinHandle<()>>,
    sync_thread: Option<JoinHandle<()>>,
}

/// A cheap cloneable handle for submitting records to the writer from any
/// thread.
#[derive(Debug, Clone)]
pub struct WalHandle {
    shared: Arc<Shared>,
}

/// A committer's claim ticket for one appended record.
#[derive(Debug)]
#[must_use = "wait on the ticket to learn whether the record became durable"]
pub struct CommitTicket {
    shared: Arc<Shared>,
    lsn: u64,
}

impl LogWriter {
    /// Opens (creating if needed) the log directory and starts the writer
    /// threads on a fresh segment starting at `options.start_lsn`. An
    /// existing file of that name is truncated — after recovery this is
    /// exactly the repaired tail position, so nothing valid is lost. The
    /// segment is preallocated per [`WalOptions::preallocate_bytes`].
    ///
    /// # Errors
    ///
    /// Propagates directory/file creation failures (typed `io::Error`s, from
    /// the real file system or an armed fault plan alike).
    pub fn open(dir: &Path, options: &WalOptions) -> std::io::Result<LogWriter> {
        let fs = Arc::clone(&options.fs);
        fs.create_dir_all(dir)?;
        let file = fs.create(&segment_path(dir, options.start_lsn))?;
        if options.preallocate_bytes > 0 {
            file.set_len(options.preallocate_bytes)?;
            // Persist the size now (sync_all), so the steady-state
            // `sync_data` calls have no metadata left to write.
            file.sync_all()?;
        }
        // The segment's directory entry must be durable before any record
        // written to it is acknowledged.
        fs.sync_dir(dir)?;
        let sync_file = file.try_clone()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: BTreeMap::new(),
                next_append: options.start_lsn,
                durable_upto: options.start_lsn,
                written_upto: options.start_lsn,
                rotations_requested: 0,
                rotations_done: 0,
                segment_start: options.start_lsn,
                append_done: false,
                failure: None,
                shutdown: false,
            }),
            durable_watermark: AtomicU64::new(options.start_lsn),
            synced_watermark: AtomicU64::new(options.start_lsn),
            sync_file: Mutex::new(sync_file),
            work_cv: Condvar::new(),
            sync_cv: Condvar::new(),
            ack_cv: Condvar::new(),
        });
        let append_thread = {
            let stage = AppendStage {
                shared: Arc::clone(&shared),
                fs: Arc::clone(&fs),
                dir: dir.to_path_buf(),
                file,
                written_bytes: 0,
                preallocate: options.preallocate_bytes,
                fsync: options.fsync,
                retry: options.retry,
                crash: options.crash_points.clone(),
            };
            std::thread::Builder::new()
                .name("txlog-append".to_string())
                .spawn(move || stage.run())?
        };
        let sync_thread = {
            let stage = SyncStage {
                shared: Arc::clone(&shared),
                fsync: options.fsync,
                crash: options.crash_points.clone(),
                last_fsync: Instant::now(),
            };
            std::thread::Builder::new()
                .name("txlog-sync".to_string())
                .spawn(move || stage.run())?
        };
        Ok(LogWriter {
            shared,
            append_thread: Some(append_thread),
            sync_thread: Some(sync_thread),
        })
    }

    /// A handle for submitting records from other threads.
    pub fn handle(&self) -> WalHandle {
        WalHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Submits one record (see [`WalHandle::append`]).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Crashed`]/[`WalError::Degraded`] if the writer is
    /// dead.
    pub fn append(&self, lsn: u64, payload: Vec<u8>) -> Result<CommitTicket, WalError> {
        self.handle().append(lsn, payload)
    }

    /// Asks the writer to close the current segment and start a new one (the
    /// log-truncation step after a snapshot), waiting until it has happened.
    /// Returns the new segment's start LSN.
    ///
    /// # Errors
    ///
    /// Returns the writer's failure if the rotation itself fails, or a
    /// refusal ([`WalError::Degraded`]/[`WalError::Crashed`]) if the
    /// writer was already dead.
    pub fn rotate(&self) -> Result<u64, WalError> {
        let mut state = lock(&self.shared.state);
        if let Some(failure) = &state.failure {
            return Err(refusal(failure));
        }
        state.rotations_requested += 1;
        let target = state.rotations_requested;
        self.shared.work_cv.notify_one();
        while state.rotations_done < target && !state.dead() {
            state = self
                .shared
                .ack_cv
                .wait(state)
                .expect("WAL mutex poisoned: a writer thread panicked mid-update");
        }
        if state.rotations_done >= target {
            Ok(state.segment_start)
        } else {
            Err(state.failure.clone().unwrap_or(WalError::Crashed))
        }
    }

    /// All records with `lsn <` this are durable and acknowledged (the
    /// locked, authoritative read).
    pub fn durable_lsn(&self) -> u64 {
        lock(&self.shared.state).durable_upto
    }

    /// Lock-free snapshot of the durable watermark — the committers' ack
    /// fast path. Trails [`LogWriter::durable_lsn`] only inside the ack
    /// critical section; they agree whenever the log is at rest.
    pub fn durable_watermark(&self) -> u64 {
        self.shared.durable_watermark.load(Ordering::Acquire)
    }

    /// Start LSN of the segment currently being written.
    pub fn segment_start(&self) -> u64 {
        lock(&self.shared.state).segment_start
    }

    /// `true` once the writer has died (crash point or storage failure).
    pub fn is_dead(&self) -> bool {
        lock(&self.shared.state).dead()
    }

    /// The first failure the writer suffered (`None` while healthy).
    pub fn failure(&self) -> Option<WalError> {
        lock(&self.shared.state).failure.clone()
    }
}

impl Drop for LogWriter {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
            self.shared.work_cv.notify_one();
        }
        // The append stage drains and exits first, handing the sync stage
        // the final flush; join in pipeline order.
        if let Some(thread) = self.append_thread.take() {
            let _ = thread.join();
        }
        if let Some(thread) = self.sync_thread.take() {
            let _ = thread.join();
        }
    }
}

impl WalHandle {
    /// Submits the record `(lsn, payload)` for group commit. LSNs must be
    /// dense and unique (they are assigned by an STM commit-time counter);
    /// arrival order is free. Returns the ticket to wait on. One map insert
    /// and one `notify_one` under a short critical section.
    ///
    /// An `lsn` below the durable watermark returns a pre-acknowledged
    /// ticket without staging anything: the record is already durably
    /// covered (a snapshot taken at re-arm subsumed it).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Crashed`] if the writer died from a simulated
    /// crash or was shut down, [`WalError::Degraded`] if an earlier storage
    /// failure poisoned the log — either way the record will never be
    /// durable through this writer.
    ///
    /// # Panics
    ///
    /// Panics if `lsn` was already appended or is already pending (a caller
    /// logic error, not a recoverable condition).
    pub fn append(&self, lsn: u64, payload: Vec<u8>) -> Result<CommitTicket, WalError> {
        let mut state = lock(&self.shared.state);
        if state.shutdown {
            return Err(WalError::Crashed);
        }
        if let Some(failure) = &state.failure {
            return Err(refusal(failure));
        }
        if lsn < state.durable_upto {
            return Ok(CommitTicket {
                shared: Arc::clone(&self.shared),
                lsn,
            });
        }
        assert!(
            lsn >= state.next_append && !state.pending.contains_key(&lsn),
            "LSN {lsn} appended twice (next_append {})",
            state.next_append
        );
        state.pending.insert(lsn, payload);
        let wal = txobs::metrics::wal();
        wal.enqueued.inc();
        wal.queue_depth.set(state.pending.len() as u64);
        txobs::trace::trace(txobs::EventKind::WalEnqueue, lsn);
        self.shared.work_cv.notify_one();
        Ok(CommitTicket {
            shared: Arc::clone(&self.shared),
            lsn,
        })
    }

    /// All records with `lsn <` this are durable and acknowledged (the
    /// locked, authoritative read).
    pub fn durable_lsn(&self) -> u64 {
        lock(&self.shared.state).durable_upto
    }

    /// Lock-free snapshot of the durable watermark (see
    /// [`LogWriter::durable_watermark`]).
    pub fn durable_watermark(&self) -> u64 {
        self.shared.durable_watermark.load(Ordering::Acquire)
    }

    /// The writer's first failure (`None` while healthy). The store layer's
    /// fail-fast check before staging a batch.
    pub fn failure(&self) -> Option<WalError> {
        lock(&self.shared.state).failure.clone()
    }
}

impl CommitTicket {
    /// Waits until the record is durable per the writer's fsync policy.
    ///
    /// Fast path: one atomic load of the durable watermark — a record the
    /// sync stage has already covered returns without locking or parking.
    /// Otherwise the committer parks on the shared ack condvar, which is
    /// broadcast once per fsync.
    ///
    /// # Errors
    ///
    /// Returns the writer's failure if it died before the record was
    /// acknowledged ([`WalError::Crashed`] for a simulated crash, the
    /// root-cause [`WalError::Storage`] for a poisoned log; the in-memory
    /// commit stands; recovery may or may not surface the record) — *unless*
    /// a successful fsync had already covered the record's LSN, in which
    /// case it is durable regardless of the writer dying before the ack and
    /// `Ok` is returned.
    pub fn wait(self) -> Result<(), WalError> {
        if self.shared.durable_watermark.load(Ordering::Acquire) > self.lsn {
            return Ok(());
        }
        let mut state = lock(&self.shared.state);
        loop {
            if state.durable_upto > self.lsn {
                return Ok(());
            }
            if let Some(failure) = &state.failure {
                // The writer died — but the record may have made it to disk
                // under a successful fsync whose ack never ran.
                if self.shared.synced_watermark.load(Ordering::Acquire) > self.lsn {
                    return Ok(());
                }
                return Err(failure.clone());
            }
            state = self
                .shared
                .ack_cv
                .wait(state)
                .expect("WAL mutex poisoned: a writer thread panicked mid-update");
        }
    }

    /// The record's log sequence number.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }
}

/// Stage 1: drains pending records, encodes and writes batches, rotates
/// segments. Owns the segment file's write handle.
struct AppendStage {
    shared: Arc<Shared>,
    fs: Arc<dyn WalFs>,
    dir: PathBuf,
    file: Box<dyn WalFile>,
    /// Valid bytes written to the current segment (the trim point for
    /// rotation/shutdown; everything beyond is preallocated zeros).
    written_bytes: u64,
    preallocate: u64,
    fsync: FsyncPolicy,
    retry: RetryPolicy,
    crash: CrashPoints,
}

impl AppendStage {
    fn fail(&self, error: WalError) {
        self.shared.fail(error);
    }

    fn run(mut self) {
        let mut batch = Vec::new();
        loop {
            // Phase 1 (locked): wait for work, then drain the contiguous run.
            batch.clear();
            let mut last_frame_start = 0usize;
            let mut frames = 0u64;
            let batch_upto;
            let rotate_now;
            let exit_now;
            {
                let mut state: MutexGuard<'_, State> = lock(&self.shared.state);
                loop {
                    if state.dead() {
                        return;
                    }
                    let has_work = state.pending.contains_key(&state.next_append);
                    let rotate_pending = state.rotations_requested > state.rotations_done;
                    if has_work || rotate_pending || state.shutdown {
                        break;
                    }
                    state = self
                        .shared
                        .work_cv
                        .wait(state)
                        .expect("WAL mutex poisoned: a writer thread panicked mid-update");
                }
                loop {
                    let next = state.next_append;
                    match state.pending.remove(&next) {
                        Some(payload) => {
                            last_frame_start = batch.len();
                            encode_frame_into(&mut batch, next, &payload);
                            state.next_append = next + 1;
                            frames += 1;
                        }
                        None => break,
                    }
                }
                batch_upto = state.next_append;
                rotate_now = state.rotations_requested > state.rotations_done;
                // A clean shutdown flushes the contiguous prefix; records
                // stranded behind a sequence gap can never be written and
                // their tickets fail when the log dies on exit.
                exit_now = state.shutdown && batch.is_empty() && !rotate_now;
            }

            // Phase 2 (unlocked): write the batch, honoring the crash points.
            if !batch.is_empty() {
                if self.crash.should_crash(crash_points::BEFORE_APPEND) {
                    return self.fail(WalError::Crashed);
                }
                if self.crash.should_crash(crash_points::MID_FRAME) {
                    // Write everything up to the middle of the last frame:
                    // a torn final record, exactly what a crash mid-`write`
                    // leaves behind.
                    let torn = last_frame_start + (batch.len() - last_frame_start) / 2;
                    let _ = self.file.write_all(&batch[..torn]);
                    let _ = self.file.sync_data();
                    return self.fail(WalError::Crashed);
                }
                txobs::trace::trace(txobs::EventKind::WalAppendStart, frames);
                let append_started = Instant::now();
                if let Err(error) = self.write_batch(&batch) {
                    return self.fail(error);
                }
                let wal = txobs::metrics::wal();
                wal.batches.inc();
                wal.batch_records.add(frames);
                wal.batch_bytes.add(batch.len() as u64);
                wal.append_ns.record_ns(
                    append_started
                        .elapsed()
                        .as_nanos()
                        .min(u128::from(u64::MAX)) as u64,
                );
                txobs::trace::trace(txobs::EventKind::WalAppendDone, batch.len() as u64);
                // This check must precede publishing `written_upto`: once
                // published, the sync stage may fsync and acknowledge the
                // batch, and this point means the bytes never became durable.
                if self
                    .crash
                    .should_crash(crash_points::AFTER_APPEND_BEFORE_FSYNC)
                {
                    return self.fail(WalError::Crashed);
                }
                if matches!(self.fsync, FsyncPolicy::None) {
                    // No sync stage under `fsync=none`: acknowledge as soon
                    // as the OS has the bytes. No fsync ever covers these
                    // records, so a crash before the ack fails the tickets.
                    {
                        let mut state = lock(&self.shared.state);
                        state.written_upto = batch_upto;
                    }
                    if self
                        .crash
                        .should_crash(crash_points::AFTER_FSYNC_BEFORE_ACK)
                    {
                        return self.fail(WalError::Crashed);
                    }
                    self.shared.ack_durable(batch_upto);
                } else {
                    // Publish the batch to the sync stage and immediately
                    // loop to fill the next one — the fsync overlaps it.
                    let mut state = lock(&self.shared.state);
                    state.written_upto = batch_upto;
                    self.shared.sync_cv.notify_one();
                }
            }

            // Phase 3: segment rotation (requested after a snapshot).
            if rotate_now {
                if let Err(error) = self.rotate_segment() {
                    return self.fail(error);
                }
            }

            if exit_now {
                return self.finish();
            }
        }
    }

    /// Appends `batch` at the current write position with bounded retry. A
    /// failed `write` may have landed a short prefix, so before every retry
    /// — and before giving up — the segment is truncated back to the last
    /// good byte and the cursor restored, keeping the on-disk log
    /// frame-aligned (the truncation drops the preallocated tail; the
    /// segment simply grows organically from there). If the cleanup itself
    /// fails, the file position is unknowable and the log is poisoned
    /// immediately with the *write* error as the root cause.
    fn write_batch(&mut self, batch: &[u8]) -> Result<(), WalError> {
        let mut attempt = 0u32;
        loop {
            match self.file.write_all(batch) {
                Ok(()) => {
                    self.written_bytes += batch.len() as u64;
                    return Ok(());
                }
                Err(error) => {
                    let failed = WalError::storage(StorageOp::Write, error.kind());
                    let cleaned = self.file.set_len(self.written_bytes).is_ok()
                        && self.file.seek_to(self.written_bytes).is_ok();
                    if !cleaned || attempt >= self.retry.max_retries {
                        return Err(failed);
                    }
                    attempt += 1;
                    txobs::metrics::wal().retries.inc();
                    std::thread::sleep(self.retry.delay(attempt));
                }
            }
        }
    }

    /// Closes the current segment cleanly and opens the next one at the
    /// current append position. The outgoing segment is trimmed to its
    /// written bytes and fsynced **before** the successor exists, so
    /// non-newest segments never carry a zero tail — recovery relies on
    /// that to treat any mid-scan stop as the end of history.
    fn rotate_segment(&mut self) -> Result<(), WalError> {
        if self.crash.should_crash(crash_points::BEFORE_ROTATE_FSYNC) {
            return Err(WalError::Crashed);
        }
        self.file
            .set_len(self.written_bytes)
            .map_err(|e| WalError::storage(StorageOp::SetLen, e.kind()))?;
        // sync_all: the trim is a metadata change. A failure here is an
        // fsync failure — terminal, never retried (module docs).
        self.file
            .sync_all()
            .map_err(|e| WalError::storage(StorageOp::Fsync, e.kind()))?;
        let (next_start, flushed_upto) = {
            let state = lock(&self.shared.state);
            (state.next_append, state.written_upto)
        };
        // Everything written so far lives in the outgoing segment and the
        // sync_all above covered it.
        self.shared.note_synced(flushed_upto);
        let file = self
            .fs
            .create(&segment_path(&self.dir, next_start))
            .map_err(|e| WalError::storage(StorageOp::Create, e.kind()))?;
        if self.preallocate > 0 {
            file.set_len(self.preallocate)
                .map_err(|e| WalError::storage(StorageOp::SetLen, e.kind()))?;
            file.sync_all()
                .map_err(|e| WalError::storage(StorageOp::Fsync, e.kind()))?;
        }
        if self
            .crash
            .should_crash(crash_points::AFTER_CREATE_BEFORE_DIRSYNC)
        {
            return Err(WalError::Crashed);
        }
        self.fs
            .sync_dir(&self.dir)
            .map_err(|e| WalError::storage(StorageOp::SyncDir, e.kind()))?;
        if self
            .crash
            .should_crash(crash_points::AFTER_ROTATE_BEFORE_ACK)
        {
            return Err(WalError::Crashed);
        }
        // Swap the sync stage's handle before declaring the rotation done:
        // every record at or past `next_start` lands in the new file, and
        // everything before it was made durable by the sync_all above.
        *lock(&self.shared.sync_file) = file
            .try_clone()
            .map_err(|e| WalError::storage(StorageOp::Open, e.kind()))?;
        self.file = file;
        self.written_bytes = 0;
        let mut state = lock(&self.shared.state);
        state.durable_upto = state.durable_upto.max(state.written_upto);
        self.shared
            .durable_watermark
            .store(state.durable_upto, Ordering::Release);
        state.segment_start = next_start;
        state.rotations_done += 1;
        txobs::metrics::wal().rotations.inc();
        txobs::trace::trace(txobs::EventKind::WalRotate, state.rotations_done);
        self.shared.ack_cv.notify_all();
        Ok(())
    }

    /// Clean shutdown: trim the preallocated tail so the log ends at a frame
    /// boundary, then hand the sync stage the final flush-and-ack.
    fn finish(self) {
        if let Err(error) = self.file.set_len(self.written_bytes) {
            return self.fail(WalError::storage(StorageOp::SetLen, error.kind()));
        }
        let mut state = lock(&self.shared.state);
        state.append_done = true;
        self.shared.sync_cv.notify_one();
    }
}

/// Stage 2: fsyncs written batches per the [`FsyncPolicy`] and acknowledges
/// committers through the watermark. Runs concurrently with the append
/// stage's next fill.
struct SyncStage {
    shared: Arc<Shared>,
    fsync: FsyncPolicy,
    crash: CrashPoints,
    last_fsync: Instant,
}

impl SyncStage {
    fn fail(&self, error: WalError) {
        self.shared.fail(error);
    }

    fn run(mut self) {
        loop {
            let ack_upto;
            let finish;
            {
                let mut state = lock(&self.shared.state);
                loop {
                    if state.dead() {
                        return;
                    }
                    if state.append_done {
                        break;
                    }
                    if state.written_upto > state.durable_upto {
                        match self.fsync {
                            // Group: wait out the interval clock, collecting
                            // everything written in the meantime under one
                            // fsync.
                            FsyncPolicy::Group(interval) => {
                                let deadline = self.last_fsync + interval;
                                let now = Instant::now();
                                if now >= deadline {
                                    break;
                                }
                                let (guard, _) = self
                                    .shared
                                    .sync_cv
                                    .wait_timeout(state, deadline - now)
                                    .expect(
                                        "WAL mutex poisoned: a writer thread panicked mid-update",
                                    );
                                state = guard;
                            }
                            _ => break,
                        }
                    } else {
                        state = self
                            .shared
                            .sync_cv
                            .wait(state)
                            .expect("WAL mutex poisoned: a writer thread panicked mid-update");
                    }
                }
                ack_upto = state.written_upto;
                finish = state.append_done;
            }

            // The fsync itself, outside the state lock: the append stage
            // keeps filling the next batch while this runs. On the final
            // flush sync_all also persists the shutdown trim.
            txobs::trace::trace(txobs::EventKind::WalFsyncStart, 0);
            let fsync_started = Instant::now();
            let synced = {
                let file = lock(&self.shared.sync_file);
                if finish {
                    file.sync_all()
                } else {
                    file.sync_data()
                }
            };
            if let Err(error) = synced {
                // Never retried: the kernel may have dropped the dirty pages
                // while marking them clean, so a later fsync's success would
                // prove nothing about these bytes (fsyncgate). The log is
                // poisoned and the watermark stays exactly where the last
                // successful fsync left it.
                return self.fail(WalError::storage(StorageOp::Fsync, error.kind()));
            }
            let wal = txobs::metrics::wal();
            wal.fsyncs.inc();
            wal.fsync_ns
                .record_ns(fsync_started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            txobs::trace::trace(txobs::EventKind::WalFsyncDone, ack_upto);
            self.last_fsync = Instant::now();
            // Record what this successful fsync covered *before* consulting
            // the crash point: a ticket whose LSN is covered is durable even
            // if the writer dies before the ack below.
            self.shared.note_synced(ack_upto);
            if !finish
                && self
                    .crash
                    .should_crash(crash_points::AFTER_FSYNC_BEFORE_ACK)
            {
                return self.fail(WalError::Crashed);
            }
            self.shared.ack_durable(ack_upto);
            if finish {
                // Clean end of the pipeline: mark the log dead so any ticket
                // stranded behind a sequence gap fails instead of hanging.
                return self.fail(WalError::Crashed);
            }
        }
    }
}
