//! The group-commit log writer.
//!
//! One dedicated log thread owns the current segment file. Committers hand it
//! `(lsn, payload)` records via [`WalHandle::append`] **after** their STM
//! commit assigned the LSN, then park on the returned [`CommitTicket`] until
//! the record is durable. Because STM commits finish in LSN order but the
//! post-commit handoff races, records can *arrive* out of order; the writer
//! re-sequences them (a record is written only once every lower LSN has been
//! written) so the on-disk log is always a dense, in-order prefix — which is
//! what makes a torn tail equivalent to "the run simply stopped earlier".
//!
//! Group commit falls out of the design: while the thread is busy writing one
//! batch, later commits pile up in the pending map and are drained — one
//! `write`, at most one fsync — on the next iteration. The
//! [`FsyncPolicy`] decides when acknowledgements happen:
//! [`Always`](FsyncPolicy::Always) fsyncs every drained batch,
//! [`Group`](FsyncPolicy::Group) fsyncs on an interval clock (acks wait for
//! the covering fsync), [`None`](FsyncPolicy::None) acknowledges right after
//! the `write`.
//!
//! The writer honors the [`crate::crash_points`] of the configured
//! [`CrashPoints`] registry: when one fires, the thread abandons all I/O
//! exactly at that pipeline stage, marks the log dead and fails every
//! unacknowledged ticket — an in-process, deterministic stand-in for the
//! machine dying at that instant.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use tlstm_testutil::CrashPoints;

use crate::files::segment_path;
use crate::frame::encode_frame_into;
use crate::{crash_points, FsyncPolicy, WalError, CRASH_POINT_ENV};

/// Configuration of a [`LogWriter`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// The LSN the next appended record will carry (0 for a fresh log,
    /// [`crate::RecoveredLog::next_lsn`] after recovery). The writer opens a
    /// fresh segment named after it.
    pub start_lsn: u64,
    /// When appends are fsynced (and therefore acknowledged).
    pub fsync: FsyncPolicy,
    /// Crash-injection registry; [`CrashPoints::disabled`] in production.
    pub crash_points: CrashPoints,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            start_lsn: 0,
            fsync: FsyncPolicy::default(),
            crash_points: CrashPoints::from_env(CRASH_POINT_ENV),
        }
    }
}

#[derive(Debug)]
struct State {
    /// Committed records not yet written, keyed by LSN (re-sequencing buffer).
    pending: BTreeMap<u64, Vec<u8>>,
    /// The next LSN the writer will append — everything below is in the file.
    next_append: u64,
    /// All records with `lsn < durable_upto` are durable and acknowledged.
    durable_upto: u64,
    /// All records with `lsn < written_upto` are written (≥ durable_upto
    /// under [`FsyncPolicy::Group`], equal otherwise).
    written_upto: u64,
    /// Rotation handshake: requests vs completions.
    rotations_requested: u64,
    rotations_done: u64,
    /// Start LSN of the segment currently being written.
    segment_start: u64,
    /// The writer simulated (or suffered) a crash; nothing further will be
    /// written or acknowledged.
    dead: bool,
    /// Clean-shutdown request (set by [`LogWriter::drop`]).
    shutdown: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Wakes the writer thread (new work, rotation request, shutdown).
    work_cv: Condvar,
    /// Wakes committers and rotation waiters (durability advanced, death).
    ack_cv: Condvar,
}

/// The group-commit write-ahead-log writer: owns the log thread.
///
/// Dropping the writer performs a clean shutdown: the contiguous pending
/// prefix is flushed, fsynced and acknowledged, then the thread exits (any
/// record stranded behind a sequence gap fails its ticket).
#[derive(Debug)]
pub struct LogWriter {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

/// A cheap cloneable handle for submitting records to the writer from any
/// thread.
#[derive(Debug, Clone)]
pub struct WalHandle {
    shared: Arc<Shared>,
}

/// A committer's claim ticket for one appended record.
#[derive(Debug)]
#[must_use = "wait on the ticket to learn whether the record became durable"]
pub struct CommitTicket {
    shared: Arc<Shared>,
    lsn: u64,
}

impl LogWriter {
    /// Opens (creating if needed) the log directory and starts the writer
    /// thread on a fresh segment starting at `options.start_lsn`. An existing
    /// file of that name is truncated — after recovery this is exactly the
    /// repaired tail position, so nothing valid is lost.
    ///
    /// # Errors
    ///
    /// Propagates directory/file creation failures.
    pub fn open(dir: &Path, options: &WalOptions) -> std::io::Result<LogWriter> {
        std::fs::create_dir_all(dir)?;
        let file = File::create(segment_path(dir, options.start_lsn))?;
        // The segment's directory entry must be durable before any record
        // written to it is acknowledged.
        crate::files::sync_dir(dir)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: BTreeMap::new(),
                next_append: options.start_lsn,
                durable_upto: options.start_lsn,
                written_upto: options.start_lsn,
                rotations_requested: 0,
                rotations_done: 0,
                segment_start: options.start_lsn,
                dead: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            ack_cv: Condvar::new(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            let dir = dir.to_path_buf();
            let fsync = options.fsync;
            let crash = options.crash_points.clone();
            std::thread::Builder::new()
                .name("txlog-writer".to_string())
                .spawn(move || WriterThread::new(shared, dir, file, fsync, crash).run())?
        };
        Ok(LogWriter {
            shared,
            thread: Some(thread),
        })
    }

    /// A handle for submitting records from other threads.
    pub fn handle(&self) -> WalHandle {
        WalHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Submits one record (see [`WalHandle::append`]).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Crashed`] if the writer is dead.
    pub fn append(&self, lsn: u64, payload: Vec<u8>) -> Result<CommitTicket, WalError> {
        self.handle().append(lsn, payload)
    }

    /// Asks the writer to close the current segment and start a new one (the
    /// log-truncation step after a snapshot), waiting until it has happened.
    /// Returns the new segment's start LSN.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Crashed`] if the writer dies first.
    pub fn rotate(&self) -> Result<u64, WalError> {
        let mut state = self.shared.state.lock().unwrap();
        if state.dead {
            return Err(WalError::Crashed);
        }
        state.rotations_requested += 1;
        let target = state.rotations_requested;
        self.shared.work_cv.notify_all();
        while state.rotations_done < target && !state.dead {
            state = self.shared.ack_cv.wait(state).unwrap();
        }
        if state.rotations_done >= target {
            Ok(state.segment_start)
        } else {
            Err(WalError::Crashed)
        }
    }

    /// All records with `lsn <` this are durable and acknowledged.
    pub fn durable_lsn(&self) -> u64 {
        self.shared.state.lock().unwrap().durable_upto
    }

    /// `true` once the writer has died (crash point or I/O error).
    pub fn is_dead(&self) -> bool {
        self.shared.state.lock().unwrap().dead
    }
}

impl Drop for LogWriter {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl WalHandle {
    /// Submits the record `(lsn, payload)` for group commit. LSNs must be
    /// dense and unique (they are assigned by an STM commit-time counter);
    /// arrival order is free. Returns the ticket to park on.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Crashed`] if the writer is already dead or shut
    /// down — the record will never be durable.
    ///
    /// # Panics
    ///
    /// Panics if `lsn` was already appended or is already pending (a caller
    /// logic error, not a recoverable condition).
    pub fn append(&self, lsn: u64, payload: Vec<u8>) -> Result<CommitTicket, WalError> {
        let mut state = self.shared.state.lock().unwrap();
        if state.dead || state.shutdown {
            return Err(WalError::Crashed);
        }
        assert!(
            lsn >= state.next_append && !state.pending.contains_key(&lsn),
            "LSN {lsn} appended twice (next_append {})",
            state.next_append
        );
        state.pending.insert(lsn, payload);
        self.shared.work_cv.notify_all();
        Ok(CommitTicket {
            shared: Arc::clone(&self.shared),
            lsn,
        })
    }

    /// All records with `lsn <` this are durable and acknowledged.
    pub fn durable_lsn(&self) -> u64 {
        self.shared.state.lock().unwrap().durable_upto
    }
}

impl CommitTicket {
    /// Parks until the record is durable per the writer's fsync policy.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Crashed`] if the writer died before the record
    /// was acknowledged (the in-memory commit stands; recovery may or may
    /// not surface the record).
    pub fn wait(self) -> Result<(), WalError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.durable_upto > self.lsn {
                return Ok(());
            }
            if state.dead {
                return Err(WalError::Crashed);
            }
            state = self.shared.ack_cv.wait(state).unwrap();
        }
    }

    /// The record's log sequence number.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }
}

/// The writer thread's private side.
struct WriterThread {
    shared: Arc<Shared>,
    dir: PathBuf,
    file: File,
    fsync: FsyncPolicy,
    crash: CrashPoints,
    last_fsync: Instant,
}

impl WriterThread {
    fn new(
        shared: Arc<Shared>,
        dir: PathBuf,
        file: File,
        fsync: FsyncPolicy,
        crash: CrashPoints,
    ) -> WriterThread {
        WriterThread {
            shared,
            dir,
            file,
            fsync,
            crash,
            last_fsync: Instant::now(),
        }
    }

    /// Marks the log dead and wakes everyone. Consumes the thread's loop.
    fn die(&self) {
        let mut state = self.shared.state.lock().unwrap();
        state.dead = true;
        self.shared.ack_cv.notify_all();
        self.shared.work_cv.notify_all();
    }

    /// Acknowledges every record below `upto` as durable.
    fn ack_durable(&self, upto: u64) {
        let mut state = self.shared.state.lock().unwrap();
        state.durable_upto = state.durable_upto.max(upto);
        self.shared.ack_cv.notify_all();
    }

    /// The group-fsync deadline, if records are written but not yet durable.
    fn fsync_deadline(&self, state: &State) -> Option<Instant> {
        match self.fsync {
            FsyncPolicy::Group(interval) if state.durable_upto < state.written_upto => {
                Some(self.last_fsync + interval)
            }
            _ => None,
        }
    }

    fn run(mut self) {
        loop {
            // Phase 1 (locked): wait for work, then drain the contiguous run.
            let mut batch = Vec::new();
            let mut last_frame_start = 0usize;
            let batch_upto;
            let rotate_now;
            let exit_now;
            {
                let mut state: MutexGuard<'_, State> = self.shared.state.lock().unwrap();
                loop {
                    if state.dead {
                        return;
                    }
                    let has_work = state.pending.contains_key(&state.next_append);
                    let rotate_pending = state.rotations_requested > state.rotations_done;
                    if has_work || rotate_pending || state.shutdown {
                        break;
                    }
                    match self.fsync_deadline(&state) {
                        Some(deadline) => {
                            let now = Instant::now();
                            if now >= deadline {
                                break; // fsync is due
                            }
                            let (guard, _) = self
                                .shared
                                .work_cv
                                .wait_timeout(state, deadline - now)
                                .unwrap();
                            state = guard;
                        }
                        None => state = self.shared.work_cv.wait(state).unwrap(),
                    }
                }
                loop {
                    let next = state.next_append;
                    match state.pending.remove(&next) {
                        Some(payload) => {
                            last_frame_start = batch.len();
                            encode_frame_into(&mut batch, next, &payload);
                            state.next_append = next + 1;
                        }
                        None => break,
                    }
                }
                batch_upto = state.next_append;
                rotate_now = state.rotations_requested > state.rotations_done;
                // A clean shutdown flushes the contiguous prefix; records
                // stranded behind a sequence gap can never be written and
                // their tickets fail when `dead` is set on exit.
                exit_now = state.shutdown && batch.is_empty() && !rotate_now;
            }

            // Phase 2 (unlocked): file I/O, honoring the crash points.
            if !batch.is_empty() {
                if self.crash.should_crash(crash_points::BEFORE_APPEND) {
                    return self.die();
                }
                if self.crash.should_crash(crash_points::MID_FRAME) {
                    // Write everything up to the middle of the last frame:
                    // a torn final record, exactly what a crash mid-`write`
                    // leaves behind.
                    let torn = last_frame_start + (batch.len() - last_frame_start) / 2;
                    let _ = self.file.write_all(&batch[..torn]);
                    let _ = self.file.sync_data();
                    return self.die();
                }
                if self.file.write_all(&batch).is_err() {
                    return self.die();
                }
                {
                    let mut state = self.shared.state.lock().unwrap();
                    state.written_upto = batch_upto;
                }
                if self
                    .crash
                    .should_crash(crash_points::AFTER_APPEND_BEFORE_FSYNC)
                {
                    return self.die();
                }
            }

            // Phase 3: durability per policy.
            let ack_upto = match self.fsync {
                FsyncPolicy::Always => {
                    if batch.is_empty() {
                        None
                    } else {
                        if self.file.sync_data().is_err() {
                            return self.die();
                        }
                        self.last_fsync = Instant::now();
                        Some(batch_upto)
                    }
                }
                FsyncPolicy::None => (!batch.is_empty()).then_some(batch_upto),
                FsyncPolicy::Group(interval) => {
                    let (written, durable) = {
                        let state = self.shared.state.lock().unwrap();
                        (state.written_upto, state.durable_upto)
                    };
                    if durable < written && Instant::now() >= self.last_fsync + interval {
                        if self.file.sync_data().is_err() {
                            return self.die();
                        }
                        self.last_fsync = Instant::now();
                        Some(written)
                    } else {
                        None
                    }
                }
            };
            if let Some(upto) = ack_upto {
                if self
                    .crash
                    .should_crash(crash_points::AFTER_FSYNC_BEFORE_ACK)
                {
                    return self.die();
                }
                self.ack_durable(upto);
            }

            // Phase 4: segment rotation (requested after a snapshot).
            if rotate_now && self.rotate_segment().is_err() {
                return self.die();
            }

            if exit_now {
                return self.clean_shutdown();
            }
        }
    }

    /// Closes the current segment cleanly (fsync, so older segments are never
    /// torn) and opens the next one at the current append position.
    fn rotate_segment(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        let next_start = {
            let state = self.shared.state.lock().unwrap();
            state.next_append
        };
        self.file = File::create(segment_path(&self.dir, next_start))?;
        crate::files::sync_dir(&self.dir)?;
        let mut state = self.shared.state.lock().unwrap();
        state.durable_upto = state.durable_upto.max(state.written_upto);
        state.segment_start = next_start;
        state.rotations_done += 1;
        self.shared.ack_cv.notify_all();
        Ok(())
    }

    /// Final flush on clean shutdown: everything written becomes durable,
    /// then the log is marked dead so any stranded ticket fails.
    fn clean_shutdown(self) {
        let upto = {
            let state = self.shared.state.lock().unwrap();
            state.written_upto
        };
        if self.file.sync_data().is_ok() {
            self.ack_durable(upto);
        }
        self.die();
    }
}
