//! The pipelined group-commit log writer.
//!
//! Two stages, two threads:
//!
//! * the **append stage** owns the current segment file. It drains committed
//!   `(lsn, payload)` records from the pending map (re-sequencing
//!   out-of-order arrivals so the on-disk log is always a dense, in-order
//!   prefix), encodes them into one batch buffer and `write`s it — then
//!   immediately loops to fill the next batch;
//! * the **sync stage** fsyncs what the append stage has written and
//!   acknowledges committers. While it is inside `fsync(2)` for batch N, the
//!   append stage is already encoding and writing batch N+1 — the fsync
//!   latency overlaps the next batch's fill instead of serialising with it.
//!
//! Segments are pre-allocated with [`File::set_len`] when created, so
//! steady-state appends stay inside the allocated extent and `sync_data`
//! never pays a metadata update. The preallocated zero tail is trimmed back
//! to the written bytes whenever a segment is closed (rotation or clean
//! shutdown); only a crash can leave one behind, and recovery treats an
//! all-zero tail as clean preallocation residue, not corruption.
//!
//! Committers hand records to the writer via [`WalHandle::append`] **after**
//! their STM commit assigned the LSN, then wait on the returned
//! [`CommitTicket`]. Acknowledgement is a *sequence watermark*: the sync
//! stage publishes `durable_upto` both under the state lock and as an atomic
//! that [`CommitTicket::wait`] loads first — a committer whose record is
//! already durable returns without touching the lock or parking. Laggards
//! fall back to one shared condvar that is woken **once per fsync**, so the
//! ack fan-out is O(1) per batch, not O(committers).
//!
//! The [`FsyncPolicy`] decides when the sync stage runs:
//! [`Always`](FsyncPolicy::Always) fsyncs every written batch (pipelined with
//! the next fill), [`Group`](FsyncPolicy::Group) fsyncs on an interval clock,
//! [`None`](FsyncPolicy::None) skips the sync stage entirely — the append
//! stage acknowledges right after the `write`.
//!
//! Both stages honor the [`crate::crash_points`] of the configured
//! [`CrashPoints`] registry: when one fires, the stage abandons all I/O
//! exactly at that pipeline position, marks the log dead and fails every
//! unacknowledged ticket — an in-process, deterministic stand-in for the
//! machine dying at that instant.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use tlstm_testutil::CrashPoints;

use crate::files::segment_path;
use crate::frame::encode_frame_into;
use crate::{crash_points, FsyncPolicy, WalError, CRASH_POINT_ENV};

/// Default segment preallocation ([`WalOptions::preallocate_bytes`]).
pub const DEFAULT_SEGMENT_PREALLOC: u64 = 4 * 1024 * 1024;

/// The process-wide crash-point registry armed from [`CRASH_POINT_ENV`].
///
/// Read once: a process simulates at most one crash, and benchmarks open
/// stores in a loop — re-parsing the environment per [`WalOptions::default`]
/// would be wasted work (and was, before this was hoisted).
fn env_crash_points() -> &'static CrashPoints {
    static ENV: OnceLock<CrashPoints> = OnceLock::new();
    ENV.get_or_init(|| CrashPoints::from_env(CRASH_POINT_ENV))
}

/// Configuration of a [`LogWriter`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// The LSN the next appended record will carry (0 for a fresh log,
    /// [`crate::RecoveredLog::next_lsn`] after recovery). The writer opens a
    /// fresh segment named after it.
    pub start_lsn: u64,
    /// When appends are fsynced (and therefore acknowledged).
    pub fsync: FsyncPolicy,
    /// Crash-injection registry; [`CrashPoints::disabled`] in production.
    /// [`WalOptions::default`] hands out the process-wide registry armed
    /// from [`CRASH_POINT_ENV`] (parsed once); tests inject their own.
    pub crash_points: CrashPoints,
    /// Size each new segment is extended to at creation (`File::set_len`),
    /// so steady-state fsyncs never pay a metadata update. `0` disables
    /// preallocation. Segments grow past this transparently if needed.
    pub preallocate_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            start_lsn: 0,
            fsync: FsyncPolicy::default(),
            crash_points: env_crash_points().clone(),
            preallocate_bytes: DEFAULT_SEGMENT_PREALLOC,
        }
    }
}

#[derive(Debug)]
struct State {
    /// Committed records not yet written, keyed by LSN (re-sequencing buffer).
    pending: BTreeMap<u64, Vec<u8>>,
    /// The next LSN the writer will append — everything below is in the file.
    next_append: u64,
    /// All records with `lsn < durable_upto` are durable and acknowledged.
    /// Mirrored into [`Shared::durable_watermark`] under this lock.
    durable_upto: u64,
    /// All records with `lsn < written_upto` are written (≥ durable_upto
    /// while an fsync is pending, equal at rest).
    written_upto: u64,
    /// Rotation handshake: requests vs completions.
    rotations_requested: u64,
    rotations_done: u64,
    /// Start LSN of the segment currently being written.
    segment_start: u64,
    /// The append stage exited after a clean shutdown; the sync stage owes
    /// one final flush-and-ack before marking the log dead.
    append_done: bool,
    /// The writer simulated (or suffered) a crash; nothing further will be
    /// written or acknowledged.
    dead: bool,
    /// Clean-shutdown request (set by [`LogWriter::drop`]).
    shutdown: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Lock-free mirror of [`State::durable_upto`]: the committers' ack
    /// fast path. Stored (release) under the state lock, loaded (acquire)
    /// without it.
    durable_watermark: AtomicU64,
    /// The sync stage's handle to the current segment (swapped at rotation).
    /// Held only across a single `fsync` or the rotation swap.
    sync_file: Mutex<File>,
    /// Wakes the append stage (new work, rotation request, shutdown).
    /// Exactly one waiter — notify with `notify_one`.
    work_cv: Condvar,
    /// Wakes the sync stage (bytes written, shutdown handoff). Exactly one
    /// waiter — notify with `notify_one`.
    sync_cv: Condvar,
    /// Wakes committers and rotation waiters (durability advanced, death).
    ack_cv: Condvar,
}

impl Shared {
    /// Marks the log dead and wakes everyone (committers fail, both stages
    /// exit).
    fn die(&self) {
        let mut state = self.state.lock().unwrap();
        state.dead = true;
        self.ack_cv.notify_all();
        self.work_cv.notify_one();
        self.sync_cv.notify_one();
    }

    /// Acknowledges every record below `upto` as durable: one watermark
    /// store and one condvar broadcast per batch, regardless of how many
    /// committers are waiting.
    fn ack_durable(&self, upto: u64) {
        let mut state = self.state.lock().unwrap();
        if upto > state.durable_upto {
            state.durable_upto = upto;
            self.durable_watermark.store(upto, Ordering::Release);
            self.ack_cv.notify_all();
        }
    }
}

/// The pipelined group-commit write-ahead-log writer: owns the append and
/// sync threads.
///
/// Dropping the writer performs a clean shutdown: the contiguous pending
/// prefix is flushed, the segment is trimmed to its written bytes, fsynced
/// and acknowledged, then both threads exit (any record stranded behind a
/// sequence gap fails its ticket).
#[derive(Debug)]
pub struct LogWriter {
    shared: Arc<Shared>,
    append_thread: Option<JoinHandle<()>>,
    sync_thread: Option<JoinHandle<()>>,
}

/// A cheap cloneable handle for submitting records to the writer from any
/// thread.
#[derive(Debug, Clone)]
pub struct WalHandle {
    shared: Arc<Shared>,
}

/// A committer's claim ticket for one appended record.
#[derive(Debug)]
#[must_use = "wait on the ticket to learn whether the record became durable"]
pub struct CommitTicket {
    shared: Arc<Shared>,
    lsn: u64,
}

impl LogWriter {
    /// Opens (creating if needed) the log directory and starts the writer
    /// threads on a fresh segment starting at `options.start_lsn`. An
    /// existing file of that name is truncated — after recovery this is
    /// exactly the repaired tail position, so nothing valid is lost. The
    /// segment is preallocated per [`WalOptions::preallocate_bytes`].
    ///
    /// # Errors
    ///
    /// Propagates directory/file creation failures.
    pub fn open(dir: &Path, options: &WalOptions) -> std::io::Result<LogWriter> {
        std::fs::create_dir_all(dir)?;
        let file = File::create(segment_path(dir, options.start_lsn))?;
        if options.preallocate_bytes > 0 {
            file.set_len(options.preallocate_bytes)?;
            // Persist the size now (sync_all), so the steady-state
            // `sync_data` calls have no metadata left to write.
            file.sync_all()?;
        }
        // The segment's directory entry must be durable before any record
        // written to it is acknowledged.
        crate::files::sync_dir(dir)?;
        let sync_file = file.try_clone()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending: BTreeMap::new(),
                next_append: options.start_lsn,
                durable_upto: options.start_lsn,
                written_upto: options.start_lsn,
                rotations_requested: 0,
                rotations_done: 0,
                segment_start: options.start_lsn,
                append_done: false,
                dead: false,
                shutdown: false,
            }),
            durable_watermark: AtomicU64::new(options.start_lsn),
            sync_file: Mutex::new(sync_file),
            work_cv: Condvar::new(),
            sync_cv: Condvar::new(),
            ack_cv: Condvar::new(),
        });
        let append_thread = {
            let stage = AppendStage {
                shared: Arc::clone(&shared),
                dir: dir.to_path_buf(),
                file,
                written_bytes: 0,
                preallocate: options.preallocate_bytes,
                fsync: options.fsync,
                crash: options.crash_points.clone(),
            };
            std::thread::Builder::new()
                .name("txlog-append".to_string())
                .spawn(move || stage.run())?
        };
        let sync_thread = {
            let stage = SyncStage {
                shared: Arc::clone(&shared),
                fsync: options.fsync,
                crash: options.crash_points.clone(),
                last_fsync: Instant::now(),
            };
            std::thread::Builder::new()
                .name("txlog-sync".to_string())
                .spawn(move || stage.run())?
        };
        Ok(LogWriter {
            shared,
            append_thread: Some(append_thread),
            sync_thread: Some(sync_thread),
        })
    }

    /// A handle for submitting records from other threads.
    pub fn handle(&self) -> WalHandle {
        WalHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Submits one record (see [`WalHandle::append`]).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Crashed`] if the writer is dead.
    pub fn append(&self, lsn: u64, payload: Vec<u8>) -> Result<CommitTicket, WalError> {
        self.handle().append(lsn, payload)
    }

    /// Asks the writer to close the current segment and start a new one (the
    /// log-truncation step after a snapshot), waiting until it has happened.
    /// Returns the new segment's start LSN.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Crashed`] if the writer dies first.
    pub fn rotate(&self) -> Result<u64, WalError> {
        let mut state = self.shared.state.lock().unwrap();
        if state.dead {
            return Err(WalError::Crashed);
        }
        state.rotations_requested += 1;
        let target = state.rotations_requested;
        self.shared.work_cv.notify_one();
        while state.rotations_done < target && !state.dead {
            state = self.shared.ack_cv.wait(state).unwrap();
        }
        if state.rotations_done >= target {
            Ok(state.segment_start)
        } else {
            Err(WalError::Crashed)
        }
    }

    /// All records with `lsn <` this are durable and acknowledged (the
    /// locked, authoritative read).
    pub fn durable_lsn(&self) -> u64 {
        self.shared.state.lock().unwrap().durable_upto
    }

    /// Lock-free snapshot of the durable watermark — the committers' ack
    /// fast path. Trails [`LogWriter::durable_lsn`] only inside the ack
    /// critical section; they agree whenever the log is at rest.
    pub fn durable_watermark(&self) -> u64 {
        self.shared.durable_watermark.load(Ordering::Acquire)
    }

    /// `true` once the writer has died (crash point or I/O error).
    pub fn is_dead(&self) -> bool {
        self.shared.state.lock().unwrap().dead
    }
}

impl Drop for LogWriter {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work_cv.notify_one();
        }
        // The append stage drains and exits first, handing the sync stage
        // the final flush; join in pipeline order.
        if let Some(thread) = self.append_thread.take() {
            let _ = thread.join();
        }
        if let Some(thread) = self.sync_thread.take() {
            let _ = thread.join();
        }
    }
}

impl WalHandle {
    /// Submits the record `(lsn, payload)` for group commit. LSNs must be
    /// dense and unique (they are assigned by an STM commit-time counter);
    /// arrival order is free. Returns the ticket to wait on. One map insert
    /// and one `notify_one` under a short critical section.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Crashed`] if the writer is already dead or shut
    /// down — the record will never be durable.
    ///
    /// # Panics
    ///
    /// Panics if `lsn` was already appended or is already pending (a caller
    /// logic error, not a recoverable condition).
    pub fn append(&self, lsn: u64, payload: Vec<u8>) -> Result<CommitTicket, WalError> {
        let mut state = self.shared.state.lock().unwrap();
        if state.dead || state.shutdown {
            return Err(WalError::Crashed);
        }
        assert!(
            lsn >= state.next_append && !state.pending.contains_key(&lsn),
            "LSN {lsn} appended twice (next_append {})",
            state.next_append
        );
        state.pending.insert(lsn, payload);
        self.shared.work_cv.notify_one();
        Ok(CommitTicket {
            shared: Arc::clone(&self.shared),
            lsn,
        })
    }

    /// All records with `lsn <` this are durable and acknowledged (the
    /// locked, authoritative read).
    pub fn durable_lsn(&self) -> u64 {
        self.shared.state.lock().unwrap().durable_upto
    }

    /// Lock-free snapshot of the durable watermark (see
    /// [`LogWriter::durable_watermark`]).
    pub fn durable_watermark(&self) -> u64 {
        self.shared.durable_watermark.load(Ordering::Acquire)
    }
}

impl CommitTicket {
    /// Waits until the record is durable per the writer's fsync policy.
    ///
    /// Fast path: one atomic load of the durable watermark — a record the
    /// sync stage has already covered returns without locking or parking.
    /// Otherwise the committer parks on the shared ack condvar, which is
    /// broadcast once per fsync.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Crashed`] if the writer died before the record
    /// was acknowledged (the in-memory commit stands; recovery may or may
    /// not surface the record).
    pub fn wait(self) -> Result<(), WalError> {
        if self.shared.durable_watermark.load(Ordering::Acquire) > self.lsn {
            return Ok(());
        }
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.durable_upto > self.lsn {
                return Ok(());
            }
            if state.dead {
                return Err(WalError::Crashed);
            }
            state = self.shared.ack_cv.wait(state).unwrap();
        }
    }

    /// The record's log sequence number.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }
}

/// The synthetic error a crash point turns into inside fallible I/O paths
/// (the caller reacts to any error by dying, which is exactly the simulated
/// outcome).
fn injected_crash() -> std::io::Error {
    std::io::Error::other("injected crash point")
}

/// Stage 1: drains pending records, encodes and writes batches, rotates
/// segments. Owns the segment file's write handle.
struct AppendStage {
    shared: Arc<Shared>,
    dir: PathBuf,
    file: File,
    /// Valid bytes written to the current segment (the trim point for
    /// rotation/shutdown; everything beyond is preallocated zeros).
    written_bytes: u64,
    preallocate: u64,
    fsync: FsyncPolicy,
    crash: CrashPoints,
}

impl AppendStage {
    fn die(&self) {
        self.shared.die();
    }

    fn run(mut self) {
        let mut batch = Vec::new();
        loop {
            // Phase 1 (locked): wait for work, then drain the contiguous run.
            batch.clear();
            let mut last_frame_start = 0usize;
            let batch_upto;
            let rotate_now;
            let exit_now;
            {
                let mut state: MutexGuard<'_, State> = self.shared.state.lock().unwrap();
                loop {
                    if state.dead {
                        return;
                    }
                    let has_work = state.pending.contains_key(&state.next_append);
                    let rotate_pending = state.rotations_requested > state.rotations_done;
                    if has_work || rotate_pending || state.shutdown {
                        break;
                    }
                    state = self.shared.work_cv.wait(state).unwrap();
                }
                loop {
                    let next = state.next_append;
                    match state.pending.remove(&next) {
                        Some(payload) => {
                            last_frame_start = batch.len();
                            encode_frame_into(&mut batch, next, &payload);
                            state.next_append = next + 1;
                        }
                        None => break,
                    }
                }
                batch_upto = state.next_append;
                rotate_now = state.rotations_requested > state.rotations_done;
                // A clean shutdown flushes the contiguous prefix; records
                // stranded behind a sequence gap can never be written and
                // their tickets fail when `dead` is set on exit.
                exit_now = state.shutdown && batch.is_empty() && !rotate_now;
            }

            // Phase 2 (unlocked): write the batch, honoring the crash points.
            if !batch.is_empty() {
                if self.crash.should_crash(crash_points::BEFORE_APPEND) {
                    return self.die();
                }
                if self.crash.should_crash(crash_points::MID_FRAME) {
                    // Write everything up to the middle of the last frame:
                    // a torn final record, exactly what a crash mid-`write`
                    // leaves behind.
                    let torn = last_frame_start + (batch.len() - last_frame_start) / 2;
                    let _ = self.file.write_all(&batch[..torn]);
                    let _ = self.file.sync_data();
                    return self.die();
                }
                if self.file.write_all(&batch).is_err() {
                    return self.die();
                }
                self.written_bytes += batch.len() as u64;
                // This check must precede publishing `written_upto`: once
                // published, the sync stage may fsync and acknowledge the
                // batch, and this point means the bytes never became durable.
                if self
                    .crash
                    .should_crash(crash_points::AFTER_APPEND_BEFORE_FSYNC)
                {
                    return self.die();
                }
                if matches!(self.fsync, FsyncPolicy::None) {
                    // No sync stage under `fsync=none`: acknowledge as soon
                    // as the OS has the bytes.
                    {
                        let mut state = self.shared.state.lock().unwrap();
                        state.written_upto = batch_upto;
                    }
                    if self
                        .crash
                        .should_crash(crash_points::AFTER_FSYNC_BEFORE_ACK)
                    {
                        return self.die();
                    }
                    self.shared.ack_durable(batch_upto);
                } else {
                    // Publish the batch to the sync stage and immediately
                    // loop to fill the next one — the fsync overlaps it.
                    let mut state = self.shared.state.lock().unwrap();
                    state.written_upto = batch_upto;
                    self.shared.sync_cv.notify_one();
                }
            }

            // Phase 3: segment rotation (requested after a snapshot).
            if rotate_now && self.rotate_segment().is_err() {
                return self.die();
            }

            if exit_now {
                return self.finish();
            }
        }
    }

    /// Closes the current segment cleanly and opens the next one at the
    /// current append position. The outgoing segment is trimmed to its
    /// written bytes and fsynced **before** the successor exists, so
    /// non-newest segments never carry a zero tail — recovery relies on
    /// that to treat any mid-scan stop as the end of history.
    fn rotate_segment(&mut self) -> std::io::Result<()> {
        if self.crash.should_crash(crash_points::BEFORE_ROTATE_FSYNC) {
            return Err(injected_crash());
        }
        self.file.set_len(self.written_bytes)?;
        // sync_all: the trim is a metadata change.
        self.file.sync_all()?;
        let next_start = self.shared.state.lock().unwrap().next_append;
        let file = File::create(segment_path(&self.dir, next_start))?;
        if self.preallocate > 0 {
            file.set_len(self.preallocate)?;
            file.sync_all()?;
        }
        if self
            .crash
            .should_crash(crash_points::AFTER_CREATE_BEFORE_DIRSYNC)
        {
            return Err(injected_crash());
        }
        crate::files::sync_dir(&self.dir)?;
        if self
            .crash
            .should_crash(crash_points::AFTER_ROTATE_BEFORE_ACK)
        {
            return Err(injected_crash());
        }
        // Swap the sync stage's handle before declaring the rotation done:
        // every record at or past `next_start` lands in the new file, and
        // everything before it was made durable by the sync_all above.
        *self.shared.sync_file.lock().unwrap() = file.try_clone()?;
        self.file = file;
        self.written_bytes = 0;
        let mut state = self.shared.state.lock().unwrap();
        state.durable_upto = state.durable_upto.max(state.written_upto);
        self.shared
            .durable_watermark
            .store(state.durable_upto, Ordering::Release);
        state.segment_start = next_start;
        state.rotations_done += 1;
        self.shared.ack_cv.notify_all();
        Ok(())
    }

    /// Clean shutdown: trim the preallocated tail so the log ends at a frame
    /// boundary, then hand the sync stage the final flush-and-ack.
    fn finish(self) {
        if self.file.set_len(self.written_bytes).is_err() {
            return self.die();
        }
        let mut state = self.shared.state.lock().unwrap();
        state.append_done = true;
        self.shared.sync_cv.notify_one();
    }
}

/// Stage 2: fsyncs written batches per the [`FsyncPolicy`] and acknowledges
/// committers through the watermark. Runs concurrently with the append
/// stage's next fill.
struct SyncStage {
    shared: Arc<Shared>,
    fsync: FsyncPolicy,
    crash: CrashPoints,
    last_fsync: Instant,
}

impl SyncStage {
    fn die(&self) {
        self.shared.die();
    }

    fn run(mut self) {
        loop {
            let ack_upto;
            let finish;
            {
                let mut state = self.shared.state.lock().unwrap();
                loop {
                    if state.dead {
                        return;
                    }
                    if state.append_done {
                        break;
                    }
                    if state.written_upto > state.durable_upto {
                        match self.fsync {
                            // Group: wait out the interval clock, collecting
                            // everything written in the meantime under one
                            // fsync.
                            FsyncPolicy::Group(interval) => {
                                let deadline = self.last_fsync + interval;
                                let now = Instant::now();
                                if now >= deadline {
                                    break;
                                }
                                let (guard, _) = self
                                    .shared
                                    .sync_cv
                                    .wait_timeout(state, deadline - now)
                                    .unwrap();
                                state = guard;
                            }
                            _ => break,
                        }
                    } else {
                        state = self.shared.sync_cv.wait(state).unwrap();
                    }
                }
                ack_upto = state.written_upto;
                finish = state.append_done;
            }

            // The fsync itself, outside the state lock: the append stage
            // keeps filling the next batch while this runs. On the final
            // flush sync_all also persists the shutdown trim.
            let synced = {
                let file = self.shared.sync_file.lock().unwrap();
                if finish {
                    file.sync_all()
                } else {
                    file.sync_data()
                }
            };
            if synced.is_err() {
                return self.die();
            }
            self.last_fsync = Instant::now();
            if !finish
                && self
                    .crash
                    .should_crash(crash_points::AFTER_FSYNC_BEFORE_ACK)
            {
                return self.die();
            }
            self.shared.ack_durable(ack_upto);
            if finish {
                // Clean end of the pipeline: mark the log dead so any ticket
                // stranded behind a sequence gap fails instead of hanging.
                return self.die();
            }
        }
    }
}
