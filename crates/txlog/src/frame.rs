//! The on-disk record framing.
//!
//! A log segment is a byte-concatenation of *frames*:
//!
//! ```text
//! ┌─────────┬─────────┬─────────┬─────────┬──────────────────┐
//! │ magic   │ len     │ lsn     │ crc32   │ payload          │
//! │ "TXLG"  │ u32 LE  │ u64 LE  │ u32 LE  │ len bytes        │
//! │ 4 bytes │ 4 bytes │ 8 bytes │ 4 bytes │                  │
//! └─────────┴─────────┴─────────┴─────────┴──────────────────┘
//! ```
//!
//! The CRC covers `len | lsn | payload`, so a bit flip anywhere in a frame
//! (header fields included) fails validation; the magic catches desynced
//! scans cheaply before the CRC is even computed. [`read_frames`] validates a
//! byte buffer frame-by-frame and stops at the first violation — which is
//! exactly the torn-tail rule: everything before the first invalid frame is
//! trusted, everything from it on is discarded.

/// Frame magic: marks the start of every record frame.
pub const FRAME_MAGIC: [u8; 4] = *b"TXLG";

/// Size of the fixed frame header (magic + len + lsn + crc).
pub const FRAME_HEADER_LEN: usize = 20;

/// Folds `bytes` into a raw (pre-inverted) CRC-32 state — the streaming
/// step, so multi-part inputs hash without being copied into one buffer.
fn crc32_fold(state: u32, bytes: &[u8]) -> u32 {
    // Small bytewise table, built once. The WAL write path hashes a few
    // hundred bytes per record; table-driven bytewise CRC is plenty.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = state;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    crc
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_fold(!0, bytes)
}

/// CRC-32 over the logical concatenation of `parts`, hashed in streaming
/// steps — so multi-part frame layouts (header fields in one buffer, payload
/// in another) validate without copying into a contiguous buffer. Shared
/// with the network protocol's frame codec, which reuses this CRC idiom.
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    !parts.iter().fold(!0, |state, part| crc32_fold(state, part))
}

/// The CRC a frame with this `lsn` and `payload` must carry. Hashed in two
/// streaming steps (stack header, payload in place) — no allocation or copy
/// on the group-commit write path.
fn frame_crc(lsn: u64, payload: &[u8]) -> u32 {
    let mut header = [0u8; 12];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&lsn.to_le_bytes());
    !crc32_fold(crc32_fold(!0, &header), payload)
}

/// Appends one encoded frame for `(lsn, payload)` to `out`.
pub fn encode_frame_into(out: &mut Vec<u8>, lsn: u64, payload: &[u8]) {
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&frame_crc(lsn, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One encoded frame (convenience over [`encode_frame_into`]).
pub fn encode_frame(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    encode_frame_into(&mut out, lsn, payload);
    out
}

/// The result of scanning a byte buffer for frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameScan {
    /// The valid `(lsn, payload)` records, in file order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// How many leading bytes of the buffer hold valid frames. Truncating
    /// the file to this length removes the torn/corrupt tail.
    pub valid_bytes: usize,
    /// Why the scan stopped early, if it did not consume the whole buffer.
    pub truncation: Option<String>,
}

/// Scans `bytes` as a sequence of frames, stopping at the first torn or
/// corrupt frame. Never panics on arbitrary input.
pub fn read_frames(bytes: &[u8]) -> FrameScan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let truncation = loop {
        let remaining = &bytes[offset..];
        if remaining.is_empty() {
            break None;
        }
        if remaining.len() < FRAME_HEADER_LEN {
            break Some(format!(
                "torn frame header at byte {offset}: {} of {FRAME_HEADER_LEN} header bytes",
                remaining.len()
            ));
        }
        if remaining[..4] != FRAME_MAGIC {
            break Some(format!("bad frame magic at byte {offset}"));
        }
        let len = u32::from_le_bytes(remaining[4..8].try_into().unwrap()) as usize;
        let lsn = u64::from_le_bytes(remaining[8..16].try_into().unwrap());
        let crc = u32::from_le_bytes(remaining[16..20].try_into().unwrap());
        let payload = &remaining[FRAME_HEADER_LEN..];
        if payload.len() < len {
            break Some(format!(
                "torn frame payload at byte {offset} (lsn {lsn}): {} of {len} payload bytes",
                payload.len()
            ));
        }
        let payload = &payload[..len];
        if frame_crc(lsn, payload) != crc {
            break Some(format!("CRC mismatch at byte {offset} (claimed lsn {lsn})"));
        }
        records.push((lsn, payload.to_vec()));
        offset += FRAME_HEADER_LEN + len;
    };
    FrameScan {
        records,
        valid_bytes: offset,
        truncation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_frame_crc_equals_the_buffered_form() {
        for (lsn, payload) in [(0u64, &b""[..]), (7, b"x"), (u64::MAX, b"hello frame")] {
            let mut buffered = Vec::new();
            buffered.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buffered.extend_from_slice(&lsn.to_le_bytes());
            buffered.extend_from_slice(payload);
            assert_eq!(frame_crc(lsn, payload), crc32(&buffered));
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, 0, b"hello");
        encode_frame_into(&mut buf, 1, b"");
        encode_frame_into(&mut buf, 2, &[0xAB; 300]);
        let scan = read_frames(&buf);
        assert_eq!(scan.truncation, None);
        assert_eq!(scan.valid_bytes, buf.len());
        assert_eq!(
            scan.records,
            vec![
                (0, b"hello".to_vec()),
                (1, Vec::new()),
                (2, vec![0xAB; 300]),
            ]
        );
    }

    #[test]
    fn every_truncation_of_the_last_frame_is_detected() {
        let mut buf = encode_frame(0, b"stable");
        let keep = buf.len();
        encode_frame_into(&mut buf, 1, b"torn tail record");
        for cut in keep..buf.len() {
            let scan = read_frames(&buf[..cut]);
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_bytes, keep, "cut at {cut}");
            assert!(scan.truncation.is_some() || cut == keep, "cut at {cut}");
        }
    }

    #[test]
    fn every_single_byte_flip_in_a_frame_is_detected() {
        let prefix = encode_frame(0, b"stable");
        let frame = encode_frame(1, b"payload!");
        for i in 0..frame.len() {
            for bit in 0..8u8 {
                let mut buf = prefix.clone();
                let mut corrupt = frame.clone();
                corrupt[i] ^= 1 << bit;
                buf.extend_from_slice(&corrupt);
                let scan = read_frames(&buf);
                assert_eq!(
                    scan.records,
                    vec![(0, b"stable".to_vec())],
                    "flip byte {i} bit {bit} must invalidate only the flipped frame"
                );
                assert_eq!(scan.valid_bytes, prefix.len());
                assert!(scan.truncation.is_some());
            }
        }
    }

    #[test]
    fn empty_input_is_a_clean_scan() {
        let scan = read_frames(&[]);
        assert_eq!(scan.records, Vec::new());
        assert_eq!(scan.valid_bytes, 0);
        assert_eq!(scan.truncation, None);
    }
}
