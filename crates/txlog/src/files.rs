//! Log-directory layout: segment files, snapshot files, pruning.
//!
//! A log directory holds:
//!
//! * **segments** `wal-<start_lsn>.log` — frame sequences (see [`crate::frame`]).
//!   A segment's name is the LSN of its first record; the records of one
//!   segment are dense and in order, and segments tile the LSN space in file
//!   order. Only the newest segment can have a torn tail (older segments are
//!   closed at a frame boundary before a new one is opened).
//! * **snapshots** `snap-<lsn>.snap` — an opaque payload covering every
//!   record with `lsn < <lsn>`. Snapshots are written to a temp file and
//!   renamed into place, so a crash mid-snapshot leaves at most a stray
//!   `.tmp` — and a *storage error* mid-snapshot leaves nothing: the temp
//!   file is unlinked before the error propagates. The trailing CRC rejects
//!   torn or corrupt snapshots at read time and recovery falls back to an
//!   older one.
//!
//! After a snapshot at LSN `L` the log is truncated by [`prune_obsolete`]:
//! every snapshot older than `L` and every segment whose records all satisfy
//! `lsn < L` (i.e. whose *successor* segment starts at or below `L`) is
//! deleted.
//!
//! Every function has a `*_with` variant taking the [`WalFs`] to operate
//! through; the plain variants run on [`RealFs`]. Lock `unwrap`s are banned
//! here (`deny(clippy::unwrap_used)`): every storage failure propagates as a
//! typed `io::Error`.

#![deny(clippy::unwrap_used)]

use std::io;
use std::path::{Path, PathBuf};

use crate::frame::crc32;
use crate::vfs::{RealFs, WalFs};

const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".log";
const SNAPSHOT_PREFIX: &str = "snap-";
const SNAPSHOT_SUFFIX: &str = ".snap";

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"TXSN";

/// Snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The path of the segment whose first record is `start_lsn`.
pub fn segment_path(dir: &Path, start_lsn: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{start_lsn:020}{SEGMENT_SUFFIX}"))
}

/// The path of the snapshot covering records below `lsn`.
pub fn snapshot_path(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("{SNAPSHOT_PREFIX}{lsn:020}{SNAPSHOT_SUFFIX}"))
}

fn parse_name(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn list(fs: &dyn WalFs, dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for (name, path) in fs.list_dir(dir)? {
        if let Some(lsn) = parse_name(&name, prefix, suffix) {
            out.push((lsn, path));
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Lists the log segments of `dir`, ascending by start LSN. Foreign files
/// (temp files, snapshots, anything unparseable) are ignored.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list_segments_with(&RealFs, dir)
}

/// [`list_segments`] through an explicit [`WalFs`].
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn list_segments_with(fs: &dyn WalFs, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list(fs, dir, SEGMENT_PREFIX, SEGMENT_SUFFIX)
}

/// Lists the snapshots of `dir`, **descending** by LSN (newest first, the
/// order recovery tries them in).
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list_snapshots_with(&RealFs, dir)
}

/// [`list_snapshots`] through an explicit [`WalFs`].
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn list_snapshots_with(fs: &dyn WalFs, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut snapshots = list(fs, dir, SNAPSHOT_PREFIX, SNAPSHOT_SUFFIX)?;
    snapshots.reverse();
    Ok(snapshots)
}

/// Fsyncs the directory itself, making renames/creations/unlinks of its
/// entries durable. Without this, a power failure after
/// [`prune_obsolete`] could persist the unlink of an old snapshot while the
/// rename of its replacement is still only in the page cache — losing
/// acknowledged writes even under `fsync=always`.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    RealFs.sync_dir(dir)
}

/// Writes the snapshot covering records below `lsn` atomically (temp file,
/// fsync, rename, directory fsync) and returns its final path. Older
/// snapshots are left for [`prune_obsolete`].
///
/// # Errors
///
/// Propagates file-system failures.
pub fn write_snapshot(dir: &Path, lsn: u64, payload: &[u8]) -> io::Result<PathBuf> {
    write_snapshot_with(&RealFs, dir, lsn, payload)
}

/// [`write_snapshot`] through an explicit [`WalFs`]. On any failure after
/// the temp file was created, the temp file is unlinked (best effort) before
/// the error propagates — a failed snapshot leaves no partial files behind.
///
/// # Errors
///
/// Propagates file-system failures.
pub fn write_snapshot_with(
    fs: &dyn WalFs,
    dir: &Path,
    lsn: u64,
    payload: &[u8],
) -> io::Result<PathBuf> {
    let final_path = snapshot_path(dir, lsn);
    let tmp_path = final_path.with_extension("snap.tmp");
    let mut bytes = Vec::with_capacity(24 + payload.len() + 4);
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&lsn.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    let write_tmp = || -> io::Result<()> {
        let mut file = fs.create(&tmp_path)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
        Ok(())
    };
    if let Err(error) = write_tmp().and_then(|()| fs.rename(&tmp_path, &final_path)) {
        // The create itself may have failed (no file) — removal is best
        // effort and the root cause is what propagates.
        let _ = fs.remove_file(&tmp_path);
        return Err(error);
    }
    // The snapshot's directory entry must be durable before the caller
    // prunes the segments it covers; if that fails, unlink the renamed file
    // too so a failed snapshot is all-or-nothing (recovery replays the log
    // instead).
    if let Err(error) = fs.sync_dir(dir) {
        let _ = fs.remove_file(&final_path);
        return Err(error);
    }
    Ok(final_path)
}

/// Reads and validates a snapshot file. Returns `None` (never panics) when
/// the file is unreadable, torn or corrupt — recovery then falls back to an
/// older snapshot.
pub fn read_snapshot(path: &Path) -> Option<(u64, Vec<u8>)> {
    read_snapshot_with(&RealFs, path)
}

/// [`read_snapshot`] through an explicit [`WalFs`].
pub fn read_snapshot_with(fs: &dyn WalFs, path: &Path) -> Option<(u64, Vec<u8>)> {
    let bytes = fs.read(path).ok()?;
    // The trailing CRC covers everything before it.
    if bytes.len() < 4 {
        return None;
    }
    let body = &bytes[..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().ok()?);
    if crc32(body) != crc {
        return None;
    }
    let mut cur = crate::codec::Cursor::new(body);
    if cur.take(4)? != SNAPSHOT_MAGIC || cur.u32()? != SNAPSHOT_VERSION {
        return None;
    }
    let lsn = cur.u64()?;
    let payload_len = cur.u64()?;
    if payload_len != cur.remaining() as u64 {
        return None;
    }
    let payload = cur.take(payload_len as usize)?;
    Some((lsn, payload.to_vec()))
}

/// Deletes every snapshot older than `upto_lsn` and every segment whose
/// records are all covered by it (the successor segment starts at or below
/// `upto_lsn`; the newest segment is always kept). Returns the deleted
/// paths.
///
/// # Errors
///
/// Propagates file-system failures.
pub fn prune_obsolete(dir: &Path, upto_lsn: u64) -> io::Result<Vec<PathBuf>> {
    prune_obsolete_with(&RealFs, dir, upto_lsn)
}

/// [`prune_obsolete`] through an explicit [`WalFs`].
///
/// # Errors
///
/// Propagates file-system failures.
pub fn prune_obsolete_with(fs: &dyn WalFs, dir: &Path, upto_lsn: u64) -> io::Result<Vec<PathBuf>> {
    let mut deleted = Vec::new();
    for (lsn, path) in list_snapshots_with(fs, dir)? {
        if lsn < upto_lsn {
            fs.remove_file(&path)?;
            deleted.push(path);
        }
    }
    let segments = list_segments_with(fs, dir)?;
    for pair in segments.windows(2) {
        let (_, ref path) = pair[0];
        let (successor_start, _) = pair[1];
        if successor_start <= upto_lsn {
            fs.remove_file(path)?;
            deleted.push(path.clone());
        }
    }
    if !deleted.is_empty() {
        fs.sync_dir(dir)?;
    }
    Ok(deleted)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::fs;
    use tlstm_testutil::TempDir;

    #[test]
    fn listing_orders_and_ignores_foreign_files() {
        let dir = TempDir::new("txlog-files");
        for lsn in [7u64, 0, 300] {
            fs::write(segment_path(dir.path(), lsn), b"").unwrap();
        }
        write_snapshot(dir.path(), 5, b"five").unwrap();
        write_snapshot(dir.path(), 90, b"ninety").unwrap();
        fs::write(dir.path().join("snap-bogus.snap"), b"x").unwrap();
        fs::write(dir.path().join("wal-1.log.tmp"), b"x").unwrap();
        fs::write(dir.path().join("README"), b"x").unwrap();

        let segments: Vec<u64> = list_segments(dir.path())
            .unwrap()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(segments, vec![0, 7, 300]);
        let snapshots: Vec<u64> = list_snapshots(dir.path())
            .unwrap()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(snapshots, vec![90, 5], "newest first");
    }

    #[test]
    fn snapshots_round_trip_and_reject_corruption() {
        let dir = TempDir::new("txlog-snap");
        let payload: Vec<u8> = (0..=255).collect();
        let path = write_snapshot(dir.path(), 42, &payload).unwrap();
        assert_eq!(read_snapshot(&path), Some((42, payload.clone())));

        // Every single-byte corruption is rejected.
        let good = fs::read(&path).unwrap();
        for i in [0usize, 5, 9, 17, 30, good.len() - 1] {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert_eq!(read_snapshot(&path), None, "flip at byte {i}");
        }
        // Truncation is rejected.
        fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert_eq!(read_snapshot(&path), None);
        // Missing file is not an error, just absent.
        assert_eq!(read_snapshot(&snapshot_path(dir.path(), 1)), None);
        // Restore and re-validate.
        fs::write(&path, &good).unwrap();
        assert_eq!(read_snapshot(&path), Some((42, payload)));
    }

    #[test]
    fn prune_keeps_needed_segments_and_newest_snapshot() {
        let dir = TempDir::new("txlog-prune");
        // Segments covering [0,10), [10,25), [25,..].
        for lsn in [0u64, 10, 25] {
            fs::write(segment_path(dir.path(), lsn), b"").unwrap();
        }
        write_snapshot(dir.path(), 8, b"old").unwrap();
        write_snapshot(dir.path(), 12, b"new").unwrap();

        // Snapshot at 12 covers all of [0,10) but only part of [10,25).
        prune_obsolete(dir.path(), 12).unwrap();
        let segments: Vec<u64> = list_segments(dir.path())
            .unwrap()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(
            segments,
            vec![10, 25],
            "only the fully covered segment goes"
        );
        let snapshots: Vec<u64> = list_snapshots(dir.path())
            .unwrap()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(snapshots, vec![12]);

        // Pruning beyond everything keeps the newest segment.
        prune_obsolete(dir.path(), 1_000).unwrap();
        let segments: Vec<u64> = list_segments(dir.path())
            .unwrap()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(segments, vec![25]);
    }

    #[test]
    fn failed_snapshot_writes_leave_no_tmp_files() {
        use crate::vfs::{Fault, FaultError, FaultFs, StorageOp};

        let dir = TempDir::new("txlog-snap-fault");
        let fs = FaultFs::new();
        let plan = fs.plan();
        let no_stray_files = |stage: &str| {
            for entry in std::fs::read_dir(dir.path()).unwrap() {
                let name = entry.unwrap().file_name();
                let name = name.to_string_lossy().into_owned();
                assert!(
                    !name.ends_with(".tmp") && !name.ends_with(SNAPSHOT_SUFFIX),
                    "{stage} left {name} behind"
                );
            }
        };

        for op in [
            StorageOp::Create,
            StorageOp::Write,
            StorageOp::Fsync,
            StorageOp::Rename,
            StorageOp::SyncDir,
        ] {
            plan.arm(op, Fault::once(FaultError::Eio));
            let err = write_snapshot_with(&fs, dir.path(), 9, b"payload").unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::Other, "{op}");
            no_stray_files(op.label());
        }

        // With the faults spent, the same call succeeds.
        let path = write_snapshot_with(&fs, dir.path(), 9, b"payload").unwrap();
        assert_eq!(read_snapshot(&path), Some((9, b"payload".to_vec())));
    }
}
