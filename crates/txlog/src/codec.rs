//! Defensive little-endian decoding shared by everything that parses
//! recovered bytes (the snapshot reader here, the record/snapshot payload
//! codecs layered on `txlog` by `txkv::durable`).
//!
//! Recovery code must never panic on arbitrary disk content, so every read
//! is bounds-checked and returns `None` past the end — one audited cursor
//! instead of hand-rolled slice indexing at each call site.

/// A bounds-checked little-endian reading cursor over a byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    /// Takes the next `n` raw bytes, or `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.at..self.at.checked_add(n)?)?;
        self.at += n;
        Some(slice)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Next `u32`-length-prefixed list of little-endian `u64` words. The
    /// claimed length is validated against the remaining bytes *before* any
    /// allocation, so a corrupt prefix cannot trigger a huge reserve.
    pub fn words(&mut self) -> Option<Vec<u64>> {
        let len = self.u32()? as usize;
        if len > self.remaining() / 8 {
            return None;
        }
        (0..len).map(|_| self.u64()).collect()
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// `true` once every byte has been consumed (decoders should require
    /// this — trailing garbage means a framing bug or corruption).
    pub fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_reads_and_bounds_checks() {
        let mut bytes = vec![7u8];
        bytes.extend_from_slice(&0xABCD_u32.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        let mut cur = Cursor::new(&bytes);
        assert_eq!(cur.u8(), Some(7));
        assert_eq!(cur.u32(), Some(0xABCD));
        assert_eq!(cur.u64(), Some(u64::MAX));
        assert_eq!(cur.words(), Some(vec![1, 2]));
        assert!(cur.done());
        assert_eq!(cur.u8(), None, "reads past the end fail");
        // Truncation at every offset never panics.
        for cut in 0..bytes.len() {
            let mut cur = Cursor::new(&bytes[..cut]);
            let _ = cur.u8();
            let _ = cur.u32();
            let _ = cur.u64();
            let _ = cur.words();
        }
    }

    #[test]
    fn corrupt_word_count_is_rejected_before_allocating() {
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&1u64.to_le_bytes());
        assert_eq!(Cursor::new(&bytes).words(), None);
    }
}
