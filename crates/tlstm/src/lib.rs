//! # tlstm — a unified STM + thread-level-speculation runtime
//!
//! This crate is a from-scratch Rust implementation of **TLSTM**, the system
//! described in *"Unifying Thread-Level Speculation and Transactional Memory"*
//! (Barreto, Dragojević, Ferreira, Filipe, Guerraoui — Middleware 2012).
//!
//! ## The model
//!
//! Programmers hand-parallelise their application into **user-threads** whose
//! critical sections are **user-transactions** (ordinary STM transactions).
//! TLSTM then decomposes each user-thread further into **speculative tasks**
//! that run out of order on a small pool of worker threads (at most
//! `SPECDEPTH` simultaneously active tasks per user-thread) and *commit in
//! program order*. A user-transaction is a consecutive sequence of one or more
//! tasks; its last task (the *commit-task*) commits the whole transaction on
//! behalf of all of them.
//!
//! The runtime guarantees:
//!
//! * **sequential semantics within a user-thread** — a task observes all
//!   writes of tasks from its past and none from its future (intra-thread
//!   write-after-read and write-after-write conflicts are detected and
//!   resolved by rolling individual tasks back);
//! * **opacity across user-transactions** — exactly as the underlying
//!   SwissTM algorithm provides, extended with a *task-aware* contention
//!   manager that aborts the more speculative of two conflicting
//!   user-transactions.
//!
//! ## Example
//!
//! ```rust
//! use tlstm::{task, TaskCtx, TlstmRuntime, TxnSpec};
//! use txmem::{TxConfig, TxMem};
//!
//! let runtime = TlstmRuntime::new(TxConfig::small());
//! let counter = runtime.heap().alloc(1)?;
//!
//! // One user-thread, speculative depth 2.
//! let uthread = runtime.register_uthread(2);
//!
//! // A user-transaction made of two tasks: each increments the counter.
//! let bump = move |ctx: &mut TaskCtx<'_>| {
//!     let v = ctx.read(counter)?;
//!     ctx.write(counter, v + 1)?;
//!     Ok(())
//! };
//! let txn = TxnSpec::new(vec![task(bump), task(bump)]);
//! uthread.execute(vec![txn]);
//!
//! assert_eq!(runtime.heap().load_committed(counter), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cm;
pub mod runtime;
pub mod session;
pub mod task;
pub mod txn_state;
pub mod uthread_state;
pub mod worker;

pub use cm::TaskAwareCm;
pub use runtime::{task, TlstmRuntime, TxnOutcome, TxnSpec, UThread};
pub use task::TaskCtx;
pub use txn_state::TxnShared;
pub use uthread_state::UThreadShared;

// Re-export the substrate types users interact with.
pub use txmem::{Abort, AbortReason, StatsSnapshot, TxConfig, TxMem, WordAddr};

/// The type of a speculative task body.
///
/// A task body may be re-executed an arbitrary number of times (after
/// intra-thread or inter-thread conflicts), so it must confine its side
/// effects to transactional memory accessed through the [`TaskCtx`].
pub type TaskFn = std::sync::Arc<dyn Fn(&mut TaskCtx<'_>) -> Result<(), Abort> + Send + Sync>;
