//! The task-aware inter-thread contention manager.
//!
//! §3.2 of the paper ("Preventing inter-thread deadlocks"): when tasks of
//! different user-threads conflict on a write lock, the contention manager
//! must decide per *user-transaction*, not per task, otherwise two
//! user-threads can block each other forever (each lock owner waiting for its
//! own past tasks, each requester waiting for the owner).
//!
//! The rule (Algorithm 2, `cm-should-abort`):
//!
//! 1. compare the **progress** of the two user-transactions — the number of
//!    their tasks that have already completed; the *more speculative* one
//!    (fewer completed tasks) aborts;
//! 2. on a tie, fall back to the classic two-phase greedy contention manager
//!    inherited from SwissTM.

use swisstm::cm::GreedyCm;
use txmem::{CmDecision, LockOwner};

use crate::txn_state::TxnShared;

/// The task-aware contention-manager policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskAwareCm {
    /// Tie-break policy (two-phase greedy).
    pub greedy: GreedyCm,
}

impl TaskAwareCm {
    /// Resolves a conflict between the requesting task's user-transaction
    /// (`requester`) and the current owner of the write lock.
    ///
    /// Returns what the *requester* should do; when the decision is
    /// [`CmDecision::AbortOwner`] the owner has already been signalled.
    pub fn resolve(&self, requester: &TxnShared, owner: &dyn LockOwner) -> CmDecision {
        if owner.is_finishing() {
            // The owner is committing or already aborting: its locks will be
            // released shortly, so the requester just waits.
            return CmDecision::Wait;
        }
        let my_progress = requester.completed_progress();
        let owner_progress = owner.completed_progress();
        if my_progress > owner_progress {
            // The owner is more speculative: abort it and wait for the lock.
            owner.signal_abort();
            return CmDecision::AbortOwner;
        }
        if my_progress < owner_progress {
            // We are more speculative: abort ourselves.
            return CmDecision::AbortSelf;
        }
        // Same progress: fall back to two-phase greedy priorities.
        let decision = self.greedy.resolve(requester.priority(), owner);
        if decision == CmDecision::AbortOwner {
            owner.signal_abort();
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uthread_state::UThreadShared;
    use std::sync::Arc;

    fn txn_with_progress(
        ptid: u32,
        completed: u64,
        n_tasks: u64,
    ) -> (Arc<UThreadShared>, TxnShared) {
        let u = Arc::new(UThreadShared::new(ptid, n_tasks.max(1) as usize));
        let t = TxnShared::new(Arc::clone(&u), 1, n_tasks.max(1));
        for s in 1..=completed {
            u.mark_completed(s, false);
        }
        (u, t)
    }

    #[test]
    fn less_speculative_transaction_wins() {
        let (_ua, a) = txn_with_progress(0, 2, 3); // 2 tasks completed
        let (_ub, b) = txn_with_progress(1, 0, 3); // none completed
        let cm = TaskAwareCm::default();
        // a requests a lock owned by b: a has more progress, b gets aborted.
        assert_eq!(cm.resolve(&a, &b), CmDecision::AbortOwner);
        assert!(b.abort_requested());
        // b requests a lock owned by a: b is more speculative, aborts itself.
        let (_ua, a) = txn_with_progress(0, 2, 3);
        let (_ub, b) = txn_with_progress(1, 0, 3);
        assert_eq!(cm.resolve(&b, &a), CmDecision::AbortSelf);
        assert!(!a.abort_requested());
    }

    #[test]
    fn equal_progress_falls_back_to_greedy() {
        let cm = TaskAwareCm::default();
        // Both timid, equal progress: requester politely aborts itself.
        let (_ua, a) = txn_with_progress(0, 1, 2);
        let (_ub, b) = txn_with_progress(1, 1, 2);
        assert_eq!(cm.resolve(&a, &b), CmDecision::AbortSelf);
        // Requester holds an older greedy ticket: owner aborts.
        a.set_priority(1);
        assert_eq!(cm.resolve(&a, &b), CmDecision::AbortOwner);
        assert!(b.abort_requested());
    }

    #[test]
    fn finishing_owner_means_wait() {
        let cm = TaskAwareCm::default();
        let (_ua, a) = txn_with_progress(0, 2, 3);
        let (_ub, b) = txn_with_progress(1, 0, 3);
        b.set_finishing();
        assert_eq!(cm.resolve(&a, &b), CmDecision::Wait);
        assert!(!b.abort_requested());
    }

    #[test]
    fn already_aborting_owner_means_wait() {
        let cm = TaskAwareCm::default();
        let (_ua, a) = txn_with_progress(0, 2, 3);
        let (_ub, b) = txn_with_progress(1, 0, 3);
        b.request_abort();
        assert_eq!(cm.resolve(&a, &b), CmDecision::Wait);
    }
}
