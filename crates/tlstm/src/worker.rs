//! Worker threads: the execution engine behind a TLSTM user-thread.
//!
//! Each user-thread owns `SPECDEPTH` worker threads. Task `serial` is always
//! dispatched to worker `serial mod SPECDEPTH`; because a worker does not pick
//! up its next task until the current one has *retired* (its user-transaction
//! committed), at most `SPECDEPTH` tasks of the user-thread are active at any
//! time — exactly the admission rule of the paper.
//!
//! The worker loop also implements the rollback protocols:
//!
//! * **individual task rollback** (intra-thread WAR/WAW, losing an
//!   inter-thread conflict): remove the task's speculative chain entries,
//!   reset its logs and re-run the body;
//! * **user-transaction rollback**: every task removes its own entries and
//!   acknowledges; the commit-task waits for all acknowledgements, resets the
//!   user-thread counters, bumps the rollback epoch and everyone re-executes.

use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use swisstm::cm::GreedyTicket;
use txmem::{AbortReason, TxSubstrate};

use crate::cm::TaskAwareCm;
use crate::task::{TaskBufs, TaskCtx};
use crate::txn_state::TxnShared;
use crate::uthread_state::UThreadShared;
use crate::TaskFn;

/// After this many rollbacks of the same user-transaction, its tasks fall back
/// to executing in program order (each task waits for all past tasks to
/// complete before running its body). This breaks pathological intra-thread
/// write-after-write livelocks at the cost of serialising the transaction —
/// the behaviour the paper reports for write-heavy long traversals.
const PESSIMISTIC_AFTER_ROLLBACKS: u32 = 2;

/// After this many rollbacks a transaction turns greedy (draws a
/// contention-manager ticket), mirroring the SwissTM two-phase policy.
const GREEDY_AFTER_ROLLBACKS: u32 = 2;

/// After this many *individual task* aborts decided by the inter-thread
/// contention manager, the whole user-transaction turns greedy. Without this
/// escalation two transactions whose tasks hold each other's write locks can
/// self-abort in a symmetric-timid cycle forever: neither ever suffers a
/// whole-transaction rollback (the locks they already hold stay held), so
/// [`GREEDY_AFTER_ROLLBACKS`] alone never breaks the tie.
const GREEDY_AFTER_CM_SELF_ABORTS: u32 = 3;

/// A unit of work sent to a worker: one task of one user-transaction.
pub(crate) struct WorkItem {
    /// Serial number of the task.
    pub serial: u64,
    /// `true` if this is the commit-task of its user-transaction.
    pub try_commit: bool,
    /// Shared state of the enclosing user-transaction.
    pub txn: Arc<TxnShared>,
    /// The task body.
    pub body: TaskFn,
    /// Notified (with the task serial) when the task has retired.
    pub done: Sender<u64>,
}

impl std::fmt::Debug for WorkItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkItem")
            .field("serial", &self.serial)
            .field("try_commit", &self.try_commit)
            .finish_non_exhaustive()
    }
}

/// Long-lived state of one worker thread.
pub(crate) struct Worker {
    pub substrate: Arc<TxSubstrate>,
    pub uthread: Arc<UThreadShared>,
    pub cm: TaskAwareCm,
    pub tickets: Arc<GreedyTicket>,
    pub queue: Receiver<WorkItem>,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("ptid", &self.uthread.ptid())
            .finish_non_exhaustive()
    }
}

impl Worker {
    /// The worker main loop: runs tasks from the queue until the channel is
    /// closed (the user-thread handle was dropped).
    ///
    /// Between tasks the worker first spins briefly on the queue (the next
    /// task of a pipelined batch is usually already there, and parking the
    /// thread would put an OS wake-up on the critical path of every
    /// transaction) before falling back to a blocking receive.
    pub fn run(self) {
        // On a single-core host, spinning on the queue starves the producer;
        // fall through to the blocking receive immediately.
        let spin_budget = if txmem::pause::multi_core() {
            4_000u32
        } else {
            0
        };
        // One set of speculative buffers for the worker's lifetime, recycled
        // across every task and attempt it runs.
        let mut bufs = TaskBufs::default();
        'outer: loop {
            let mut item = None;
            for i in 0..spin_budget {
                match self.queue.try_recv() {
                    Ok(work) => {
                        item = Some(work);
                        break;
                    }
                    Err(crossbeam::channel::TryRecvError::Empty) => {
                        if i % 256 == 255 {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    Err(crossbeam::channel::TryRecvError::Disconnected) => break 'outer,
                }
            }
            let item = match item {
                Some(work) => work,
                None => match self.queue.recv() {
                    Ok(work) => work,
                    Err(_) => break,
                },
            };
            self.run_task(&item, &mut bufs);
            // The receiver of `done` may already be gone if the caller timed
            // out; that is not an error for the worker.
            let _ = item.done.send(item.serial);
        }
    }

    /// Executes one task until it retires (its user-transaction commits),
    /// building its speculative state inside the worker's recycled `bufs`.
    fn run_task(&self, item: &WorkItem, bufs: &mut TaskBufs) {
        // Task activity is attributed to the owning *user*-thread's shard, not
        // to the worker's OS thread, so per-shard snapshots read as
        // per-user-thread breakdowns.
        let stats = self.substrate.stats.shard(self.uthread.ptid());
        stats.bump(&stats.task_starts);
        let mut ctx = TaskCtx::new(
            &self.substrate,
            self.cm,
            Arc::clone(&self.uthread),
            Arc::clone(&item.txn),
            item.serial,
            item.try_commit,
            bufs,
        );
        let mut attempt = 0u32;
        loop {
            attempt = attempt.wrapping_add(1);
            // If a rollback of this transaction is already pending, join it
            // before (re-)executing the body.
            if item.txn.abort_requested() {
                self.participate_in_rollback(&mut ctx);
            }
            // Abort-storm fallback: the user-thread abandoned speculative
            // execution of this transaction. The rollback that was requested
            // alongside the abandonment has dismantled this task's
            // speculative state (the check sits after the participation
            // above, and `finish_rollback` clears the request), so the task
            // can simply vacate — the user-thread re-runs the transaction
            // sequentially inline.
            if item.txn.abandoned() && !item.txn.abort_requested() {
                return;
            }
            // Pessimistic fallback: after repeated transaction rollbacks, run
            // the tasks of this transaction in program order.
            if item.txn.rollbacks() >= PESSIMISTIC_AFTER_ROLLBACKS {
                let uthread = Arc::clone(&self.uthread);
                let serial = item.serial;
                let txn = Arc::clone(&item.txn);
                uthread.wait_until(|| {
                    uthread.completed_task() >= serial.saturating_sub(1) || txn.abort_requested()
                });
                if item.txn.abort_requested() {
                    continue;
                }
            }
            ctx.reset_for_attempt();
            let outcome = (item.body)(&mut ctx).and_then(|()| ctx.task_commit());
            match outcome {
                Ok(()) => {
                    stats.bump(&stats.task_commits);
                    ctx.flush_op_counters();
                    return;
                }
                Err(abort) => {
                    stats.bump(&stats.task_aborts);
                    stats.record_abort_reason(abort.reason);
                    txobs::tx_abort(abort.reason.trace_cause());
                    ctx.remove_chain_entries();
                    if abort.reason == AbortReason::InterThreadWriteConflict
                        && item.txn.note_cm_self_abort() >= GREEDY_AFTER_CM_SELF_ABORTS
                        && item.txn.priority() == crate::txn_state::TIMID_PRIORITY
                    {
                        item.txn.set_priority(self.tickets.draw());
                    }
                    if abort.reason == AbortReason::TransactionAbortSignal
                        || item.txn.abort_requested()
                    {
                        self.participate_in_rollback(&mut ctx);
                    }
                    // Back off before re-executing, while holding no locks or
                    // chain entries. Without this, a signalled future task can
                    // phase-lock with the past writer that keeps signalling
                    // it: the future task releases and re-acquires the
                    // contested write lock faster than the (yielding) past
                    // writer re-samples it, so the writer never gets the lock
                    // and the pair livelocks. Sleeping with the lock free
                    // guarantees the past writer's next sample succeeds.
                    Self::abort_backoff(attempt);
                }
            }
        }
    }

    /// Exponential backoff between re-execution attempts of an aborted task:
    /// the first few retries only yield, later ones sleep for exponentially
    /// longer (capped), which breaks intra-thread signal/re-acquire livelocks.
    pub(crate) fn abort_backoff(attempt: u32) {
        match attempt {
            0..=2 => std::thread::yield_now(),
            n => {
                let micros = 1u64 << n.saturating_sub(3).min(6);
                std::thread::sleep(std::time::Duration::from_micros(micros));
            }
        }
    }

    /// Joins the coordinated rollback of the task's user-transaction.
    fn participate_in_rollback(&self, ctx: &mut TaskCtx<'_>) {
        participate_in_rollback(&self.substrate, &self.tickets, ctx);
    }
}

/// Joins the coordinated rollback of the task's user-transaction.
///
/// Non-commit tasks acknowledge and wait for the rollback epoch to
/// advance; the commit-task drives the protocol (waits for every other
/// task, resets the user-thread counters and re-arms the transaction).
fn participate_in_rollback(
    substrate: &Arc<TxSubstrate>,
    tickets: &Arc<GreedyTicket>,
    ctx: &mut TaskCtx<'_>,
) {
    let txn = Arc::clone(ctx.txn());
    let uthread = Arc::clone(ctx.uthread());
    if ctx.is_commit_task() {
        txn.start_rollback();
        let needed = (txn.n_tasks() - 1) as u32;
        uthread.wait_until(|| txn.acks() >= needed);
        uthread.reset_after_rollback(txn.start_serial());
        let stats = substrate.stats.shard(uthread.ptid());
        stats.bump(&stats.tx_aborts);
        if txn.rollbacks() + 1 >= GREEDY_AFTER_ROLLBACKS
            && txn.priority() == crate::txn_state::TIMID_PRIORITY
        {
            txn.set_priority(tickets.draw());
        }
        txn.finish_rollback();
    } else {
        let epoch = txn.epoch();
        txn.ack_abort();
        uthread.wait_until(|| txn.epoch() > epoch);
    }
}

/// Runs one (merged, single-task) user-transaction to retirement on the
/// *calling* thread: the sequential-fallback execution path.
///
/// This is the same retry/rollback protocol as [`Worker::run_task`], minus
/// the storm gate and pessimistic program-order waits — an inline transaction
/// has exactly one task, runs start-to-commit on the driving thread, and
/// holds its write locks only for the duration of the call. That removes the
/// cross-thread task handoffs whose wake-up latency dominates a loaded
/// single-core host, which is precisely why the storm fallback routes merged
/// batches through here instead of through the worker lanes.
pub(crate) fn run_task_inline(
    substrate: &Arc<TxSubstrate>,
    cm: TaskAwareCm,
    tickets: &Arc<GreedyTicket>,
    uthread: &Arc<UThreadShared>,
    txn: &Arc<TxnShared>,
    body: &TaskFn,
    bufs: &mut TaskBufs,
) {
    debug_assert_eq!(txn.start_serial(), txn.commit_serial());
    let stats = substrate.stats.shard(uthread.ptid());
    stats.bump(&stats.task_starts);
    let mut ctx = TaskCtx::new(
        substrate,
        cm,
        Arc::clone(uthread),
        Arc::clone(txn),
        txn.commit_serial(),
        true,
        bufs,
    );
    let mut attempt = 0u32;
    loop {
        attempt = attempt.wrapping_add(1);
        if txn.abort_requested() {
            participate_in_rollback(substrate, tickets, &mut ctx);
        }
        ctx.reset_for_attempt();
        let outcome = (body)(&mut ctx).and_then(|()| ctx.task_commit());
        match outcome {
            Ok(()) => {
                stats.bump(&stats.task_commits);
                ctx.flush_op_counters();
                return;
            }
            Err(abort) => {
                stats.bump(&stats.task_aborts);
                stats.record_abort_reason(abort.reason);
                txobs::tx_abort(abort.reason.trace_cause());
                ctx.remove_chain_entries();
                if abort.reason == AbortReason::InterThreadWriteConflict
                    && txn.note_cm_self_abort() >= GREEDY_AFTER_CM_SELF_ABORTS
                    && txn.priority() == crate::txn_state::TIMID_PRIORITY
                {
                    txn.set_priority(tickets.draw());
                }
                if abort.reason == AbortReason::TransactionAbortSignal || txn.abort_requested() {
                    participate_in_rollback(substrate, tickets, &mut ctx);
                }
                Worker::abort_backoff(attempt);
            }
        }
    }
}
