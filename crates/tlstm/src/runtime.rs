//! The TLSTM runtime and the user-thread handle.

use std::cell::Cell;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use swisstm::cm::GreedyTicket;
use txmem::{Abort, DirectMem, StatsSnapshot, ThreadIdAllocator, TxConfig, TxHeap, TxSubstrate};

use crate::cm::TaskAwareCm;
use crate::task::TaskCtx;
use crate::txn_state::TxnShared;
use crate::uthread_state::UThreadShared;
use crate::worker::{WorkItem, Worker};
use crate::TaskFn;

/// Wraps a closure into a [`TaskFn`] (convenience for building [`TxnSpec`]s).
pub fn task<F>(f: F) -> TaskFn
where
    F: Fn(&mut TaskCtx<'_>) -> Result<(), Abort> + Send + Sync + 'static,
{
    Arc::new(f)
}

/// Specification of one user-transaction: the ordered list of speculative
/// tasks it decomposes into.
///
/// The decomposition itself (how a transaction body is split into tasks) is
/// the caller's responsibility — the paper treats it as an orthogonal
/// compile-time/runtime concern — but the number of tasks must not exceed the
/// user-thread's speculative depth.
#[derive(Clone)]
pub struct TxnSpec {
    tasks: Vec<TaskFn>,
}

impl TxnSpec {
    /// Builds a user-transaction from its tasks, in program order.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn new(tasks: Vec<TaskFn>) -> Self {
        assert!(
            !tasks.is_empty(),
            "a user-transaction needs at least one task"
        );
        TxnSpec { tasks }
    }

    /// Builds a user-transaction consisting of a single task (i.e. a plain
    /// STM transaction).
    pub fn single<F>(f: F) -> Self
    where
        F: Fn(&mut TaskCtx<'_>) -> Result<(), Abort> + Send + Sync + 'static,
    {
        TxnSpec::new(vec![task(f)])
    }

    /// Number of tasks in the transaction.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the transaction has no tasks (never the case after `new`).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

impl std::fmt::Debug for TxnSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnSpec")
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

/// Consecutive stormy batches (at least one whole-transaction rollback in
/// the batch) before [`UThread::execute`] falls back to sequential plan
/// execution. Chosen low: on a single core a rollback storm has no upside,
/// and one merged batch re-probes speculation cheaply after the cooldown.
const STORM_STREAK_THRESHOLD: u32 = 3;

/// Batches executed sequentially (tasks merged) before speculation is
/// re-probed. Amortises the cost of the occasional stormy re-probe without
/// permanently giving up on speculative execution.
const STORM_COOLDOWN_BATCHES: u32 = 64;

/// Upper bound on the geometrically-escalating cooldown window (see
/// [`UThread::arm_storm_cooldown`]). A workload that storms on every
/// re-probe settles into sequential stretches of this many batches.
const STORM_COOLDOWN_MAX: u32 = 32 * 1024;

/// Whole-transaction rollbacks of a single in-flight batch that trip the
/// detector mid-batch (the batch is re-executing wholesale).
const STORM_BATCH_ROLLBACKS: u32 = 2;

/// Contention-manager self-aborts of a single in-flight transaction that
/// trip the detector mid-batch. A livelocked `c64`-style batch racks these
/// up at tens per millisecond, so this threshold fires within a few tens of
/// milliseconds while healthy batches stay far below it.
const STORM_CM_RETRIES: u32 = 512;

/// After a batch has been in flight this long, lower-grade churn (any
/// rollback, or [`STORM_PATIENCE_CM_RETRIES`] CM self-aborts) also counts as
/// a storm. Pure slowness without churn never trips the detector.
const STORM_PATIENCE: std::time::Duration = std::time::Duration::from_millis(250);

/// CM self-abort floor for the patience-based trip.
const STORM_PATIENCE_CM_RETRIES: u32 = 64;

/// `true` if any in-flight transaction of the batch shows storm-grade churn.
fn batch_storming(pending: &[Arc<TxnShared>], elapsed: std::time::Duration) -> bool {
    let patient = elapsed >= STORM_PATIENCE;
    pending.iter().any(|txn| {
        !txn.is_committed()
            && (txn.rollbacks() >= STORM_BATCH_ROLLBACKS
                || txn.cm_retries() >= STORM_CM_RETRIES
                || (patient
                    && (txn.rollbacks() > 0 || txn.cm_retries() >= STORM_PATIENCE_CM_RETRIES)))
    })
}

/// Merges a transaction's tasks into one composite task that runs the bodies
/// in program order. Sequential semantics are unchanged — tasks already
/// observe earlier tasks' writes, and an abort re-executes every body — but
/// the merged form cannot suffer intra-transaction conflicts, which is what
/// the abort-storm fallback needs.
fn merge_sequential(spec: TxnSpec) -> TxnSpec {
    if spec.tasks.len() <= 1 {
        return spec;
    }
    let tasks = spec.tasks;
    TxnSpec {
        tasks: vec![Arc::new(move |ctx: &mut TaskCtx<'_>| {
            for body in &tasks {
                body(ctx)?;
            }
            Ok(())
        })],
    }
}

/// Outcome of one committed user-transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnOutcome {
    /// Serial of the transaction's first task.
    pub start_serial: u64,
    /// Serial of the transaction's last task (the commit-task).
    pub commit_serial: u64,
    /// Number of whole-transaction rollbacks suffered before committing.
    pub rollbacks: u32,
}

/// The TLSTM runtime: owns the shared substrate and registers user-threads.
#[derive(Debug)]
pub struct TlstmRuntime {
    substrate: Arc<TxSubstrate>,
    ptids: ThreadIdAllocator,
    tickets: Arc<GreedyTicket>,
    cm: TaskAwareCm,
}

impl TlstmRuntime {
    /// Creates a runtime with a fresh substrate built from `config`.
    pub fn new(config: TxConfig) -> Arc<Self> {
        Self::with_substrate(Arc::new(TxSubstrate::new(config)))
    }

    /// Creates a runtime over an existing substrate.
    pub fn with_substrate(substrate: Arc<TxSubstrate>) -> Arc<Self> {
        Arc::new(TlstmRuntime {
            substrate,
            ptids: ThreadIdAllocator::new(),
            tickets: Arc::new(GreedyTicket::new()),
            cm: TaskAwareCm::default(),
        })
    }

    /// The shared substrate.
    pub fn substrate(&self) -> &Arc<TxSubstrate> {
        &self.substrate
    }

    /// The transactional heap (for non-transactional initialisation).
    pub fn heap(&self) -> &TxHeap {
        &self.substrate.heap
    }

    /// A [`DirectMem`] handle for non-transactional initialisation.
    pub fn direct(&self) -> DirectMem<'_> {
        DirectMem::new(&self.substrate.heap)
    }

    /// Snapshot of the global statistics counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.substrate.stats.snapshot()
    }

    /// Per-shard statistics snapshots: entry `i` aggregates the activity of
    /// the user-threads whose `ptid` is `i` modulo the shard count (worker
    /// threads attribute their task activity to the owning user-thread).
    pub fn stats_per_shard(&self) -> Vec<StatsSnapshot> {
        self.substrate.stats.shard_snapshots()
    }

    /// Resets the global statistics counters.
    pub fn reset_stats(&self) {
        self.substrate.stats.reset();
    }

    /// Registers a user-thread with the substrate's default speculative depth.
    pub fn register_uthread_default(self: &Arc<Self>) -> UThread {
        self.register_uthread(self.substrate.config.spec_depth)
    }

    /// Registers a user-thread with an explicit speculative depth
    /// (`SPECDEPTH`): the maximum number of simultaneously active tasks, and
    /// therefore also the number of worker threads spawned for it.
    ///
    /// # Panics
    ///
    /// Panics if `spec_depth` is zero.
    pub fn register_uthread(self: &Arc<Self>, spec_depth: usize) -> UThread {
        let ptid = self.ptids.allocate();
        let shared = Arc::new(UThreadShared::new(ptid, spec_depth));
        let mut senders = Vec::with_capacity(spec_depth);
        let mut workers = Vec::with_capacity(spec_depth);
        for lane in 0..spec_depth {
            let (tx, rx): (Sender<WorkItem>, Receiver<WorkItem>) = unbounded();
            let worker = Worker {
                substrate: Arc::clone(&self.substrate),
                uthread: Arc::clone(&shared),
                cm: self.cm,
                tickets: Arc::clone(&self.tickets),
                queue: rx,
            };
            let handle = std::thread::Builder::new()
                .name(format!("tlstm-u{ptid}-w{lane}"))
                .spawn(move || worker.run())
                .expect("failed to spawn TLSTM worker thread");
            senders.push(tx);
            workers.push(handle);
        }
        let (done_tx, done_rx) = unbounded();
        UThread {
            runtime: Arc::clone(self),
            shared,
            senders,
            workers,
            next_serial: Cell::new(1),
            done_tx,
            done_rx,
            // Speculation on a single core cannot overlap tasks on other
            // cores, so a rollback storm there is pure livelock; on
            // multi-core hosts the fallback stays disarmed and speculative
            // execution is never degraded.
            storm_enabled: Cell::new(!txmem::pause::multi_core()),
            storm_streak: Cell::new(0),
            storm_cooldown: Cell::new(0),
            storm_cooldown_len: Cell::new(STORM_COOLDOWN_BATCHES),
            storm_fallbacks: Cell::new(0),
        }
    }
}

/// A TLSTM user-thread: the handle the application uses to submit
/// user-transactions, which the runtime decomposes onto `SPECDEPTH` worker
/// threads.
///
/// The handle is `Send` (it can be moved to the application thread that drives
/// it) but not `Sync`; each user-thread is driven by one application thread,
/// exactly as in the paper's model.
#[derive(Debug)]
pub struct UThread {
    runtime: Arc<TlstmRuntime>,
    shared: Arc<UThreadShared>,
    senders: Vec<Sender<WorkItem>>,
    workers: Vec<JoinHandle<()>>,
    next_serial: Cell<u64>,
    done_tx: Sender<u64>,
    done_rx: Receiver<u64>,
    // Abort-storm fallback state. Plain `Cell`s: a `UThread` is `Send` but
    // not `Sync`, so these are only ever touched by the driving thread.
    storm_enabled: Cell<bool>,
    storm_streak: Cell<u32>,
    storm_cooldown: Cell<u32>,
    storm_cooldown_len: Cell<u32>,
    storm_fallbacks: Cell<u64>,
}

impl UThread {
    /// The user-thread identifier.
    pub fn ptid(&self) -> u32 {
        self.shared.ptid()
    }

    /// The speculative depth of this user-thread.
    pub fn spec_depth(&self) -> usize {
        self.shared.spec_depth()
    }

    /// The runtime this user-thread belongs to.
    pub fn runtime(&self) -> &Arc<TlstmRuntime> {
        &self.runtime
    }

    /// Whether the abort-storm sequential fallback is armed. Defaults to
    /// armed only on single-core hosts (where a rollback storm is livelock
    /// by construction); on multi-core hosts the fallback is unreachable.
    pub fn storm_fallback_enabled(&self) -> bool {
        self.storm_enabled.get()
    }

    /// Overrides the abort-storm fallback arming (tests and experiments).
    /// Disarming also clears any in-progress streak or cooldown, so the next
    /// batch runs fully speculative.
    pub fn set_storm_fallback(&self, enabled: bool) {
        self.storm_enabled.set(enabled);
        if !enabled {
            self.storm_streak.set(0);
            self.storm_cooldown.set(0);
            self.storm_cooldown_len.set(STORM_COOLDOWN_BATCHES);
        }
    }

    /// `true` while the user-thread is inside a sequential-fallback cooldown
    /// window (the next [`execute`](UThread::execute) call merges tasks).
    pub fn storm_active(&self) -> bool {
        self.storm_cooldown.get() > 0
    }

    /// Number of batches this user-thread has executed sequentially because
    /// the abort-storm detector tripped.
    pub fn storm_fallbacks(&self) -> u64 {
        self.storm_fallbacks.get()
    }

    /// Submits a batch of user-transactions for (speculative, pipelined)
    /// execution and blocks until every one of them has committed.
    ///
    /// Transactions in the batch are executed in program order, but their
    /// tasks — including tasks of *future* transactions — run speculatively in
    /// parallel up to the speculative depth.
    ///
    /// On single-core hosts an abort-storm detector watches for consecutive
    /// batches that suffer whole-transaction rollbacks; after
    /// `STORM_STREAK_THRESHOLD` stormy batches in a row the next
    /// `STORM_COOLDOWN_BATCHES` batches run with each transaction's tasks
    /// merged into one (sequential plan execution, identical semantics),
    /// which breaks the intra-batch conflict livelock. Speculation is
    /// re-probed when the cooldown expires.
    ///
    /// # Panics
    ///
    /// Panics if any transaction has more tasks than the speculative depth
    /// (such a transaction could never commit).
    pub fn execute(&self, txns: Vec<TxnSpec>) -> Vec<TxnOutcome> {
        if self.storm_enabled.get() && self.storm_cooldown.get() > 0 {
            self.storm_cooldown.set(self.storm_cooldown.get() - 1);
            self.storm_fallbacks.set(self.storm_fallbacks.get() + 1);
            return self.execute_sequential(txns);
        }
        let stats = self.runtime.substrate.stats.shard(self.shared.ptid());
        let mut pending: Vec<Arc<TxnShared>> = Vec::with_capacity(txns.len());
        // When the storm detector is armed, keep each transaction's bodies
        // (cheap `Arc` clones): if the detector abandons the batch mid-flight
        // the transactions are re-run sequentially from these.
        let mut retained: Vec<Vec<TaskFn>> = Vec::new();
        if self.storm_enabled.get() {
            retained.reserve(txns.len());
        }
        let mut total_tasks = 0usize;
        for spec in txns {
            stats.bump(&stats.tx_starts);
            txobs::tx_begin();
            if self.storm_enabled.get() {
                retained.push(spec.tasks.clone());
            }
            let n = spec.tasks.len() as u64;
            let start_serial = self.next_serial.get();
            let commit_serial = start_serial + n - 1;
            self.next_serial.set(commit_serial + 1);
            let txn = Arc::new(TxnShared::new(
                Arc::clone(&self.shared),
                start_serial,
                commit_serial,
            ));
            for (offset, body) in spec.tasks.into_iter().enumerate() {
                let serial = start_serial + offset as u64;
                let item = WorkItem {
                    serial,
                    try_commit: serial == commit_serial,
                    txn: Arc::clone(&txn),
                    body,
                    done: self.done_tx.clone(),
                };
                let lane = (serial as usize) % self.senders.len();
                self.senders[lane]
                    .send(item)
                    .expect("TLSTM worker thread terminated unexpectedly");
                total_tasks += 1;
            }
            pending.push(txn);
        }
        let mut received = 0usize;
        let mut idle_spins = 0u32;
        let batch_started = std::time::Instant::now();
        let mut storm_tripped = false;
        // Spinning before the blocking receive only pays off when the worker
        // threads can retire tasks on other cores in the meantime.
        let spin_budget = if txmem::pause::multi_core() {
            4_000u32
        } else {
            0
        };
        while received < total_tasks {
            // Spin briefly first: task retirement is usually imminent, and a
            // blocking receive would put an OS wake-up on every transaction's
            // critical path.
            match self.done_rx.try_recv() {
                Ok(_) => {
                    received += 1;
                    idle_spins = 0;
                    continue;
                }
                Err(crossbeam::channel::TryRecvError::Empty) => {}
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    panic!("TLSTM worker channels disconnected unexpectedly");
                }
            }
            idle_spins += 1;
            if idle_spins < spin_budget {
                if idle_spins % 256 == 255 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            }
            // A livelocked batch retires tasks rarely, so an armed detector
            // must wake often enough to sample the in-flight transactions; a
            // healthy or already-tripped batch can sleep the full watchdog
            // interval.
            let slice = if self.storm_enabled.get() && !storm_tripped {
                std::time::Duration::from_millis(10)
            } else {
                std::time::Duration::from_millis(500)
            };
            match self.done_rx.recv_timeout(slice) {
                Ok(_) => {
                    received += 1;
                    idle_spins = 0;
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    // A panicking worker would otherwise turn into a silent
                    // hang: surface it as a loud failure instead.
                    if self.workers.iter().any(|w| w.is_finished()) {
                        panic!("a TLSTM worker thread terminated unexpectedly (task panicked?)");
                    }
                    if self.storm_enabled.get()
                        && !storm_tripped
                        && batch_storming(&pending, batch_started.elapsed())
                    {
                        // The batch is livelocking right now: abandon
                        // speculative execution of everything still in
                        // flight. The requested rollback dismantles the
                        // tasks' speculative state (releasing every held
                        // write lock), the workers then vacate their tasks,
                        // and once the lanes have drained the transactions
                        // are re-run sequentially below.
                        storm_tripped = true;
                        self.storm_streak.set(STORM_STREAK_THRESHOLD);
                        self.arm_storm_cooldown();
                        for txn in &pending {
                            if !txn.is_committed() {
                                txn.set_abandoned();
                                txn.request_abort();
                            }
                        }
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    panic!("TLSTM worker channels disconnected unexpectedly");
                }
            }
        }
        let outcomes: Vec<TxnOutcome> = if storm_tripped {
            self.finish_abandoned(pending, retained)
        } else {
            pending
                .into_iter()
                .map(|txn| {
                    debug_assert!(txn.is_committed());
                    TxnOutcome {
                        start_serial: txn.start_serial(),
                        commit_serial: txn.commit_serial(),
                        rollbacks: txn.rollbacks(),
                    }
                })
                .collect()
        };
        if self.storm_enabled.get() {
            // A "stormy" batch is one that needed at least one whole-batch
            // re-execution. Streaks only accumulate over speculative batches
            // (cooldown batches neither extend nor reset them), and tripping
            // does not clear the streak: if the re-probe after a cooldown
            // storms again, the fallback re-engages after a single batch.
            if outcomes.iter().any(|o| o.rollbacks > 0) {
                let streak = self.storm_streak.get().saturating_add(1);
                self.storm_streak.set(streak);
                if streak >= STORM_STREAK_THRESHOLD && self.storm_cooldown.get() == 0 {
                    self.arm_storm_cooldown();
                }
            } else {
                self.storm_streak.set(0);
            }
        }
        outcomes
    }

    /// Completes a batch whose speculative execution the storm detector
    /// abandoned: transactions that still managed to commit keep their
    /// outcome, and the abandoned ones (fully rolled back, their worker
    /// lanes vacated) are re-run sequentially on this thread in program
    /// order.
    fn finish_abandoned(
        &self,
        pending: Vec<Arc<TxnShared>>,
        retained: Vec<Vec<TaskFn>>,
    ) -> Vec<TxnOutcome> {
        debug_assert_eq!(pending.len(), retained.len());
        let mut bufs = crate::task::TaskBufs::default();
        let mut outcomes = Vec::with_capacity(pending.len());
        for (txn, bodies) in pending.into_iter().zip(retained) {
            if txn.is_committed() {
                // A batch-mate's rollback may have clamped the completion
                // counter below this transaction's (already committed)
                // serials; restore it so later replacements and the next
                // batch observe their predecessors as complete.
                self.shared.mark_completed(txn.commit_serial(), false);
                outcomes.push(TxnOutcome {
                    start_serial: txn.start_serial(),
                    commit_serial: txn.commit_serial(),
                    rollbacks: txn.rollbacks(),
                });
                continue;
            }
            debug_assert!(txn.abandoned());
            // The transaction's own serials were rolled back and its tasks
            // vacated; run its replacement as a single merged task at the
            // original commit serial, skipping the vacated intermediate
            // serials so the commit-order invariant (`completed_task >=
            // serial - 1`) holds for the replacement and for later
            // transactions of the batch.
            let commit_serial = txn.commit_serial();
            self.shared.mark_completed(commit_serial - 1, false);
            let merged = merge_sequential(TxnSpec { tasks: bodies });
            let replacement = Arc::new(TxnShared::new(
                Arc::clone(&self.shared),
                commit_serial,
                commit_serial,
            ));
            crate::worker::run_task_inline(
                &self.runtime.substrate,
                self.runtime.cm,
                &self.runtime.tickets,
                &self.shared,
                &replacement,
                &merged.tasks[0],
                &mut bufs,
            );
            debug_assert!(replacement.is_committed());
            outcomes.push(TxnOutcome {
                start_serial: txn.start_serial(),
                commit_serial,
                rollbacks: txn.rollbacks().saturating_add(replacement.rollbacks()),
            });
        }
        outcomes
    }

    /// Arms (or re-arms) a sequential-fallback cooldown window. Each re-trip
    /// lengthens the next window geometrically: a workload that keeps
    /// storming every time speculation is re-probed converges to long
    /// sequential stretches with rare, cheap probes, instead of paying a
    /// collapse-and-drain cycle every [`STORM_COOLDOWN_BATCHES`] batches.
    fn arm_storm_cooldown(&self) {
        let len = self.storm_cooldown_len.get();
        self.storm_cooldown.set(len);
        self.storm_cooldown_len
            .set(len.saturating_mul(8).min(STORM_COOLDOWN_MAX));
        self.storm_fallbacks.set(self.storm_fallbacks.get() + 1);
    }

    /// Executes a cooldown batch sequentially: every transaction is merged
    /// into a single task and run start-to-commit on the calling thread.
    ///
    /// Semantics are identical to speculative execution (tasks already
    /// observe earlier tasks' writes, aborts re-execute the whole
    /// transaction), but there are no cross-thread task handoffs — on the
    /// saturated single-core hosts where the abort-storm fallback engages,
    /// those handoffs cost more than the transactions themselves.
    fn execute_sequential(&self, txns: Vec<TxnSpec>) -> Vec<TxnOutcome> {
        let stats = self.runtime.substrate.stats.shard(self.shared.ptid());
        let mut bufs = crate::task::TaskBufs::default();
        let mut outcomes = Vec::with_capacity(txns.len());
        for spec in txns {
            let spec = merge_sequential(spec);
            stats.bump(&stats.tx_starts);
            txobs::tx_begin();
            let start_serial = self.next_serial.get();
            self.next_serial.set(start_serial + 1);
            let txn = Arc::new(TxnShared::new(
                Arc::clone(&self.shared),
                start_serial,
                start_serial,
            ));
            crate::worker::run_task_inline(
                &self.runtime.substrate,
                self.runtime.cm,
                &self.runtime.tickets,
                &self.shared,
                &txn,
                &spec.tasks[0],
                &mut bufs,
            );
            debug_assert!(txn.is_committed());
            outcomes.push(TxnOutcome {
                start_serial,
                commit_serial: start_serial,
                rollbacks: txn.rollbacks(),
            });
        }
        outcomes
    }

    /// Runs a single user-transaction decomposed into `tasks` and blocks until
    /// it commits.
    pub fn run_transaction(&self, tasks: Vec<TaskFn>) -> TxnOutcome {
        self.execute(vec![TxnSpec::new(tasks)])
            .pop()
            .expect("execute returns one outcome per submitted transaction")
    }

    /// Runs a single-task user-transaction (a plain STM transaction) and
    /// blocks until it commits.
    pub fn atomic<F>(&self, body: F) -> TxnOutcome
    where
        F: Fn(&mut TaskCtx<'_>) -> Result<(), Abort> + Send + Sync + 'static,
    {
        self.execute(vec![TxnSpec::single(body)])
            .pop()
            .expect("execute returns one outcome per submitted transaction")
    }
}

impl Drop for UThread {
    fn drop(&mut self) {
        // Closing the queues makes the workers' `recv` fail and terminates
        // their loops.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::TxMem;

    fn runtime() -> Arc<TlstmRuntime> {
        TlstmRuntime::new(TxConfig::small())
    }

    #[test]
    fn single_task_transaction_commits() {
        let rt = runtime();
        let counter = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        let outcome = u.atomic(move |ctx| {
            let v = ctx.read(counter)?;
            ctx.write(counter, v + 1)?;
            Ok(())
        });
        assert_eq!(rt.heap().load_committed(counter), 1);
        assert_eq!(outcome.start_serial, 1);
        assert_eq!(outcome.commit_serial, 1);
        let stats = rt.stats();
        assert_eq!(stats.tx_commits, 1);
        assert_eq!(stats.task_commits, 1);
    }

    #[test]
    fn multi_task_transaction_sees_past_task_writes() {
        let rt = runtime();
        let a = rt.heap().alloc(2).unwrap();
        let u = rt.register_uthread(3);
        // Task 1 writes 5 to word0; task 2 must read that speculative value
        // and double it into word1; task 3 commits.
        let t1 = task(move |ctx: &mut TaskCtx<'_>| ctx.write(a, 5));
        let t2 = task(move |ctx: &mut TaskCtx<'_>| {
            let v = ctx.read(a)?;
            ctx.write(a.offset(1), v * 2)
        });
        let t3 = task(move |ctx: &mut TaskCtx<'_>| {
            let v = ctx.read(a.offset(1))?;
            ctx.write(a.offset(1), v + 1)
        });
        u.run_transaction(vec![t1, t2, t3]);
        assert_eq!(rt.heap().load_committed(a), 5);
        assert_eq!(rt.heap().load_committed(a.offset(1)), 11);
        let stats = rt.stats();
        assert_eq!(stats.tx_commits, 1);
        assert_eq!(stats.task_commits, 3);
    }

    #[test]
    fn sequential_semantics_across_many_tasks() {
        // Each task increments the same counter; the result must equal the
        // task count even though tasks run speculatively out of order.
        let rt = runtime();
        let counter = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(4);
        let bump = task(move |ctx: &mut TaskCtx<'_>| {
            let v = ctx.read(counter)?;
            ctx.write(counter, v + 1)
        });
        let txns: Vec<TxnSpec> = (0..8)
            .map(|_| TxnSpec::new(vec![bump.clone(), bump.clone()]))
            .collect();
        let outcomes = u.execute(txns);
        assert_eq!(outcomes.len(), 8);
        assert_eq!(rt.heap().load_committed(counter), 16);
        assert_eq!(rt.stats().tx_commits, 8);
    }

    #[test]
    fn pipelined_transactions_commit_in_order() {
        let rt = runtime();
        let log = rt.heap().alloc(8).unwrap();
        let cursor = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        // Each transaction appends its id to a log; program order must be
        // preserved even with speculative execution of future transactions.
        let txns: Vec<TxnSpec> = (0..6u64)
            .map(|id| {
                TxnSpec::single(move |ctx: &mut TaskCtx<'_>| {
                    let pos = ctx.read(cursor)?;
                    ctx.write(log.offset(pos), id + 100)?;
                    ctx.write(cursor, pos + 1)
                })
            })
            .collect();
        u.execute(txns);
        assert_eq!(rt.heap().load_committed(cursor), 6);
        for i in 0..6 {
            assert_eq!(rt.heap().load_committed(log.offset(i)), 100 + i);
        }
    }

    #[test]
    fn read_only_transactions_return_consistent_values() {
        let rt = runtime();
        let a = rt.heap().alloc(1).unwrap();
        rt.heap().store_committed(a, 77);
        let u = rt.register_uthread(3);
        let seen = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let t = task(move |ctx: &mut TaskCtx<'_>| {
            let v = ctx.read(a)?;
            seen2.store(v, std::sync::atomic::Ordering::Relaxed);
            Ok(())
        });
        u.run_transaction(vec![t.clone(), t.clone(), t]);
        assert_eq!(seen.load(std::sync::atomic::Ordering::Relaxed), 77);
        assert_eq!(rt.stats().tx_commits, 1);
    }

    #[test]
    fn intra_thread_waw_is_resolved_in_program_order() {
        // Two tasks of the same transaction write the same word; the later
        // task's value must win regardless of speculative scheduling.
        let rt = runtime();
        let a = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        for round in 0..10u64 {
            let first = task(move |ctx: &mut TaskCtx<'_>| ctx.write(a, round * 10 + 1));
            let second = task(move |ctx: &mut TaskCtx<'_>| ctx.write(a, round * 10 + 2));
            u.run_transaction(vec![first, second]);
            assert_eq!(rt.heap().load_committed(a), round * 10 + 2);
        }
    }

    #[test]
    fn inter_thread_conflicts_preserve_atomicity() {
        // Two TLSTM user-threads hammer the same counter with 2-task
        // transactions; the final count must be exact.
        let rt = runtime();
        let counter = rt.heap().alloc(1).unwrap();
        let per_thread = 100u64;
        let mut drivers = Vec::new();
        for _ in 0..2 {
            let rt = Arc::clone(&rt);
            drivers.push(std::thread::spawn(move || {
                let u = rt.register_uthread(2);
                let bump = task(move |ctx: &mut TaskCtx<'_>| {
                    let v = ctx.read(counter)?;
                    ctx.write(counter, v + 1)
                });
                for _ in 0..per_thread {
                    u.run_transaction(vec![bump.clone(), bump.clone()]);
                }
            }));
        }
        for d in drivers {
            d.join().unwrap();
        }
        assert_eq!(rt.heap().load_committed(counter), 2 * 2 * per_thread);
    }

    #[test]
    fn user_retry_aborts_and_reexecutes_the_transaction() {
        let rt = runtime();
        let a = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        let attempts = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let attempts2 = Arc::clone(&attempts);
        let t = task(move |ctx: &mut TaskCtx<'_>| {
            let n = attempts2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            ctx.write(a, n)?;
            if n == 0 {
                return Err(Abort::user_retry());
            }
            Ok(())
        });
        u.run_transaction(vec![t]);
        assert!(attempts.load(std::sync::atomic::Ordering::Relaxed) >= 2);
        assert!(rt.heap().load_committed(a) >= 1);
    }

    #[test]
    fn oversized_transaction_panics() {
        let rt = runtime();
        let u = rt.register_uthread(2);
        let t = task(|_ctx: &mut TaskCtx<'_>| Ok(()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            u.run_transaction(vec![t.clone(), t.clone(), t.clone()]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn uthread_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<UThread>();
    }

    /// One batch whose only transaction suffers exactly one
    /// whole-transaction rollback: the single (commit) task aborts with the
    /// transaction-abort signal on its first execution, which makes it drive
    /// the rollback protocol itself, then succeeds on the retry.
    fn run_stormy_batch(u: &UThread, counter: txmem::WordAddr) -> TxnOutcome {
        let aborted = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let outcome = u
            .execute(vec![TxnSpec::single(move |ctx: &mut TaskCtx<'_>| {
                if !aborted.swap(true, std::sync::atomic::Ordering::Relaxed) {
                    return Err(Abort::new(txmem::AbortReason::TransactionAbortSignal));
                }
                let v = ctx.read(counter)?;
                ctx.write(counter, v + 1)
            })])
            .pop()
            .unwrap();
        assert!(outcome.rollbacks >= 1, "batch must have been stormy");
        outcome
    }

    #[test]
    fn abort_storm_trips_the_sequential_fallback() {
        let rt = runtime();
        let counter = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        u.set_storm_fallback(true);
        assert!(!u.storm_active());
        for _ in 0..STORM_STREAK_THRESHOLD {
            assert!(!u.storm_active());
            run_stormy_batch(&u, counter);
        }
        assert!(
            u.storm_active(),
            "K consecutive stormy batches must trip it"
        );
        // Fallback batches run with merged tasks but identical semantics.
        let bump = task(move |ctx: &mut TaskCtx<'_>| {
            let v = ctx.read(counter)?;
            ctx.write(counter, v + 1)
        });
        let txns: Vec<TxnSpec> = (0..4)
            .map(|_| TxnSpec::new(vec![bump.clone(), bump.clone()]))
            .collect();
        let outcomes = u.execute(txns);
        assert_eq!(outcomes.len(), 4);
        assert!(u.storm_fallbacks() >= 1);
        assert_eq!(
            rt.heap().load_committed(counter),
            STORM_STREAK_THRESHOLD as u64 + 8
        );
        // The cooldown expires after STORM_COOLDOWN_BATCHES batches and
        // speculation is re-probed.
        for _ in 0..STORM_COOLDOWN_BATCHES {
            let _ = u.execute(vec![TxnSpec::single(move |ctx: &mut TaskCtx<'_>| {
                let v = ctx.read(counter)?;
                ctx.write(counter, v + 1)
            })]);
            if !u.storm_active() {
                break;
            }
        }
        assert!(!u.storm_active(), "cooldown must expire");
    }

    #[test]
    fn interrupted_storms_do_not_trip_the_fallback() {
        let rt = runtime();
        let counter = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        u.set_storm_fallback(true);
        // Clean batches between stormy ones reset the streak.
        for _ in 0..3 {
            run_stormy_batch(&u, counter);
            run_stormy_batch(&u, counter);
            u.atomic(move |ctx| {
                let v = ctx.read(counter)?;
                ctx.write(counter, v + 1)
            });
            assert!(!u.storm_active());
        }
    }

    #[test]
    fn disarmed_detector_never_falls_back() {
        let rt = runtime();
        let counter = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        u.set_storm_fallback(false);
        assert!(!u.storm_fallback_enabled());
        for _ in 0..4 * STORM_STREAK_THRESHOLD {
            run_stormy_batch(&u, counter);
        }
        assert!(!u.storm_active());
        assert_eq!(u.storm_fallbacks(), 0);
    }

    #[test]
    fn merged_tasks_preserve_program_order_semantics() {
        // Force the fallback on and re-run the write-after-write pattern:
        // the later task's value must still win inside the merged task.
        let rt = runtime();
        let counter = rt.heap().alloc(1).unwrap();
        let a = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        u.set_storm_fallback(true);
        for _ in 0..STORM_STREAK_THRESHOLD {
            run_stormy_batch(&u, counter);
        }
        assert!(u.storm_active());
        let first = task(move |ctx: &mut TaskCtx<'_>| ctx.write(a, 1));
        let second = task(move |ctx: &mut TaskCtx<'_>| {
            let v = ctx.read(a)?;
            ctx.write(a, v + 41)
        });
        u.run_transaction(vec![first, second]);
        assert_eq!(rt.heap().load_committed(a), 42);
    }
}
