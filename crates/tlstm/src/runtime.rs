//! The TLSTM runtime and the user-thread handle.

use std::cell::Cell;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use swisstm::cm::GreedyTicket;
use txmem::{Abort, DirectMem, StatsSnapshot, ThreadIdAllocator, TxConfig, TxHeap, TxSubstrate};

use crate::cm::TaskAwareCm;
use crate::task::TaskCtx;
use crate::txn_state::TxnShared;
use crate::uthread_state::UThreadShared;
use crate::worker::{WorkItem, Worker};
use crate::TaskFn;

/// Wraps a closure into a [`TaskFn`] (convenience for building [`TxnSpec`]s).
pub fn task<F>(f: F) -> TaskFn
where
    F: Fn(&mut TaskCtx<'_>) -> Result<(), Abort> + Send + Sync + 'static,
{
    Arc::new(f)
}

/// Specification of one user-transaction: the ordered list of speculative
/// tasks it decomposes into.
///
/// The decomposition itself (how a transaction body is split into tasks) is
/// the caller's responsibility — the paper treats it as an orthogonal
/// compile-time/runtime concern — but the number of tasks must not exceed the
/// user-thread's speculative depth.
#[derive(Clone)]
pub struct TxnSpec {
    tasks: Vec<TaskFn>,
}

impl TxnSpec {
    /// Builds a user-transaction from its tasks, in program order.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn new(tasks: Vec<TaskFn>) -> Self {
        assert!(
            !tasks.is_empty(),
            "a user-transaction needs at least one task"
        );
        TxnSpec { tasks }
    }

    /// Builds a user-transaction consisting of a single task (i.e. a plain
    /// STM transaction).
    pub fn single<F>(f: F) -> Self
    where
        F: Fn(&mut TaskCtx<'_>) -> Result<(), Abort> + Send + Sync + 'static,
    {
        TxnSpec::new(vec![task(f)])
    }

    /// Number of tasks in the transaction.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the transaction has no tasks (never the case after `new`).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

impl std::fmt::Debug for TxnSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnSpec")
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

/// Outcome of one committed user-transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnOutcome {
    /// Serial of the transaction's first task.
    pub start_serial: u64,
    /// Serial of the transaction's last task (the commit-task).
    pub commit_serial: u64,
    /// Number of whole-transaction rollbacks suffered before committing.
    pub rollbacks: u32,
}

/// The TLSTM runtime: owns the shared substrate and registers user-threads.
#[derive(Debug)]
pub struct TlstmRuntime {
    substrate: Arc<TxSubstrate>,
    ptids: ThreadIdAllocator,
    tickets: Arc<GreedyTicket>,
    cm: TaskAwareCm,
}

impl TlstmRuntime {
    /// Creates a runtime with a fresh substrate built from `config`.
    pub fn new(config: TxConfig) -> Arc<Self> {
        Self::with_substrate(Arc::new(TxSubstrate::new(config)))
    }

    /// Creates a runtime over an existing substrate.
    pub fn with_substrate(substrate: Arc<TxSubstrate>) -> Arc<Self> {
        Arc::new(TlstmRuntime {
            substrate,
            ptids: ThreadIdAllocator::new(),
            tickets: Arc::new(GreedyTicket::new()),
            cm: TaskAwareCm::default(),
        })
    }

    /// The shared substrate.
    pub fn substrate(&self) -> &Arc<TxSubstrate> {
        &self.substrate
    }

    /// The transactional heap (for non-transactional initialisation).
    pub fn heap(&self) -> &TxHeap {
        &self.substrate.heap
    }

    /// A [`DirectMem`] handle for non-transactional initialisation.
    pub fn direct(&self) -> DirectMem<'_> {
        DirectMem::new(&self.substrate.heap)
    }

    /// Snapshot of the global statistics counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.substrate.stats.snapshot()
    }

    /// Per-shard statistics snapshots: entry `i` aggregates the activity of
    /// the user-threads whose `ptid` is `i` modulo the shard count (worker
    /// threads attribute their task activity to the owning user-thread).
    pub fn stats_per_shard(&self) -> Vec<StatsSnapshot> {
        self.substrate.stats.shard_snapshots()
    }

    /// Resets the global statistics counters.
    pub fn reset_stats(&self) {
        self.substrate.stats.reset();
    }

    /// Registers a user-thread with the substrate's default speculative depth.
    pub fn register_uthread_default(self: &Arc<Self>) -> UThread {
        self.register_uthread(self.substrate.config.spec_depth)
    }

    /// Registers a user-thread with an explicit speculative depth
    /// (`SPECDEPTH`): the maximum number of simultaneously active tasks, and
    /// therefore also the number of worker threads spawned for it.
    ///
    /// # Panics
    ///
    /// Panics if `spec_depth` is zero.
    pub fn register_uthread(self: &Arc<Self>, spec_depth: usize) -> UThread {
        let ptid = self.ptids.allocate();
        let shared = Arc::new(UThreadShared::new(ptid, spec_depth));
        let mut senders = Vec::with_capacity(spec_depth);
        let mut workers = Vec::with_capacity(spec_depth);
        for lane in 0..spec_depth {
            let (tx, rx): (Sender<WorkItem>, Receiver<WorkItem>) = unbounded();
            let worker = Worker {
                substrate: Arc::clone(&self.substrate),
                uthread: Arc::clone(&shared),
                cm: self.cm,
                tickets: Arc::clone(&self.tickets),
                queue: rx,
            };
            let handle = std::thread::Builder::new()
                .name(format!("tlstm-u{ptid}-w{lane}"))
                .spawn(move || worker.run())
                .expect("failed to spawn TLSTM worker thread");
            senders.push(tx);
            workers.push(handle);
        }
        let (done_tx, done_rx) = unbounded();
        UThread {
            runtime: Arc::clone(self),
            shared,
            senders,
            workers,
            next_serial: Cell::new(1),
            done_tx,
            done_rx,
        }
    }
}

/// A TLSTM user-thread: the handle the application uses to submit
/// user-transactions, which the runtime decomposes onto `SPECDEPTH` worker
/// threads.
///
/// The handle is `Send` (it can be moved to the application thread that drives
/// it) but not `Sync`; each user-thread is driven by one application thread,
/// exactly as in the paper's model.
#[derive(Debug)]
pub struct UThread {
    runtime: Arc<TlstmRuntime>,
    shared: Arc<UThreadShared>,
    senders: Vec<Sender<WorkItem>>,
    workers: Vec<JoinHandle<()>>,
    next_serial: Cell<u64>,
    done_tx: Sender<u64>,
    done_rx: Receiver<u64>,
}

impl UThread {
    /// The user-thread identifier.
    pub fn ptid(&self) -> u32 {
        self.shared.ptid()
    }

    /// The speculative depth of this user-thread.
    pub fn spec_depth(&self) -> usize {
        self.shared.spec_depth()
    }

    /// The runtime this user-thread belongs to.
    pub fn runtime(&self) -> &Arc<TlstmRuntime> {
        &self.runtime
    }

    /// Submits a batch of user-transactions for (speculative, pipelined)
    /// execution and blocks until every one of them has committed.
    ///
    /// Transactions in the batch are executed in program order, but their
    /// tasks — including tasks of *future* transactions — run speculatively in
    /// parallel up to the speculative depth.
    ///
    /// # Panics
    ///
    /// Panics if any transaction has more tasks than the speculative depth
    /// (such a transaction could never commit).
    pub fn execute(&self, txns: Vec<TxnSpec>) -> Vec<TxnOutcome> {
        let stats = self.runtime.substrate.stats.shard(self.shared.ptid());
        let mut pending: Vec<Arc<TxnShared>> = Vec::with_capacity(txns.len());
        let mut total_tasks = 0usize;
        for spec in txns {
            stats.bump(&stats.tx_starts);
            txobs::tx_begin();
            let n = spec.tasks.len() as u64;
            let start_serial = self.next_serial.get();
            let commit_serial = start_serial + n - 1;
            self.next_serial.set(commit_serial + 1);
            let txn = Arc::new(TxnShared::new(
                Arc::clone(&self.shared),
                start_serial,
                commit_serial,
            ));
            for (offset, body) in spec.tasks.into_iter().enumerate() {
                let serial = start_serial + offset as u64;
                let item = WorkItem {
                    serial,
                    try_commit: serial == commit_serial,
                    txn: Arc::clone(&txn),
                    body,
                    done: self.done_tx.clone(),
                };
                let lane = (serial as usize) % self.senders.len();
                self.senders[lane]
                    .send(item)
                    .expect("TLSTM worker thread terminated unexpectedly");
                total_tasks += 1;
            }
            pending.push(txn);
        }
        let mut received = 0usize;
        let mut idle_spins = 0u32;
        // Spinning before the blocking receive only pays off when the worker
        // threads can retire tasks on other cores in the meantime.
        let spin_budget = if txmem::pause::multi_core() {
            4_000u32
        } else {
            0
        };
        while received < total_tasks {
            // Spin briefly first: task retirement is usually imminent, and a
            // blocking receive would put an OS wake-up on every transaction's
            // critical path.
            match self.done_rx.try_recv() {
                Ok(_) => {
                    received += 1;
                    idle_spins = 0;
                    continue;
                }
                Err(crossbeam::channel::TryRecvError::Empty) => {}
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    panic!("TLSTM worker channels disconnected unexpectedly");
                }
            }
            idle_spins += 1;
            if idle_spins < spin_budget {
                if idle_spins % 256 == 255 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            }
            match self
                .done_rx
                .recv_timeout(std::time::Duration::from_millis(500))
            {
                Ok(_) => {
                    received += 1;
                    idle_spins = 0;
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    // A panicking worker would otherwise turn into a silent
                    // hang: surface it as a loud failure instead.
                    if self.workers.iter().any(|w| w.is_finished()) {
                        panic!("a TLSTM worker thread terminated unexpectedly (task panicked?)");
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    panic!("TLSTM worker channels disconnected unexpectedly");
                }
            }
        }
        pending
            .into_iter()
            .map(|txn| {
                debug_assert!(txn.is_committed());
                TxnOutcome {
                    start_serial: txn.start_serial(),
                    commit_serial: txn.commit_serial(),
                    rollbacks: txn.rollbacks(),
                }
            })
            .collect()
    }

    /// Runs a single user-transaction decomposed into `tasks` and blocks until
    /// it commits.
    pub fn run_transaction(&self, tasks: Vec<TaskFn>) -> TxnOutcome {
        self.execute(vec![TxnSpec::new(tasks)])
            .pop()
            .expect("execute returns one outcome per submitted transaction")
    }

    /// Runs a single-task user-transaction (a plain STM transaction) and
    /// blocks until it commits.
    pub fn atomic<F>(&self, body: F) -> TxnOutcome
    where
        F: Fn(&mut TaskCtx<'_>) -> Result<(), Abort> + Send + Sync + 'static,
    {
        self.execute(vec![TxnSpec::single(body)])
            .pop()
            .expect("execute returns one outcome per submitted transaction")
    }
}

impl Drop for UThread {
    fn drop(&mut self) {
        // Closing the queues makes the workers' `recv` fail and terminates
        // their loops.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::TxMem;

    fn runtime() -> Arc<TlstmRuntime> {
        TlstmRuntime::new(TxConfig::small())
    }

    #[test]
    fn single_task_transaction_commits() {
        let rt = runtime();
        let counter = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        let outcome = u.atomic(move |ctx| {
            let v = ctx.read(counter)?;
            ctx.write(counter, v + 1)?;
            Ok(())
        });
        assert_eq!(rt.heap().load_committed(counter), 1);
        assert_eq!(outcome.start_serial, 1);
        assert_eq!(outcome.commit_serial, 1);
        let stats = rt.stats();
        assert_eq!(stats.tx_commits, 1);
        assert_eq!(stats.task_commits, 1);
    }

    #[test]
    fn multi_task_transaction_sees_past_task_writes() {
        let rt = runtime();
        let a = rt.heap().alloc(2).unwrap();
        let u = rt.register_uthread(3);
        // Task 1 writes 5 to word0; task 2 must read that speculative value
        // and double it into word1; task 3 commits.
        let t1 = task(move |ctx: &mut TaskCtx<'_>| ctx.write(a, 5));
        let t2 = task(move |ctx: &mut TaskCtx<'_>| {
            let v = ctx.read(a)?;
            ctx.write(a.offset(1), v * 2)
        });
        let t3 = task(move |ctx: &mut TaskCtx<'_>| {
            let v = ctx.read(a.offset(1))?;
            ctx.write(a.offset(1), v + 1)
        });
        u.run_transaction(vec![t1, t2, t3]);
        assert_eq!(rt.heap().load_committed(a), 5);
        assert_eq!(rt.heap().load_committed(a.offset(1)), 11);
        let stats = rt.stats();
        assert_eq!(stats.tx_commits, 1);
        assert_eq!(stats.task_commits, 3);
    }

    #[test]
    fn sequential_semantics_across_many_tasks() {
        // Each task increments the same counter; the result must equal the
        // task count even though tasks run speculatively out of order.
        let rt = runtime();
        let counter = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(4);
        let bump = task(move |ctx: &mut TaskCtx<'_>| {
            let v = ctx.read(counter)?;
            ctx.write(counter, v + 1)
        });
        let txns: Vec<TxnSpec> = (0..8)
            .map(|_| TxnSpec::new(vec![bump.clone(), bump.clone()]))
            .collect();
        let outcomes = u.execute(txns);
        assert_eq!(outcomes.len(), 8);
        assert_eq!(rt.heap().load_committed(counter), 16);
        assert_eq!(rt.stats().tx_commits, 8);
    }

    #[test]
    fn pipelined_transactions_commit_in_order() {
        let rt = runtime();
        let log = rt.heap().alloc(8).unwrap();
        let cursor = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        // Each transaction appends its id to a log; program order must be
        // preserved even with speculative execution of future transactions.
        let txns: Vec<TxnSpec> = (0..6u64)
            .map(|id| {
                TxnSpec::single(move |ctx: &mut TaskCtx<'_>| {
                    let pos = ctx.read(cursor)?;
                    ctx.write(log.offset(pos), id + 100)?;
                    ctx.write(cursor, pos + 1)
                })
            })
            .collect();
        u.execute(txns);
        assert_eq!(rt.heap().load_committed(cursor), 6);
        for i in 0..6 {
            assert_eq!(rt.heap().load_committed(log.offset(i)), 100 + i);
        }
    }

    #[test]
    fn read_only_transactions_return_consistent_values() {
        let rt = runtime();
        let a = rt.heap().alloc(1).unwrap();
        rt.heap().store_committed(a, 77);
        let u = rt.register_uthread(3);
        let seen = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let t = task(move |ctx: &mut TaskCtx<'_>| {
            let v = ctx.read(a)?;
            seen2.store(v, std::sync::atomic::Ordering::Relaxed);
            Ok(())
        });
        u.run_transaction(vec![t.clone(), t.clone(), t]);
        assert_eq!(seen.load(std::sync::atomic::Ordering::Relaxed), 77);
        assert_eq!(rt.stats().tx_commits, 1);
    }

    #[test]
    fn intra_thread_waw_is_resolved_in_program_order() {
        // Two tasks of the same transaction write the same word; the later
        // task's value must win regardless of speculative scheduling.
        let rt = runtime();
        let a = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        for round in 0..10u64 {
            let first = task(move |ctx: &mut TaskCtx<'_>| ctx.write(a, round * 10 + 1));
            let second = task(move |ctx: &mut TaskCtx<'_>| ctx.write(a, round * 10 + 2));
            u.run_transaction(vec![first, second]);
            assert_eq!(rt.heap().load_committed(a), round * 10 + 2);
        }
    }

    #[test]
    fn inter_thread_conflicts_preserve_atomicity() {
        // Two TLSTM user-threads hammer the same counter with 2-task
        // transactions; the final count must be exact.
        let rt = runtime();
        let counter = rt.heap().alloc(1).unwrap();
        let per_thread = 100u64;
        let mut drivers = Vec::new();
        for _ in 0..2 {
            let rt = Arc::clone(&rt);
            drivers.push(std::thread::spawn(move || {
                let u = rt.register_uthread(2);
                let bump = task(move |ctx: &mut TaskCtx<'_>| {
                    let v = ctx.read(counter)?;
                    ctx.write(counter, v + 1)
                });
                for _ in 0..per_thread {
                    u.run_transaction(vec![bump.clone(), bump.clone()]);
                }
            }));
        }
        for d in drivers {
            d.join().unwrap();
        }
        assert_eq!(rt.heap().load_committed(counter), 2 * 2 * per_thread);
    }

    #[test]
    fn user_retry_aborts_and_reexecutes_the_transaction() {
        let rt = runtime();
        let a = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        let attempts = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let attempts2 = Arc::clone(&attempts);
        let t = task(move |ctx: &mut TaskCtx<'_>| {
            let n = attempts2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            ctx.write(a, n)?;
            if n == 0 {
                return Err(Abort::user_retry());
            }
            Ok(())
        });
        u.run_transaction(vec![t]);
        assert!(attempts.load(std::sync::atomic::Ordering::Relaxed) >= 2);
        assert!(rt.heap().load_committed(a) >= 1);
    }

    #[test]
    fn oversized_transaction_panics() {
        let rt = runtime();
        let u = rt.register_uthread(2);
        let t = task(|_ctx: &mut TaskCtx<'_>| Ok(()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            u.run_transaction(vec![t.clone(), t.clone(), t.clone()]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn uthread_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<UThread>();
    }
}
