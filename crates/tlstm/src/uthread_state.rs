//! Shared per-user-thread state.
//!
//! Every task running on behalf of a user-thread shares one
//! [`UThreadShared`]: the `completed-task` / `completed-writer` counters of
//! the paper, the `owners[SPECDEPTH]` slot array used to signal individual
//! tasks, and a condition variable that waiters use instead of burning CPU.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::txn_state::TaskLogs;

/// How long a waiter sleeps on the progress condition variable before
/// re-checking its predicate. A timeout bounds the damage of any missed
/// notification.
pub(crate) const WAIT_SLICE: Duration = Duration::from_micros(200);

/// One entry of the `owners[SPECDEPTH]` array: the task currently occupying
/// the slot and its individual abort flag (`aborted-internally`).
#[derive(Debug, Default)]
pub struct TaskSlot {
    /// Serial number of the task currently installed in this slot
    /// (0 = slot unused so far).
    serial: AtomicU64,
    /// `aborted-internally`: set when another task of the same user-thread
    /// decides this task must roll back individually (intra-thread WAW).
    aborted_internally: AtomicBool,
}

impl TaskSlot {
    /// Installs task `serial` in this slot, clearing any stale abort flag.
    pub fn install(&self, serial: u64) {
        self.serial.store(serial, Ordering::Release);
        self.aborted_internally.store(false, Ordering::Release);
    }

    /// Clears the abort flag (used when the installed task restarts).
    pub fn clear_abort(&self) {
        self.aborted_internally.store(false, Ordering::Release);
    }

    /// Signals the task `target_serial` to abort, but only if it still
    /// occupies this slot. Returns `true` if the signal was delivered.
    pub fn signal_abort(&self, target_serial: u64) -> bool {
        if self.serial.load(Ordering::Acquire) == target_serial {
            self.aborted_internally.store(true, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// `true` if task `serial` currently occupies the slot and has been asked
    /// to abort.
    pub fn is_aborted(&self, serial: u64) -> bool {
        self.serial.load(Ordering::Acquire) == serial
            && self.aborted_internally.load(Ordering::Acquire)
    }
}

/// State shared by every task of one user-thread.
#[derive(Debug)]
pub struct UThreadShared {
    /// Program-thread identifier (`tid` / `ptid` in the paper).
    ptid: u32,
    /// Maximum number of simultaneously active tasks (`SPECDEPTH`).
    spec_depth: usize,
    /// Serial of the last completed task (0 = none yet). `completed-task`.
    completed_task: AtomicU64,
    /// Serial of the last completed *writer* task. `completed-writer`.
    completed_writer: AtomicU64,
    /// Monotonic counter bumped every time `completed_writer` changes *or* a
    /// user-transaction rolls back. Tasks snapshot it as their `last-writer`
    /// and re-run intra-thread validation whenever it has advanced; unlike the
    /// raw `completed-writer` value it never repeats after a rollback, so a
    /// needed validation can never be skipped.
    writer_events: AtomicU64,
    /// `owners[SPECDEPTH]`.
    owners: Box<[TaskSlot]>,
    /// Progress lock + condition variable: notified whenever any of the
    /// counters above change or a transaction commits / aborts.
    progress_lock: Mutex<()>,
    progress_cv: Condvar,
    /// Pool of recycled [`TaskLogs`] buffers: tasks publish their logs into
    /// pooled storage and the commit-task (or rollback) returns the consumed
    /// buffers, so steady-state log publication allocates nothing.
    log_pool: Mutex<Vec<TaskLogs>>,
}

impl UThreadShared {
    /// Creates the shared state for a user-thread with the given speculative
    /// depth.
    ///
    /// # Panics
    ///
    /// Panics if `spec_depth` is zero.
    pub fn new(ptid: u32, spec_depth: usize) -> Self {
        assert!(spec_depth >= 1, "spec_depth must be at least 1");
        let mut owners = Vec::with_capacity(spec_depth);
        owners.resize_with(spec_depth, TaskSlot::default);
        UThreadShared {
            ptid,
            spec_depth,
            completed_task: AtomicU64::new(0),
            completed_writer: AtomicU64::new(0),
            writer_events: AtomicU64::new(0),
            owners: owners.into_boxed_slice(),
            progress_lock: Mutex::new(()),
            progress_cv: Condvar::new(),
            log_pool: Mutex::new(Vec::new()),
        }
    }

    /// The user-thread identifier.
    pub fn ptid(&self) -> u32 {
        self.ptid
    }

    /// The speculative depth (`SPECDEPTH`).
    pub fn spec_depth(&self) -> usize {
        self.spec_depth
    }

    /// The `owners[]` slot a task with this serial occupies.
    pub fn slot(&self, serial: u64) -> &TaskSlot {
        &self.owners[(serial as usize) % self.spec_depth]
    }

    /// Serial of the last completed task.
    pub fn completed_task(&self) -> u64 {
        self.completed_task.load(Ordering::Acquire)
    }

    /// Serial of the last completed writer task.
    pub fn completed_writer(&self) -> u64 {
        self.completed_writer.load(Ordering::Acquire)
    }

    /// Current writer-event counter (see the field documentation).
    pub fn writer_events(&self) -> u64 {
        self.writer_events.load(Ordering::Acquire)
    }

    /// Marks task `serial` as completed; `wrote` indicates whether it is a
    /// writer task.
    pub fn mark_completed(&self, serial: u64, wrote: bool) {
        if wrote {
            self.completed_writer.store(serial, Ordering::Release);
            self.writer_events.fetch_add(1, Ordering::AcqRel);
        }
        self.completed_task.store(serial, Ordering::Release);
        self.notify();
    }

    /// Resets the counters after a user-transaction rollback: the transaction
    /// starting at `start_serial` un-completes all of its tasks.
    pub fn reset_after_rollback(&self, start_serial: u64) {
        let floor = start_serial.saturating_sub(1);
        // Clamp rather than overwrite: the counters can never exceed the
        // rolled-back transaction's serials at this point, but be defensive.
        let _ = self.completed_task.fetch_min(floor, Ordering::AcqRel);
        let _ = self.completed_writer.fetch_min(floor, Ordering::AcqRel);
        self.writer_events.fetch_add(1, Ordering::AcqRel);
        self.notify();
    }

    /// Wakes every task waiting on this user-thread's progress.
    pub fn notify(&self) {
        let _guard = self.progress_lock.lock();
        self.progress_cv.notify_all();
    }

    /// Blocks until `predicate` returns `true`.
    ///
    /// The events tasks wait for (a past task completing, a transaction
    /// committing, a rollback epoch advancing) usually resolve within a few
    /// microseconds, so the wait first spins, then yields, and only then
    /// parks on the condition variable (with a timeout that bounds the effect
    /// of a missed wake-up).
    pub fn wait_until(&self, mut predicate: impl FnMut() -> bool) {
        // Spin phase (pointless on a single-core host, where spinning starves
        // the very thread being waited on).
        if txmem::pause::multi_core() {
            for _ in 0..2_000 {
                if predicate() {
                    return;
                }
                std::hint::spin_loop();
            }
        }
        // Yield phase.
        for _ in 0..64 {
            if predicate() {
                return;
            }
            std::thread::yield_now();
        }
        // Park phase.
        let mut guard = self.progress_lock.lock();
        loop {
            if predicate() {
                return;
            }
            self.progress_cv.wait_for(&mut guard, WAIT_SLICE);
        }
    }

    /// Takes a recycled [`TaskLogs`] (empty, capacity retained) from the
    /// pool, or a fresh one if the pool is dry.
    pub(crate) fn take_pooled_logs(&self) -> TaskLogs {
        self.log_pool.lock().pop().unwrap_or_default()
    }

    /// Returns a consumed [`TaskLogs`] to the pool (bounded by a small
    /// multiple of the speculative depth).
    pub(crate) fn recycle_logs(&self, mut logs: TaskLogs) {
        let mut pool = self.log_pool.lock();
        if pool.len() < self.spec_depth * 4 {
            logs.clear();
            pool.push(logs);
        }
    }

    /// Backs off briefly inside polling loops that must also observe
    /// non-counter state (such as lock chains): spins, then yields, without
    /// parking — the caller re-checks its own condition after every call.
    pub fn wait_slice(&self) {
        if txmem::pause::multi_core() {
            for _ in 0..128 {
                std::hint::spin_loop();
            }
        }
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn slots_map_serials_modulo_depth() {
        let u = UThreadShared::new(0, 3);
        u.slot(1).install(1);
        u.slot(4).install(4);
        // Serial 1 and 4 share slot 1 % 3 == 4 % 3.
        assert!(std::ptr::eq(u.slot(1), u.slot(4)));
        assert!(!std::ptr::eq(u.slot(1), u.slot(2)));
    }

    #[test]
    fn slot_signalling_checks_serial() {
        let u = UThreadShared::new(0, 2);
        u.slot(3).install(3);
        assert!(!u.slot(3).is_aborted(3));
        // Signalling a stale serial is a no-op.
        assert!(!u.slot(1).signal_abort(1));
        assert!(!u.slot(3).is_aborted(3));
        // Signalling the installed serial works.
        assert!(u.slot(3).signal_abort(3));
        assert!(u.slot(3).is_aborted(3));
        // Restart clears the flag.
        u.slot(3).clear_abort();
        assert!(!u.slot(3).is_aborted(3));
        // Installing a new task clears it too.
        u.slot(3).signal_abort(3);
        u.slot(5).install(5);
        assert!(!u.slot(5).is_aborted(5));
    }

    #[test]
    fn completion_counters_track_writers_separately() {
        let u = UThreadShared::new(0, 4);
        u.mark_completed(1, false);
        assert_eq!(u.completed_task(), 1);
        assert_eq!(u.completed_writer(), 0);
        let events_before = u.writer_events();
        u.mark_completed(2, true);
        assert_eq!(u.completed_task(), 2);
        assert_eq!(u.completed_writer(), 2);
        assert_eq!(u.writer_events(), events_before + 1);
    }

    #[test]
    fn rollback_resets_counters_and_bumps_writer_events() {
        let u = UThreadShared::new(0, 4);
        u.mark_completed(1, true);
        u.mark_completed(2, true);
        let events = u.writer_events();
        u.reset_after_rollback(2);
        assert_eq!(u.completed_task(), 1);
        assert_eq!(u.completed_writer(), 1);
        assert!(u.writer_events() > events);
        // Rolling back a transaction that starts before the counters does not
        // raise them.
        u.reset_after_rollback(5);
        assert_eq!(u.completed_task(), 1);
    }

    #[test]
    fn wait_until_observes_concurrent_progress() {
        let u = Arc::new(UThreadShared::new(0, 2));
        let u2 = Arc::clone(&u);
        let waiter = std::thread::spawn(move || {
            u2.wait_until(|| u2.completed_task() >= 3);
            u2.completed_task()
        });
        std::thread::sleep(Duration::from_millis(10));
        u.mark_completed(1, false);
        u.mark_completed(2, false);
        u.mark_completed(3, false);
        assert!(waiter.join().unwrap() >= 3);
    }

    #[test]
    #[should_panic(expected = "spec_depth")]
    fn zero_depth_rejected() {
        let _ = UThreadShared::new(0, 0);
    }
}
