//! The [`TxRuntime`]/[`TxSession`] implementation for TLSTM.
//!
//! The generic session API hands bodies in by *borrowed* closure
//! (`&impl Fn` / `&mut dyn FnMut` — no `'static`, no `Arc`), while TLSTM's
//! task machinery transports bodies to its worker threads as
//! `Arc<dyn Fn + Send + Sync + 'static>` ([`TaskFn`]). Bridging the two
//! without forcing every caller to clone its state into `'static` closures
//! is what this module's small dose of `unsafe` buys: the borrowed bodies
//! are smuggled into `'static` tasks as raw pointers, which is sound because
//! [`UThread::execute`] is *scoped* — it blocks until every submitted task
//! has retired.
//!
//! # Safety argument
//!
//! The erased pointers are dereferenced only inside task bodies, and the
//! worker model (`crate::worker`) guarantees for every task:
//!
//! 1. its body is invoked by exactly one lane worker (task serials are
//!    pinned to lanes), never by two threads at once;
//! 2. re-executions are strictly sequential on that worker;
//! 3. the body is never invoked again after the worker signals completion,
//!    and `execute` returns only after *all* tasks have signalled.
//!
//! Hence every dereference happens-before `execute` returns, while the
//! borrowed closures and result slot are still alive on the caller's stack.
//! The `Arc<TaskFn>` clones a worker may still hold after retirement are
//! only dropped, never called — and dropping a closure that captures raw
//! pointers runs no user code.

use std::sync::{Arc, Mutex};

use txmem::{Abort, TaskBody, TxConfig, TxMem, TxRuntime, TxSession, TxSubstrate};

use crate::runtime::{TlstmRuntime, TxnSpec, UThread};
use crate::task::TaskCtx;
use crate::TaskFn;

/// A `Send + Sync` wrapper for the raw pointers smuggled into a task.
///
/// Safety: see the module-level argument — the pointees outlive every
/// dereference, and the worker model serialises all accesses to them.
struct Smuggled<T: ?Sized>(*const T);

unsafe impl<T: ?Sized> Send for Smuggled<T> {}
unsafe impl<T: ?Sized> Sync for Smuggled<T> {}

/// Like [`Smuggled`], but mutable: one task body owns one group closure
/// exclusively (each [`TaskBody`] is a distinct `&mut`), and the worker model
/// serialises that task's executions.
struct SmuggledMut<T: ?Sized>(*mut T);

unsafe impl<T: ?Sized> Send for SmuggledMut<T> {}
unsafe impl<T: ?Sized> Sync for SmuggledMut<T> {}

/// The `'static` `dyn FnMut` type group bodies are erased to. The transmute
/// in [`erase_group_body`] only changes the trait object's lifetime bound;
/// see the module-level safety argument for why the shorter real lifetime is
/// never exceeded.
type ErasedGroupBody = dyn FnMut(&mut dyn TxMem) -> Result<(), Abort> + Send;

/// The monomorphised-thunk shape [`TxSession::run`] erases its body to: a
/// plain `fn` pointer mentioning neither the body type nor the result type.
type ErasedThunk = unsafe fn(&Smuggled<()>, &Smuggled<()>, &mut TaskCtx<'_>) -> Result<(), Abort>;

/// Widens a borrowed group body's trait-object lifetime bound to `'static`.
///
/// # Safety
///
/// The returned pointer must not be dereferenced after the borrow it was
/// created from ends — upheld by [`TxSession::run_tasks`], which keeps the
/// borrow alive across the blocking [`UThread::execute`] call that performs
/// every dereference.
unsafe fn erase_group_body<'a, 'b>(
    body: &'b mut (dyn FnMut(&mut dyn TxMem) -> Result<(), Abort> + Send + 'a),
) -> *mut ErasedGroupBody {
    let short: *mut (dyn FnMut(&mut dyn TxMem) -> Result<(), Abort> + Send + 'a) = body;
    // SAFETY: both are fat pointers of identical layout; only the trait
    // object's lifetime bound changes.
    unsafe { std::mem::transmute(short) }
}

impl TxRuntime for TlstmRuntime {
    type Session = UThread;

    const LABEL: &'static str = "tlstm";
    const SPECULATIVE: bool = true;

    fn new(config: TxConfig) -> Arc<Self> {
        TlstmRuntime::new(config)
    }

    fn with_substrate(substrate: Arc<TxSubstrate>) -> Arc<Self> {
        TlstmRuntime::with_substrate(substrate)
    }

    fn substrate(&self) -> &Arc<TxSubstrate> {
        TlstmRuntime::substrate(self)
    }

    /// Registers a user-thread whose speculative depth is the substrate's
    /// [`TxConfig::spec_depth`] — callers that submit task groups size the
    /// config accordingly (e.g. `KvServerConfig` raises it to the batch's
    /// group count).
    fn session(self: &Arc<Self>) -> UThread {
        self.register_uthread_default()
    }
}

impl TxSession for UThread {
    type Mem<'t> = TaskCtx<'t>;

    fn run<T, F>(&mut self, body: F) -> T
    where
        T: Send,
        F: for<'t> Fn(&mut TaskCtx<'t>) -> Result<T, Abort> + Send + Sync,
    {
        // The committed execution writes the slot last (re-executions of an
        // aborted attempt simply overwrite earlier values), so after
        // `execute` returns the slot holds the committed body's result.
        let slot: Mutex<Option<T>> = Mutex::new(None);
        let body_ptr = Smuggled((&body as *const F).cast::<()>());
        let slot_ptr = Smuggled((&slot as *const Mutex<Option<T>>).cast::<()>());
        // Monomorphised thunk that reconstitutes the erased pointers; the fn
        // pointer itself mentions neither `F` nor `T`, so the task closure
        // below is `'static` as `TaskFn` requires.
        unsafe fn call<T, F>(
            body: &Smuggled<()>,
            slot: &Smuggled<()>,
            ctx: &mut TaskCtx<'_>,
        ) -> Result<(), Abort>
        where
            F: for<'t> Fn(&mut TaskCtx<'t>) -> Result<T, Abort>,
        {
            let body = unsafe { &*body.0.cast::<F>() };
            let slot = unsafe { &*slot.0.cast::<Mutex<Option<T>>>() };
            let value = body(ctx)?;
            *slot.lock().expect("tlstm session result slot poisoned") = Some(value);
            Ok(())
        }
        let thunk: ErasedThunk = call::<T, F>;
        let task: TaskFn = Arc::new(move |ctx: &mut TaskCtx<'_>| {
            // SAFETY: module-level argument — `execute` below blocks until
            // this task retires, so the stack-borrowed body and slot are
            // alive for every invocation.
            unsafe { thunk(&body_ptr, &slot_ptr, ctx) }
        });
        self.execute(vec![TxnSpec::new(vec![task])]);
        slot.into_inner()
            .expect("result slot poisoned")
            .expect("committed transaction must have produced a value")
    }

    /// Submits the group as *one* user-transaction with one speculative task
    /// per body, preserving program order through the task serials.
    ///
    /// # Panics
    ///
    /// Panics if the group exceeds this user-thread's speculative depth.
    fn run_tasks(&mut self, tasks: &mut [TaskBody<'_>]) {
        if tasks.is_empty() {
            return;
        }
        let bodies: Vec<TaskFn> = tasks
            .iter_mut()
            .map(|body| {
                // SAFETY: the borrow behind `body` outlives the `execute`
                // call below, which performs every dereference (module-level
                // argument).
                let erased: SmuggledMut<ErasedGroupBody> =
                    SmuggledMut(unsafe { erase_group_body(&mut **body) });
                let task: TaskFn = Arc::new(move |ctx: &mut TaskCtx<'_>| {
                    // Capture the whole `SmuggledMut` (not just its pointer
                    // field) so its `Send + Sync` impls apply.
                    let erased = &erased;
                    // SAFETY: module-level argument — this task's executions
                    // are serialised on one lane worker and end before
                    // `execute` returns; each group body is captured by
                    // exactly one task, so no two tasks alias the same
                    // `&mut` closure.
                    let body = unsafe { &mut *erased.0 };
                    body(ctx)
                });
                task
            })
            .collect();
        self.execute(vec![TxnSpec::new(bodies)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::runtime::run_once;

    #[test]
    fn run_returns_the_committed_result_through_borrowed_state() {
        let rt = TlstmRuntime::new(TxConfig::small());
        let counter = rt.heap().alloc(1).unwrap();
        let mut session = TxRuntime::session(&rt);
        // The body borrows a local (non-'static) accumulator — exactly what
        // the scoped erasure exists to allow.
        let local_tag = 7u64;
        let tag_ref = &local_tag;
        for round in 0..50u64 {
            let observed = session.run(|mem| {
                let v = mem.read(counter)?;
                mem.write(counter, v + tag_ref)?;
                Ok(v)
            });
            assert_eq!(observed, round * 7);
        }
        assert_eq!(rt.heap().load_committed(counter), 350);
        assert_eq!(TxRuntime::stats(&*rt).tx_commits, 50);
    }

    #[test]
    fn run_tasks_speculates_but_preserves_program_order() {
        let config = TxConfig {
            spec_depth: 3,
            ..TxConfig::small()
        };
        let rt = TlstmRuntime::new(config);
        let block = rt.heap().alloc(2).unwrap();
        let mut session = TxRuntime::session(&rt);
        let mut results: Vec<u64> = Vec::new();
        let results_ref = &mut results;
        let mut first = |mem: &mut dyn TxMem| mem.write(block, 5);
        let mut second = move |mem: &mut dyn TxMem| {
            let v = mem.read(block)?;
            results_ref.clear(); // bodies may re-execute: reset output
            results_ref.push(v);
            mem.write(block.offset(1), v * 2)
        };
        let mut tasks: [TaskBody<'_>; 2] = [&mut first, &mut second];
        session.run_tasks(&mut tasks);
        assert_eq!(rt.heap().load_committed(block), 5);
        assert_eq!(rt.heap().load_committed(block.offset(1)), 10);
        assert_eq!(results, vec![5], "second task saw the first task's write");
        let stats = TxRuntime::stats(&*rt);
        assert_eq!(stats.tx_commits, 1);
        assert_eq!(stats.task_commits, 2);
    }

    #[test]
    fn sessions_on_many_threads_keep_counters_exact() {
        let rt = TlstmRuntime::new(TxConfig::small());
        let counter = rt.heap().alloc(1).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let rt = Arc::clone(&rt);
                scope.spawn(move || {
                    let mut session = TxRuntime::session(&rt);
                    for _ in 0..100 {
                        session.run(|mem| {
                            let v = mem.read(counter)?;
                            mem.write(counter, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(rt.heap().load_committed(counter), 300);
    }

    #[test]
    fn run_once_helper_works_on_tlstm() {
        let doubled = run_once::<TlstmRuntime, _, _>(TxConfig::small(), |mem| {
            let a = mem.alloc(1)?;
            mem.write(a, 21)?;
            Ok(mem.read(a)? * 2)
        });
        assert_eq!(doubled, 42);
    }
}
