//! Shared per-user-transaction state.
//!
//! Every task of a user-transaction shares one [`TxnShared`]. It plays three
//! roles:
//!
//! 1. it is the **contention-manager handle** other user-threads reach through
//!    the lock table (the `w-lock.owner` of the paper) — hence the
//!    [`txmem::LockOwner`] implementation;
//! 2. it carries the **abort-transaction flag** and the rollback coordination
//!    state (acknowledgement counter + rollback epoch) that drive the
//!    "all tasks of the transaction restart together" protocol of §3.2;
//! 3. it is the **mailbox where completed intermediate tasks publish their
//!    logs**, so the commit-task can validate every task's reads and write
//!    back every task's writes at transaction commit (Algorithm 3).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use txmem::{LockIndex, LockOwner, WordAddr};

use crate::uthread_state::UThreadShared;

/// Priority value meaning "still in the timid phase" (same convention as the
/// SwissTM greedy contention manager).
pub(crate) const TIMID_PRIORITY: u64 = u64::MAX;

/// One entry of a task-read-log: the task read a speculative value that a
/// *past* task of the same user-thread wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskReadEntry {
    /// Lock covering the address.
    pub lock: LockIndex,
    /// The address that was read.
    pub addr: WordAddr,
    /// Serial of the past writer task whose value was observed.
    pub writer_serial: u64,
}

/// The logs a completed task publishes for its commit-task.
#[derive(Debug, Default, Clone)]
pub struct TaskLogs {
    /// Snapshot timestamp the task's committed reads are valid at.
    pub valid_ts: u64,
    /// Reads from committed state: (lock, observed version).
    pub read_log: Vec<(LockIndex, u64)>,
    /// Reads from past tasks' speculative values.
    pub task_read_log: Vec<TaskReadEntry>,
    /// Buffered writes in program order of last update: (address, value).
    pub writes: Vec<(WordAddr, u64)>,
    /// Locks under which this task created chain entries.
    pub acquired: Vec<LockIndex>,
}

impl TaskLogs {
    /// `true` if the task performed no writes.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Empties the logs, retaining the vectors' capacity (pool recycling).
    pub fn clear(&mut self) {
        self.valid_ts = 0;
        self.read_log.clear();
        self.task_read_log.clear();
        self.writes.clear();
        self.acquired.clear();
    }
}

/// State shared by all tasks of one user-transaction.
#[derive(Debug)]
pub struct TxnShared {
    uthread: Arc<UThreadShared>,
    start_serial: u64,
    commit_serial: u64,
    /// `abort-transaction`: the whole user-transaction must roll back.
    abort_requested: AtomicBool,
    /// The commit-task has started the rollback protocol. Completed
    /// intermediate tasks dismantle their speculative state only when this is
    /// set (not on `abort_requested` alone), which keeps them from racing with
    /// a commit-task that decided to commit before the request arrived.
    rollback_started: AtomicBool,
    /// The commit-task has begun write-back (contenders should simply wait).
    finishing: AtomicBool,
    /// The user-transaction has committed.
    committed: AtomicBool,
    /// Number of times the transaction has been rolled back so far.
    rollbacks: AtomicU32,
    /// Rollback epoch: incremented after every completed rollback cleanup;
    /// restarting tasks wait for it to advance before re-executing.
    epoch: AtomicU64,
    /// Tasks that have acknowledged the current abort request.
    acks: AtomicU32,
    /// Individual task aborts decided by the inter-thread contention manager
    /// against this transaction. Unlike whole-transaction rollbacks these can
    /// accumulate without the transaction ever restarting as a unit, so they
    /// must also drive the two-phase greedy escalation: with symmetric
    /// conflict cycles both sides stay timid, keep self-aborting and deadlock
    /// unless one of them eventually draws a ticket.
    cm_retries: AtomicU32,
    /// Two-phase greedy priority of the whole user-transaction.
    priority: AtomicU64,
    /// The user-thread has abandoned speculative execution of this
    /// transaction (abort-storm fallback): once the pending rollback has
    /// dismantled the tasks' speculative state, workers vacate their tasks
    /// instead of re-executing and the user-thread re-runs the transaction
    /// sequentially inline.
    abandoned: AtomicBool,
    /// Logs published by completed tasks, keyed by serial.
    logs: Mutex<Vec<(u64, TaskLogs)>>,
}

impl TxnShared {
    /// Creates the shared state of a user-transaction spanning the serial
    /// range `[start_serial, commit_serial]`.
    ///
    /// # Panics
    ///
    /// Panics if the serial range is empty or exceeds the user-thread's
    /// speculative depth (such a transaction could never complete, because all
    /// of its tasks must be simultaneously active at commit time).
    pub fn new(uthread: Arc<UThreadShared>, start_serial: u64, commit_serial: u64) -> Self {
        assert!(
            commit_serial >= start_serial,
            "a user-transaction needs at least one task"
        );
        let n_tasks = commit_serial - start_serial + 1;
        assert!(
            n_tasks as usize <= uthread.spec_depth(),
            "a user-transaction with {n_tasks} tasks cannot run under speculative depth {}",
            uthread.spec_depth()
        );
        TxnShared {
            uthread,
            start_serial,
            commit_serial,
            abort_requested: AtomicBool::new(false),
            rollback_started: AtomicBool::new(false),
            finishing: AtomicBool::new(false),
            committed: AtomicBool::new(false),
            rollbacks: AtomicU32::new(0),
            epoch: AtomicU64::new(0),
            acks: AtomicU32::new(0),
            cm_retries: AtomicU32::new(0),
            priority: AtomicU64::new(TIMID_PRIORITY),
            abandoned: AtomicBool::new(false),
            logs: Mutex::new(Vec::new()),
        }
    }

    /// Serial of the transaction's first task (`tx-start-serial`).
    pub fn start_serial(&self) -> u64 {
        self.start_serial
    }

    /// Serial of the transaction's last task (`tx-commit-serial`).
    pub fn commit_serial(&self) -> u64 {
        self.commit_serial
    }

    /// Number of tasks in the transaction.
    pub fn n_tasks(&self) -> u64 {
        self.commit_serial - self.start_serial + 1
    }

    /// The user-thread this transaction belongs to.
    pub fn uthread(&self) -> &Arc<UThreadShared> {
        &self.uthread
    }

    /// `true` once the transaction has committed.
    pub fn is_committed(&self) -> bool {
        self.committed.load(Ordering::Acquire)
    }

    /// Marks the transaction as committed and wakes all waiting tasks.
    pub fn mark_committed(&self) {
        self.committed.store(true, Ordering::Release);
        self.uthread.notify();
    }

    /// `true` if the whole transaction has been asked to abort.
    pub fn abort_requested(&self) -> bool {
        self.abort_requested.load(Ordering::Acquire)
    }

    /// Requests the abort of the whole transaction (used by the task-aware
    /// contention manager and by internal escalation).
    pub fn request_abort(&self) {
        self.abort_requested.store(true, Ordering::Release);
        self.uthread.notify();
    }

    /// Marks the transaction as entering its commit write-back phase.
    pub fn set_finishing(&self) {
        self.finishing.store(true, Ordering::Release);
    }

    /// `true` once the commit-task has started the rollback protocol for the
    /// current abort request.
    pub fn rollback_started(&self) -> bool {
        self.rollback_started.load(Ordering::Acquire)
    }

    /// Begins the rollback protocol (called by the commit-task before it
    /// waits for the other tasks' acknowledgements).
    pub fn start_rollback(&self) {
        self.rollback_started.store(true, Ordering::Release);
        self.uthread.notify();
    }

    /// Number of rollbacks suffered so far.
    pub fn rollbacks(&self) -> u32 {
        self.rollbacks.load(Ordering::Relaxed)
    }

    /// Records one contention-manager self-abort of a task of this
    /// transaction and returns the running total.
    pub fn note_cm_self_abort(&self) -> u32 {
        self.cm_retries.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Contention-manager self-aborts recorded so far (the abort-storm
    /// detector samples this while the transaction is in flight).
    pub fn cm_retries(&self) -> u32 {
        self.cm_retries.load(Ordering::Relaxed)
    }

    /// `true` once the user-thread has abandoned speculative execution of
    /// this transaction (abort-storm fallback): after the pending rollback
    /// completes, every worker vacates its task instead of re-executing it,
    /// and the user-thread re-runs the transaction sequentially inline.
    pub fn abandoned(&self) -> bool {
        self.abandoned.load(Ordering::Acquire)
    }

    /// Abandons speculative execution of this transaction (call together
    /// with [`request_abort`](Self::request_abort); the rollback is what
    /// dismantles the tasks' speculative state before they vacate).
    pub fn set_abandoned(&self) {
        self.abandoned.store(true, Ordering::Release);
    }

    /// Current greedy priority.
    pub fn priority(&self) -> u64 {
        self.priority.load(Ordering::Relaxed)
    }

    /// Installs a greedy priority ticket (keeps the strongest if called twice).
    pub fn set_priority(&self, ticket: u64) {
        self.priority.fetch_min(ticket, Ordering::Relaxed);
    }

    // --- rollback coordination --------------------------------------------

    /// Current rollback epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A non-commit task acknowledges the pending abort after having removed
    /// its own speculative chain entries.
    pub fn ack_abort(&self) {
        self.acks.fetch_add(1, Ordering::AcqRel);
        self.uthread.notify();
    }

    /// Number of tasks that have acknowledged the pending abort.
    pub fn acks(&self) -> u32 {
        self.acks.load(Ordering::Acquire)
    }

    /// Completes a rollback: called by the commit-task once every other task
    /// has acknowledged. Resets the coordination state, bumps the epoch and
    /// wakes everyone so they re-execute.
    pub fn finish_rollback(&self) {
        // Recycle the discarded log buffers instead of dropping them.
        for (_, logs) in std::mem::take(&mut *self.logs.lock()) {
            self.uthread.recycle_logs(logs);
        }
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
        self.acks.store(0, Ordering::Release);
        self.finishing.store(false, Ordering::Release);
        self.rollback_started.store(false, Ordering::Release);
        self.abort_requested.store(false, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.uthread.notify();
    }

    // --- log publication ----------------------------------------------------

    /// Publishes (or republishes) the logs of a completed task.
    pub fn publish_logs(&self, serial: u64, logs: TaskLogs) {
        let mut guard = self.logs.lock();
        if let Some(slot) = guard.iter_mut().find(|(s, _)| *s == serial) {
            slot.1 = logs;
        } else {
            guard.push((serial, logs));
        }
    }

    /// Takes every published log, sorted by serial (used by the commit-task,
    /// which consumes them; a later rollback republishes fresh logs anyway).
    pub fn collect_logs(&self) -> Vec<(u64, TaskLogs)> {
        let mut logs = std::mem::take(&mut *self.logs.lock());
        logs.sort_by_key(|(serial, _)| *serial);
        logs
    }

    /// Number of published logs (diagnostics / tests).
    pub fn published_count(&self) -> usize {
        self.logs.lock().len()
    }
}

impl LockOwner for TxnShared {
    fn signal_abort(&self) {
        self.request_abort();
    }

    fn is_finishing(&self) -> bool {
        self.finishing.load(Ordering::Acquire)
            || self.committed.load(Ordering::Acquire)
            || self.abort_requested()
    }

    fn completed_progress(&self) -> u64 {
        // Number of this transaction's tasks that have already completed
        // (the task-aware contention manager's progress measure).
        self.uthread
            .completed_task()
            .saturating_sub(self.start_serial.saturating_sub(1))
            .min(self.n_tasks())
    }

    fn cm_priority(&self) -> u64 {
        self.priority()
    }

    fn owner_id(&self) -> u32 {
        self.uthread.ptid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(depth: usize, start: u64, commit: u64) -> TxnShared {
        TxnShared::new(Arc::new(UThreadShared::new(7, depth)), start, commit)
    }

    #[test]
    fn progress_counts_completed_tasks_of_this_txn_only() {
        let u = Arc::new(UThreadShared::new(0, 4));
        let t = TxnShared::new(Arc::clone(&u), 5, 7);
        assert_eq!(t.completed_progress(), 0);
        u.mark_completed(4, false); // a previous transaction's task
        assert_eq!(t.completed_progress(), 0);
        u.mark_completed(5, false);
        assert_eq!(t.completed_progress(), 1);
        u.mark_completed(6, true);
        assert_eq!(t.completed_progress(), 2);
        // Progress is capped at the transaction size.
        u.mark_completed(9, false);
        assert_eq!(t.completed_progress(), 3);
    }

    #[test]
    fn abort_and_rollback_cycle() {
        let t = txn(4, 1, 3);
        assert!(!t.abort_requested());
        t.request_abort();
        assert!(t.abort_requested());
        assert!(t.is_finishing());
        t.ack_abort();
        t.ack_abort();
        assert_eq!(t.acks(), 2);
        let epoch = t.epoch();
        t.finish_rollback();
        assert_eq!(t.epoch(), epoch + 1);
        assert_eq!(t.acks(), 0);
        assert!(!t.abort_requested());
        assert_eq!(t.rollbacks(), 1);
    }

    #[test]
    fn log_publication_overwrites_by_serial() {
        let t = txn(4, 1, 2);
        t.publish_logs(
            1,
            TaskLogs {
                valid_ts: 3,
                ..Default::default()
            },
        );
        t.publish_logs(
            2,
            TaskLogs {
                valid_ts: 4,
                ..Default::default()
            },
        );
        t.publish_logs(
            1,
            TaskLogs {
                valid_ts: 9,
                ..Default::default()
            },
        );
        let logs = t.collect_logs();
        assert_eq!(logs.len(), 2);
        assert_eq!(logs[0].0, 1);
        assert_eq!(logs[0].1.valid_ts, 9);
        assert_eq!(logs[1].0, 2);
        t.finish_rollback();
        assert_eq!(t.published_count(), 0);
    }

    #[test]
    fn priority_keeps_strongest_ticket() {
        let t = txn(2, 1, 1);
        assert_eq!(t.priority(), TIMID_PRIORITY);
        t.set_priority(10);
        t.set_priority(20);
        assert_eq!(t.priority(), 10);
    }

    #[test]
    fn committed_flag_reported_through_lock_owner() {
        let t = txn(2, 1, 1);
        assert!(!t.is_finishing());
        t.mark_committed();
        assert!(t.is_committed());
        assert!(t.is_finishing());
        assert_eq!(t.owner_id(), 7);
    }

    #[test]
    #[should_panic(expected = "cannot run under speculative depth")]
    fn oversized_transaction_rejected() {
        let _ = txn(2, 1, 5);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_transaction_rejected() {
        let _ = txn(4, 5, 4);
    }
}
