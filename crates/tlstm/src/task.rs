//! The speculative task execution context.
//!
//! A [`TaskCtx`] is the handle a task body uses to access transactional
//! memory. It implements the read/write rules of Algorithms 1 and 2 of the
//! paper and the per-task half of the commit/abort protocol of Algorithm 3
//! (the whole-transaction commit performed by the commit-task lives in
//! `TaskCtx::task_commit`).
//!
//! ## Recycled task state
//!
//! All per-task speculative state lives in a `TaskBufs` owned by the
//! *worker thread* and lent to each [`TaskCtx`] it runs: the read logs, the
//! log-structured write set ([`txmem::WriteSet`]) and the acquired-locks and
//! commit scratch vectors are recycled across attempts **and across tasks**.
//! Published [`TaskLogs`] are drawn from (and returned to) a per-user-thread
//! pool, so in steady state the task read/write/commit/rollback paths stop
//! allocating; only the per-transaction orchestration (the `TxnShared`
//! handle, work items and task closures) still allocates, independent of how
//! many transactional operations a task performs.

use std::sync::Arc;

use txmem::chain::ChainRead;
use txmem::{
    Abort, AbortReason, CmDecision, LockIndex, OwnerHandle, OwnerToken, TxMem, TxSubstrate,
    WordAddr, WriteSet, LOCKED,
};

use crate::cm::TaskAwareCm;
use crate::txn_state::{TaskLogs, TaskReadEntry, TxnShared};
use crate::uthread_state::UThreadShared;

/// Busy-spin iterations before falling back to `yield` (spinning is skipped
/// entirely on single-core hosts).
const SPIN_BEFORE_YIELD: u32 = 64;

fn contention_pause(iteration: u32) {
    txmem::pause::contention_pause(iteration, SPIN_BEFORE_YIELD);
}

/// Recyclable speculative buffers of one worker thread.
///
/// A worker creates one `TaskBufs` for its lifetime and lends it to every
/// [`TaskCtx`] it runs; all vectors and the write set retain their capacity
/// across attempts and tasks.
#[derive(Debug, Default)]
pub(crate) struct TaskBufs {
    /// Reads from committed state: (lock, observed version).
    read_log: Vec<(LockIndex, u64)>,
    /// Reads from past tasks' speculative values.
    task_read_log: Vec<TaskReadEntry>,
    /// Log-structured buffered writes.
    write_set: WriteSet,
    /// Locks under which this task created chain entries.
    acquired: Vec<LockIndex>,
    /// Commit-task scratch: the whole transaction's `(lock, pre-lock
    /// version)` pairs, sorted by lock index (replaces the former
    /// `old_versions` hash map).
    commit_locks: Vec<(LockIndex, u64)>,
}

/// Execution context of one speculative task attempt.
///
/// The same context is reused across re-executions of the task (after
/// intra-thread or inter-thread conflicts); `TaskCtx::reset_for_attempt`
/// clears the speculative state between attempts. The backing buffers come
/// from the worker's recycled `TaskBufs`.
#[derive(Debug)]
pub struct TaskCtx<'rt> {
    substrate: &'rt TxSubstrate,
    /// The owning user-thread's statistics shard.
    stats: &'rt txmem::StatsShard,
    cm: TaskAwareCm,
    uthread: Arc<UThreadShared>,
    txn: Arc<TxnShared>,
    txn_owner: OwnerHandle,
    serial: u64,
    try_commit: bool,
    token: OwnerToken,
    valid_ts: u64,
    last_writer_events: u64,
    bufs: &'rt mut TaskBufs,
    local_reads: u64,
    local_writes: u64,
}

/// Internal result of probing a lock chain during a speculative read.
enum SpecProbe {
    Own(u64),
    Past { writer_serial: u64, value: u64 },
    WaitForWriter,
    Fallback,
    Released,
}

impl<'rt> TaskCtx<'rt> {
    /// Creates the context for one task.
    pub(crate) fn new(
        substrate: &'rt TxSubstrate,
        cm: TaskAwareCm,
        uthread: Arc<UThreadShared>,
        txn: Arc<TxnShared>,
        serial: u64,
        try_commit: bool,
        bufs: &'rt mut TaskBufs,
    ) -> Self {
        let token = OwnerToken::from_id(uthread.ptid());
        let txn_owner: OwnerHandle = Arc::clone(&txn) as _;
        let valid_ts = substrate.clock.now();
        let last_writer_events = uthread.writer_events();
        let stats = substrate.stats.shard(uthread.ptid());
        debug_assert!(
            bufs.acquired.is_empty(),
            "recycled buffers must be handed over with no chain entries"
        );
        TaskCtx {
            substrate,
            stats,
            cm,
            uthread,
            txn,
            txn_owner,
            serial,
            try_commit,
            token,
            valid_ts,
            last_writer_events,
            bufs,
            local_reads: 0,
            local_writes: 0,
        }
    }

    // --- public inspection ---------------------------------------------------

    /// The task's serial number (its position in the user-thread's program
    /// order).
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// The identifier of the user-thread this task belongs to.
    pub fn ptid(&self) -> u32 {
        self.uthread.ptid()
    }

    /// `true` if this is the last task of its user-transaction (the
    /// commit-task).
    pub fn is_commit_task(&self) -> bool {
        self.try_commit
    }

    /// Serial of the first task of the enclosing user-transaction.
    pub fn tx_start_serial(&self) -> u64 {
        self.txn.start_serial()
    }

    /// Serial of the last task of the enclosing user-transaction.
    pub fn tx_commit_serial(&self) -> u64 {
        self.txn.commit_serial()
    }

    /// The snapshot timestamp the task's committed reads are valid at.
    pub fn valid_ts(&self) -> u64 {
        self.valid_ts
    }

    /// `true` if the task has not written anything so far.
    pub fn is_read_only(&self) -> bool {
        self.bufs.write_set.is_empty()
    }

    /// Requests an explicit user-level retry of the task (and hence of its
    /// user-transaction once it propagates).
    pub fn retry<T>(&self) -> Result<T, Abort> {
        Err(Abort::user_retry())
    }

    // --- crate-internal lifecycle -------------------------------------------

    pub(crate) fn uthread(&self) -> &Arc<UThreadShared> {
        &self.uthread
    }

    pub(crate) fn txn(&self) -> &Arc<TxnShared> {
        &self.txn
    }

    /// Prepares the context for a (re-)execution attempt of the task body.
    /// Clearing retains the recycled buffers' capacity.
    pub(crate) fn reset_for_attempt(&mut self) {
        self.bufs.read_log.clear();
        self.bufs.task_read_log.clear();
        self.bufs.write_set.clear();
        debug_assert!(
            self.bufs.acquired.is_empty(),
            "chain entries must be removed before reset"
        );
        self.bufs.acquired.clear();
        self.valid_ts = self.substrate.clock.now();
        self.last_writer_events = self.uthread.writer_events();
        let slot = self.uthread.slot(self.serial);
        slot.install(self.serial);
    }

    /// Removes every speculative chain entry this task installed and releases
    /// write locks whose chains become empty. Called on every rollback.
    pub(crate) fn remove_chain_entries(&mut self) {
        for &idx in &self.bufs.acquired {
            let entry = self.substrate.locks.entry(idx);
            let mut chain = entry.chain();
            chain.remove_serial(self.serial);
            if chain.is_empty() {
                entry.release_writer_if(self.token);
            }
        }
        self.bufs.acquired.clear();
    }

    /// Flushes the local read/write counters into the user-thread's
    /// statistics shard.
    pub(crate) fn flush_op_counters(&mut self) {
        if self.local_reads > 0 {
            self.stats.add(&self.stats.reads, self.local_reads);
            self.local_reads = 0;
        }
        if self.local_writes > 0 {
            self.stats.add(&self.stats.writes, self.local_writes);
            self.local_writes = 0;
        }
    }

    // --- signal handling ------------------------------------------------------

    /// Checks the abort-transaction and aborted-internally flags
    /// (Algorithm 1 line 12, Algorithm 2 lines 34/40, Algorithm 3 lines 67-68).
    fn check_signals(&self) -> Result<(), Abort> {
        if self.txn.abort_requested() {
            return Err(Abort::new(AbortReason::TransactionAbortSignal));
        }
        if self.uthread.slot(self.serial).is_aborted(self.serial) {
            return Err(Abort::new(AbortReason::TaskAbortSignal));
        }
        Ok(())
    }

    // --- intra-thread validation ---------------------------------------------

    /// Runs `validate-task` if a writer task of this user-thread has completed
    /// (or a rollback happened) since the last successful validation.
    fn maybe_validate_task(&mut self) -> Result<(), Abort> {
        let events = self.uthread.writer_events();
        if events != self.last_writer_events {
            if !self.validate_task() {
                return Err(Abort::new(AbortReason::IntraThreadWar));
            }
            self.last_writer_events = events;
        }
        Ok(())
    }

    /// `validate-task` (Algorithm 1, lines 17-31): checks that every
    /// speculative read still observes the most recent past writer, and that
    /// no past task has speculatively written to a location this task read
    /// from committed state.
    pub(crate) fn validate_task(&self) -> bool {
        self.stats.bump(&self.stats.validations);
        // Part 1: reads from past tasks' speculative values.
        for rec in &self.bufs.task_read_log {
            let entry = self.substrate.locks.entry(rec.lock);
            // A never-allocated chain means the writer's entry is gone.
            let Some(chain) = entry.try_chain() else {
                return false;
            };
            if chain.owner_ptid() != Some(self.uthread.ptid()) {
                // The writer's transaction committed or aborted and released
                // the lock: the speculative read is no longer backed.
                return false;
            }
            let mut latest_past_writer = None;
            for e in chain.iter() {
                if e.serial < self.serial && e.value_of(rec.addr).is_some() {
                    latest_past_writer = Some(e.serial);
                }
            }
            if latest_past_writer != Some(rec.writer_serial) {
                return false;
            }
        }
        // Part 2: reads from committed state must not have been overwritten
        // speculatively by a past task of this user-thread.
        for &(idx, _version) in &self.bufs.read_log {
            let entry = self.substrate.locks.entry(idx);
            // No chain allocated: nobody ever wrote speculatively here.
            let Some(chain) = entry.try_chain() else {
                continue;
            };
            if chain.owner_ptid() == Some(self.uthread.ptid())
                && chain.iter().any(|e| e.serial < self.serial)
            {
                return false;
            }
        }
        true
    }

    // --- inter-thread validation (inherited from SwissTM) ---------------------

    /// Validates the committed-read log against the lock table.
    fn validate_reads(&self, locked_by_me: Option<&[(LockIndex, u64)]>) -> bool {
        Self::validate_read_entries(self.substrate, &self.bufs.read_log, locked_by_me)
    }

    /// `locked_by_me` is the commit-task's `(lock, pre-lock version)` list,
    /// sorted by lock index (binary-searchable).
    fn validate_read_entries(
        substrate: &TxSubstrate,
        entries: &[(LockIndex, u64)],
        locked_by_me: Option<&[(LockIndex, u64)]>,
    ) -> bool {
        substrate.locks.validate_read_log(entries, locked_by_me)
    }

    /// Tries to extend `valid-ts` to the current commit timestamp.
    fn extend(&mut self) -> Result<(), Abort> {
        let target = self.substrate.clock.now();
        self.stats.bump(&self.stats.validations);
        if self.validate_reads(None) {
            self.valid_ts = target;
            self.stats.bump(&self.stats.extensions);
            Ok(())
        } else {
            Err(Abort::new(AbortReason::ReadValidation))
        }
    }

    /// Reads the committed value of `addr` with the SwissTM consistency rule
    /// (extend-before-use, re-checked version). The caller has already
    /// resolved `(idx, entry)`, so the lock mapping is computed once per read.
    fn read_committed(
        &mut self,
        idx: LockIndex,
        entry: &txmem::LockEntry,
        addr: WordAddr,
    ) -> Result<u64, Abort> {
        let mut spin = 0u32;
        loop {
            let v1 = entry.version();
            if v1 == LOCKED {
                // Only the waiting path needs to stay responsive to abort
                // signals; the fast path was already checked by the caller.
                self.check_signals()?;
                contention_pause(spin);
                spin = spin.wrapping_add(1);
                continue;
            }
            if v1 > self.valid_ts {
                self.extend()?;
                continue;
            }
            let value = self.substrate.heap.load_committed(addr);
            let v2 = entry.version();
            if v1 != v2 {
                contention_pause(spin);
                spin = spin.wrapping_add(1);
                continue;
            }
            self.bufs.read_log.push((idx, v1));
            return Ok(value);
        }
    }

    // --- speculative read (Algorithm 1) ---------------------------------------

    fn read_word(&mut self, addr: WordAddr) -> Result<u64, Abort> {
        self.check_signals()?;
        // Reads from the task's own writes need no validation; the write
        // set's bloom summary answers the dominant "not written by me" case
        // with two bit tests, keeping read-only tasks off any lookup path.
        if let Some(value) = self.bufs.write_set.lookup(addr) {
            return Ok(value);
        }
        let (idx, entry) = self.substrate.locks.lookup(addr);
        loop {
            if entry.writer_token() != self.token {
                // Not locked by this user-thread (or just released): read the
                // committed value exactly as SwissTM would.
                return self.read_committed(idx, entry, addr);
            }
            let probe = {
                // `try_chain` never allocates: a missing chain behaves like
                // an empty one (the writer has not recorded its entry yet).
                let chain = entry.try_chain();
                // Re-check ownership under the chain mutex: the lock may have
                // been released and re-acquired by another user-thread between
                // the token check above and taking the mutex.
                if chain
                    .as_deref()
                    .is_none_or(|c| c.is_empty() || c.owner_ptid() != Some(self.uthread.ptid()))
                {
                    SpecProbe::Released
                } else {
                    let chain = chain.as_deref().expect("checked non-empty above");
                    match chain.read_visible(addr, self.serial) {
                        ChainRead::Own(value) => SpecProbe::Own(value),
                        ChainRead::Past {
                            writer_serial,
                            value,
                        } => {
                            if self.uthread.completed_task() >= writer_serial {
                                SpecProbe::Past {
                                    writer_serial,
                                    value,
                                }
                            } else {
                                SpecProbe::WaitForWriter
                            }
                        }
                        ChainRead::Committed => SpecProbe::Fallback,
                    }
                }
            };
            match probe {
                SpecProbe::Own(value) => return Ok(value),
                SpecProbe::Past {
                    writer_serial,
                    value,
                } => {
                    // Validate pending intra-thread conflicts before trusting
                    // the speculative value (Algorithm 1, line 13), then log
                    // the read for later re-validation.
                    self.maybe_validate_task()?;
                    self.bufs.task_read_log.push(TaskReadEntry {
                        lock: idx,
                        addr,
                        writer_serial,
                    });
                    return Ok(value);
                }
                SpecProbe::WaitForWriter => {
                    // The most recent past writer is still running: wait for
                    // it to complete (Algorithm 1, line 11).
                    self.stats.bump(&self.stats.reader_waits);
                    self.check_signals()?;
                    self.uthread.wait_slice();
                    continue;
                }
                SpecProbe::Fallback => {
                    return self.read_committed(idx, entry, addr);
                }
                SpecProbe::Released => {
                    // Ownership changed under us: re-evaluate from the top
                    // (the next iteration will take the committed-read path
                    // unless our user-thread re-acquires the lock).
                    continue;
                }
            }
        }
    }

    // --- speculative write (Algorithm 2) ---------------------------------------

    fn record_own_write(&mut self, idx: LockIndex, addr: WordAddr, value: u64) {
        let entry = self.substrate.locks.entry(idx);
        entry.chain().record_write(
            self.uthread.ptid(),
            self.serial,
            self.txn.start_serial(),
            &self.txn_owner,
            addr,
            value,
        );
        self.note_own_write(idx, addr, value);
    }

    /// Local bookkeeping after a write has been recorded in the lock's
    /// chain: remember the acquired lock and buffer the value in the write
    /// set. Shared by every write-recording path.
    fn note_own_write(&mut self, idx: LockIndex, addr: WordAddr, value: u64) {
        if !self.bufs.acquired.contains(&idx) {
            self.bufs.acquired.push(idx);
        }
        if !self.bufs.write_set.update(addr, value) {
            self.bufs.write_set.insert_new(addr, value, idx);
        }
    }

    fn write_word(&mut self, addr: WordAddr, value: u64) -> Result<(), Abort> {
        self.check_signals()?;
        let (idx, entry) = self.substrate.locks.lookup(addr);
        // Fast path: this task already has a chain entry under this lock.
        if self.bufs.acquired.contains(&idx) {
            self.record_own_write(idx, addr, value);
            return Ok(());
        }
        enum WwAction {
            Acquired,
            SelfAbort,
            SignalRunning(u64),
            SignalCompletedTxn(OwnerHandle),
            InterThread,
            Retry,
        }
        let mut spin = 0u32;
        loop {
            self.check_signals()?;
            let token = entry.writer_token();
            let action = if token.is_unlocked() {
                if entry.try_acquire_writer(self.token).is_ok() {
                    self.record_own_write(idx, addr, value);
                    WwAction::Acquired
                } else {
                    WwAction::Retry
                }
            } else if token == self.token {
                // Locked by another task of this user-thread.
                let mut chain = entry.chain();
                // Re-check ownership under the chain mutex (see read_word).
                if entry.writer_token() != self.token {
                    drop(chain);
                    WwAction::Retry
                } else {
                    match chain.newest_serial() {
                        None => WwAction::Retry,
                        Some(newest) if newest <= self.serial => {
                            if newest < self.serial && self.uthread.completed_task() < newest {
                                // The most recent past writer is still running:
                                // this (future) task rolls back (Alg. 2 line 45).
                                WwAction::SelfAbort
                            } else {
                                chain.record_write(
                                    self.uthread.ptid(),
                                    self.serial,
                                    self.txn.start_serial(),
                                    &self.txn_owner,
                                    addr,
                                    value,
                                );
                                drop(chain);
                                self.note_own_write(idx, addr, value);
                                WwAction::Acquired
                            }
                        }
                        Some(newest) => {
                            // A future task holds the most speculative entry: it
                            // must abort (Alg. 2 line 47).
                            if self.uthread.completed_task() >= newest {
                                // Already completed: it can no longer observe an
                                // individual abort signal, so its whole
                                // user-transaction is asked to abort instead.
                                match chain.entry_for_serial(newest) {
                                    Some(e) => {
                                        WwAction::SignalCompletedTxn(OwnerHandle::clone(&e.owner))
                                    }
                                    None => WwAction::Retry,
                                }
                            } else {
                                WwAction::SignalRunning(newest)
                            }
                        }
                    }
                }
            } else {
                WwAction::InterThread
            };
            match action {
                WwAction::Acquired => break,
                WwAction::SelfAbort => {
                    return Err(Abort::new(AbortReason::IntraThreadWaw));
                }
                WwAction::SignalRunning(target) => {
                    self.uthread.slot(target).signal_abort(target);
                    self.uthread.wait_slice();
                    continue;
                }
                WwAction::SignalCompletedTxn(owner) => {
                    owner.signal_abort();
                    self.uthread.wait_slice();
                    continue;
                }
                WwAction::InterThread => {
                    // Write lock held by another user-thread: task-aware
                    // contention management (Alg. 2 lines 41-43, 54-64).
                    // `try_chain` keeps this inspection allocation-free: a
                    // missing chain reads as "no entry yet", i.e. Wait.
                    let decision = {
                        match entry.try_chain().as_deref().and_then(|c| c.newest()) {
                            None => CmDecision::Wait,
                            // Ownership switched to our own user-thread since
                            // the token read: retry and take the intra-thread
                            // path instead of contending against ourselves.
                            Some(spec) if spec.ptid == self.uthread.ptid() => CmDecision::Wait,
                            Some(spec) => self.cm.resolve(&self.txn, spec.owner.as_ref()),
                        }
                    };
                    match decision {
                        CmDecision::AbortSelf => {
                            self.stats.bump(&self.stats.cm_self_aborts);
                            return Err(Abort::new(AbortReason::InterThreadWriteConflict));
                        }
                        CmDecision::AbortOwner => {
                            self.stats.bump(&self.stats.cm_owner_aborts);
                            contention_pause(spin);
                            spin = spin.wrapping_add(1);
                            continue;
                        }
                        CmDecision::Wait => {
                            contention_pause(spin);
                            spin = spin.wrapping_add(1);
                            continue;
                        }
                    }
                }
                WwAction::Retry => {
                    contention_pause(spin);
                    spin = spin.wrapping_add(1);
                    continue;
                }
            }
        }
        // Post-write consistency checks (Algorithm 2, lines 52-53).
        let version = entry.version();
        if version != LOCKED && version > self.valid_ts {
            self.extend()?;
        }
        self.maybe_validate_task()?;
        Ok(())
    }

    // --- task / transaction commit (Algorithm 3) --------------------------------

    /// Builds the publishable snapshot of this task's logs.
    ///
    /// The backing storage comes from the user-thread's `TaskLogs` pool: the
    /// read logs are *swapped* with the pooled (empty, capacity-bearing)
    /// vectors — once a task has completed it never validates itself again,
    /// and a transaction rollback clears and rebuilds them anyway — while the
    /// write log is copied in program order (the task still needs `acquired`
    /// to dismantle its chain entries on rollback). In steady state the pool
    /// round-trips the same buffers, so publishing allocates nothing.
    fn make_logs(&mut self) -> TaskLogs {
        let mut logs = self.uthread.take_pooled_logs();
        logs.valid_ts = self.valid_ts;
        std::mem::swap(&mut logs.read_log, &mut self.bufs.read_log);
        std::mem::swap(&mut logs.task_read_log, &mut self.bufs.task_read_log);
        self.bufs.write_set.append_values_to(&mut logs.writes);
        logs.acquired.extend_from_slice(&self.bufs.acquired);
        logs
    }

    /// Commits the task: waits for every past task of the user-thread to
    /// complete, re-validates intra-thread conflicts, and then either waits
    /// for the commit-task (intermediate tasks) or commits the whole
    /// user-transaction (the commit-task).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] when the task (or its whole transaction) must roll
    /// back; the worker loop interprets the abort reason.
    pub(crate) fn task_commit(&mut self) -> Result<(), Abort> {
        // Wait for all past tasks of the user-thread to complete (line 66).
        loop {
            self.check_signals()?;
            if self.uthread.completed_task() >= self.serial.saturating_sub(1) {
                break;
            }
            self.uthread.wait_slice();
        }
        // Final intra-thread WAR validation (lines 69-70).
        self.maybe_validate_task()?;

        if !self.try_commit {
            // Intermediate task (lines 71-77): publish logs, mark completion,
            // then wait for the outcome of the whole user-transaction.
            let wrote = !self.bufs.write_set.is_empty();
            let logs = self.make_logs();
            self.txn.publish_logs(self.serial, logs);
            self.uthread.mark_completed(self.serial, wrote);
            loop {
                if self.txn.is_committed() {
                    // The commit-task dismantled the transaction's chain
                    // entries; hand the recycled buffers to the next task
                    // with a clean acquired list.
                    self.bufs.acquired.clear();
                    return Ok(());
                }
                if self.txn.rollback_started() {
                    return Err(Abort::new(AbortReason::TransactionAbortSignal));
                }
                self.uthread.wait_slice();
            }
        }
        // Commit-task: commit the whole user-transaction (lines 78-94).
        self.check_signals()?;
        self.commit_transaction()
    }

    /// Performs the user-transaction commit on behalf of every task.
    fn commit_transaction(&mut self) -> Result<(), Abort> {
        let own_logs = self.make_logs();
        let mut all = self.txn.collect_logs();
        all.push((self.serial, own_logs));
        all.sort_by_key(|(serial, _)| *serial);
        debug_assert_eq!(
            all.len() as u64,
            self.txn.n_tasks(),
            "commit-task must see the logs of every task of its transaction"
        );

        let read_only = all.iter().all(|(_, logs)| logs.is_read_only());
        if read_only {
            // Read user-transactions only need validation when their tasks
            // completed at different snapshots (§3.2 "Transaction Commit").
            let same_ts = all.windows(2).all(|w| w[0].1.valid_ts == w[1].1.valid_ts);
            if !same_ts {
                self.stats.bump(&self.stats.validations);
                let valid = all.iter().all(|(_, logs)| {
                    Self::validate_read_entries(self.substrate, &logs.read_log, None)
                });
                if !valid {
                    self.txn.request_abort();
                    self.recycle_collected_logs(all);
                    return Err(Abort::new(AbortReason::ReadValidation));
                }
            }
            self.finish_transaction_commit(false, all);
            return Ok(());
        }

        // Write transaction: acquire the r-locks of every written location.
        // The lock set and the pre-lock versions live together in the
        // recycled `commit_locks` scratch (sorted by lock index), which also
        // serves as the undo list if validation fails.
        self.txn.set_finishing();
        self.bufs.commit_locks.clear();
        self.bufs.commit_locks.extend(
            all.iter()
                .flat_map(|(_, logs)| logs.acquired.iter().map(|&idx| (idx, 0u64))),
        );
        self.bufs
            .commit_locks
            .sort_unstable_by_key(|&(idx, _)| idx.0);
        self.bufs.commit_locks.dedup_by_key(|&mut (idx, _)| idx);
        for slot in self.bufs.commit_locks.iter_mut() {
            slot.1 = self.substrate.locks.entry(slot.0).lock_version();
        }
        let ts = self.substrate.clock.tick();
        self.stats.bump(&self.stats.validations);
        let mut valid = true;
        for (_, logs) in &all {
            if !Self::validate_read_entries(
                self.substrate,
                &logs.read_log,
                Some(&self.bufs.commit_locks),
            ) {
                valid = false;
                break;
            }
        }
        if !valid {
            for &(idx, prev) in &self.bufs.commit_locks {
                self.substrate.locks.entry(idx).set_version(prev);
            }
            self.txn.request_abort();
            self.recycle_collected_logs(all);
            return Err(Abort::new(AbortReason::ReadValidation));
        }
        // Write back every task's buffered writes in program order — across
        // tasks by ascending serial, within a task in write-log order — so
        // later tasks' values win for locations written by several tasks and
        // the applied order is deterministic.
        for (_, logs) in &all {
            for &(addr, value) in &logs.writes {
                self.substrate.heap.store_committed(addr, value);
            }
        }
        // Publish the new version first, then remove the transaction's
        // speculative entries and release the write locks that become free.
        // The r-lock must be released (set_version) before the w-lock: a
        // contender that grabbed a prematurely-released w-lock could run
        // `lock_version` on the still-LOCKED r-lock, recording LOCKED as the
        // version to restore and racing its swap against our store.
        for i in 0..self.bufs.commit_locks.len() {
            let idx = self.bufs.commit_locks[i].0;
            let entry = self.substrate.locks.entry(idx);
            entry.set_version(ts);
            let mut chain = entry.chain();
            chain.remove_transaction(self.txn.start_serial(), self.txn.commit_serial());
            if chain.is_empty() {
                entry.release_writer_if(self.token);
            }
        }
        self.finish_transaction_commit(true, all);
        Ok(())
    }

    fn finish_transaction_commit(&mut self, wrote: bool, consumed_logs: Vec<(u64, TaskLogs)>) {
        self.stats.bump(&self.stats.tx_commits);
        txobs::tx_commit();
        self.txn.mark_committed();
        self.uthread.mark_completed(self.serial, wrote);
        // The transaction's chain entries are gone; nothing left to dismantle.
        self.bufs.acquired.clear();
        self.recycle_collected_logs(consumed_logs);
    }

    /// Returns a batch of consumed per-task logs (collected for a commit
    /// attempt, successful or not) to the user-thread's pool, so the next
    /// publications — including the rollback retry's — reuse their storage.
    fn recycle_collected_logs(&self, consumed_logs: Vec<(u64, TaskLogs)>) {
        for (_, logs) in consumed_logs {
            self.uthread.recycle_logs(logs);
        }
    }
}

impl TxMem for TaskCtx<'_> {
    fn read(&mut self, addr: WordAddr) -> Result<u64, Abort> {
        self.local_reads += 1;
        self.read_word(addr)
    }

    fn write(&mut self, addr: WordAddr, value: u64) -> Result<(), Abort> {
        self.local_writes += 1;
        self.write_word(addr, value)
    }

    fn alloc(&mut self, words: u64) -> Result<WordAddr, Abort> {
        self.substrate
            .heap
            .alloc(words)
            .map_err(|_| Abort::new(AbortReason::OutOfMemory))
    }
}
