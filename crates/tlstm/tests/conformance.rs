//! Cross-runtime conformance: the same deterministic `txcollections` workload,
//! expressed once against the `TxMem` trait, must leave byte-identical
//! committed state when executed through SwissTM transactions and through
//! TLSTM speculative tasks (and must match a plain sequential reference run).

use std::sync::Arc;

use swisstm::SwisstmRuntime;
use tlstm::{task, TaskCtx, TlstmRuntime, TxnSpec};
use tlstm_testutil::{with_default_watchdog, TestRng};
use txcollections::{TxCounter, TxHashMap, TxQueue, TxRbTree};
use txmem::{Abort, TxConfig, TxMem};

/// One workload operation against the shared collection set.
#[derive(Debug, Clone, Copy)]
enum Op {
    TreeInsert(u64, u64),
    TreeRemove(u64),
    MapInsert(u64, u64),
    MapRemove(u64),
    Enqueue(u64),
    /// Dequeue one element and add it to the counter (links two structures
    /// inside one transaction, so partial execution would be observable).
    DequeueIntoCounter,
    CounterAdd(u64),
}

/// The collection handles (plain `Copy` word addresses).
#[derive(Debug, Clone, Copy)]
struct World {
    tree: TxRbTree,
    map: TxHashMap,
    queue: TxQueue,
    counter: TxCounter,
}

impl World {
    fn create<M: TxMem>(mem: &mut M) -> Result<Self, Abort> {
        Ok(World {
            tree: TxRbTree::create(mem)?,
            map: TxHashMap::create(mem, 8)?,
            queue: TxQueue::create(mem)?,
            counter: TxCounter::create(mem)?,
        })
    }

    fn apply<M: TxMem>(&self, mem: &mut M, op: Op) -> Result<(), Abort> {
        match op {
            Op::TreeInsert(k, v) => self.tree.insert(mem, k, v).map(|_| ()),
            Op::TreeRemove(k) => self.tree.remove(mem, k).map(|_| ()),
            Op::MapInsert(k, v) => self.map.insert(mem, k, v).map(|_| ()),
            Op::MapRemove(k) => self.map.remove(mem, k).map(|_| ()),
            Op::Enqueue(v) => self.queue.enqueue(mem, v),
            Op::DequeueIntoCounter => {
                if let Some(v) = self.queue.dequeue(mem)? {
                    self.counter.add(mem, v % 1000)?;
                }
                Ok(())
            }
            Op::CounterAdd(d) => self.counter.add(mem, d).map(|_| ()),
        }
    }

    /// Snapshot of all committed state, in a canonical order.
    fn snapshot<M: TxMem>(&self, mem: &mut M) -> Result<Snapshot, Abort> {
        let tree = self.tree.to_vec(mem)?;
        let mut map = self.map.to_vec(mem)?;
        map.sort_unstable();
        let mut queue = Vec::new();
        while let Some(v) = self.queue.dequeue(mem)? {
            queue.push(v);
        }
        Ok(Snapshot {
            tree,
            map,
            queue,
            counter: self.counter.get(mem)?,
        })
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Snapshot {
    tree: Vec<(u64, u64)>,
    map: Vec<(u64, u64)>,
    queue: Vec<u64>,
    counter: u64,
}

/// Deterministic stream of transactions (each a short list of ops).
fn generate_transactions(seed: u64, n_txns: usize) -> Vec<Vec<Op>> {
    let mut rng = TestRng::new(seed);
    (0..n_txns)
        .map(|_| {
            let len = 1 + rng.below(4) as usize;
            (0..len)
                .map(|_| match rng.below(7) {
                    0 => Op::TreeInsert(rng.below(64), rng.next_u64() % 1000),
                    1 => Op::TreeRemove(rng.below(64)),
                    2 => Op::MapInsert(rng.below(48), rng.next_u64() % 1000),
                    3 => Op::MapRemove(rng.below(48)),
                    4 => Op::Enqueue(rng.below(500)),
                    5 => Op::DequeueIntoCounter,
                    _ => Op::CounterAdd(rng.below(10)),
                })
                .collect()
        })
        .collect()
}

fn config(depth: usize) -> TxConfig {
    let mut cfg = TxConfig::small();
    cfg.heap_capacity_words = 1 << 22;
    cfg.spec_depth = depth;
    cfg
}

/// Executes the transaction stream on SwissTM, one transaction per `atomic`.
fn run_on_swisstm(txns: &[Vec<Op>]) -> Snapshot {
    let rt = SwisstmRuntime::new(config(1));
    let world = World::create(&mut rt.direct()).unwrap();
    let mut thread = rt.register_thread();
    for txn in txns {
        let txn = txn.clone();
        thread.atomic(|tx| {
            for &op in &txn {
                world.apply(tx, op)?;
            }
            Ok(())
        });
    }
    world.snapshot(&mut rt.direct()).unwrap()
}

/// Executes the transaction stream on TLSTM, splitting every transaction into
/// `split` speculative tasks.
fn run_on_tlstm(txns: &[Vec<Op>], depth: usize, split: usize) -> Snapshot {
    assert!(split >= 1 && split <= depth);
    let rt = TlstmRuntime::new(config(depth));
    let world = World::create(&mut rt.direct()).unwrap();
    let u = rt.register_uthread(depth);
    for txn in txns {
        let ops = Arc::new(txn.clone());
        let per_task = ops.len().div_ceil(split);
        let bodies: Vec<_> = (0..split)
            .map(|t| {
                let ops = Arc::clone(&ops);
                let lo = (t * per_task).min(ops.len());
                let hi = ((t + 1) * per_task).min(ops.len());
                task(move |ctx: &mut TaskCtx<'_>| {
                    for &op in &ops[lo..hi] {
                        world.apply(ctx, op)?;
                    }
                    Ok(())
                })
            })
            .collect();
        u.execute(vec![TxnSpec::new(bodies)]);
    }
    world.snapshot(&mut rt.direct()).unwrap()
}

/// Like [`run_on_swisstm`], but every transaction's first attempt applies its
/// operations and then forces an abort, so each transaction exercises the
/// thread's *recycled* context through a populated rollback before committing.
fn run_on_swisstm_with_aborts(txns: &[Vec<Op>]) -> Snapshot {
    let rt = SwisstmRuntime::new(config(1));
    let world = World::create(&mut rt.direct()).unwrap();
    let mut thread = rt.register_thread();
    for txn in txns {
        let txn = txn.clone();
        let mut first_attempt = true;
        thread.atomic(|tx| {
            for &op in &txn {
                world.apply(tx, op)?;
            }
            if first_attempt {
                first_attempt = false;
                return Err(Abort::user_retry());
            }
            Ok(())
        });
    }
    world.snapshot(&mut rt.direct()).unwrap()
}

/// Like [`run_on_tlstm`], but the first attempt of every transaction's
/// commit-task forces an abort, driving task rollback and re-execution
/// through the workers' recycled buffers on every transaction.
fn run_on_tlstm_with_aborts(txns: &[Vec<Op>], depth: usize, split: usize) -> Snapshot {
    use std::sync::atomic::{AtomicBool, Ordering};
    assert!(split >= 1 && split <= depth);
    let rt = TlstmRuntime::new(config(depth));
    let world = World::create(&mut rt.direct()).unwrap();
    let u = rt.register_uthread(depth);
    for txn in txns {
        let ops = Arc::new(txn.clone());
        let per_task = ops.len().div_ceil(split);
        let aborted_once = Arc::new(AtomicBool::new(false));
        let bodies: Vec<_> = (0..split)
            .map(|t| {
                let ops = Arc::clone(&ops);
                let aborted_once = Arc::clone(&aborted_once);
                let lo = (t * per_task).min(ops.len());
                let hi = ((t + 1) * per_task).min(ops.len());
                let is_commit_task = t == split - 1;
                task(move |ctx: &mut TaskCtx<'_>| {
                    for &op in &ops[lo..hi] {
                        world.apply(ctx, op)?;
                    }
                    if is_commit_task && !aborted_once.swap(true, Ordering::Relaxed) {
                        return ctx.retry();
                    }
                    Ok(())
                })
            })
            .collect();
        u.execute(vec![TxnSpec::new(bodies)]);
    }
    world.snapshot(&mut rt.direct()).unwrap()
}

/// Sequential reference execution through `DirectMem` (no concurrency
/// control; valid because the stream is applied in program order).
fn run_on_reference(txns: &[Vec<Op>]) -> Snapshot {
    let rt = SwisstmRuntime::new(config(1));
    let mut mem = rt.direct();
    let world = World::create(&mut mem).unwrap();
    for txn in txns {
        for &op in txn {
            world.apply(&mut mem, op).unwrap();
        }
    }
    world.snapshot(&mut mem).unwrap()
}

#[test]
fn swisstm_and_tlstm_commit_identical_state() {
    with_default_watchdog(|| {
        for seed in [1u64, 0xDEAD_BEEF, 42] {
            let txns = generate_transactions(seed, 250);
            let reference = run_on_reference(&txns);
            let swisstm = run_on_swisstm(&txns);
            assert_eq!(
                swisstm, reference,
                "SwissTM diverged from the sequential reference (seed {seed})"
            );
            for (depth, split) in [(2, 2), (4, 3)] {
                let tlstm = run_on_tlstm(&txns, depth, split);
                assert_eq!(
                    tlstm, reference,
                    "TLSTM (depth {depth}, split {split}) diverged from the \
                     sequential reference (seed {seed})"
                );
            }
        }
    });
}

#[test]
fn conformance_survives_forced_aborts_through_recycled_contexts() {
    // Context-reuse conformance: the recycled per-thread/per-worker buffers
    // must carry no state across the abort into the retry or into later
    // transactions — committed state must match the sequential reference
    // exactly even when every single transaction rolls back once first.
    with_default_watchdog(|| {
        for seed in [7u64, 0xAB0B7] {
            let txns = generate_transactions(seed, 150);
            let reference = run_on_reference(&txns);
            let swisstm = run_on_swisstm_with_aborts(&txns);
            assert_eq!(
                swisstm, reference,
                "SwissTM with recycled contexts + forced aborts diverged (seed {seed})"
            );
            for (depth, split) in [(2, 2), (3, 3)] {
                let tlstm = run_on_tlstm_with_aborts(&txns, depth, split);
                assert_eq!(
                    tlstm, reference,
                    "TLSTM (depth {depth}, split {split}) with forced aborts \
                     diverged (seed {seed})"
                );
            }
        }
    });
}

#[test]
fn conformance_holds_under_intra_transaction_dependencies() {
    // Every transaction enqueues then immediately dequeues-into-counter, so
    // the second task of the split observes the first task's speculative
    // write through the redo-log chain; any forwarding bug changes the
    // committed counter.
    with_default_watchdog(|| {
        let txns: Vec<Vec<Op>> = (0..200u64)
            .map(|i| {
                vec![
                    Op::Enqueue(i),
                    Op::DequeueIntoCounter,
                    Op::TreeInsert(i % 32, i),
                ]
            })
            .collect();
        let reference = run_on_reference(&txns);
        let swisstm = run_on_swisstm(&txns);
        let tlstm = run_on_tlstm(&txns, 3, 3);
        assert_eq!(swisstm, reference);
        assert_eq!(tlstm, reference);
        // The queue drains completely, so the counter is the whole story.
        assert_eq!(reference.queue, Vec::<u64>::new());
        assert_eq!(reference.counter, (0..200u64).sum::<u64>());
    });
}
