//! Counting-allocator proof that the TLSTM task paths are allocation-free.
//!
//! TLSTM's *orchestration* layer allocates a constant amount per submitted
//! user-transaction (the shared `TxnShared` handle, one work item and one
//! task closure per task) — but the task read/write/commit/rollback paths
//! must not allocate per *operation*: the worker's recycled `TaskBufs`, the
//! pooled `TaskLogs` and the lock chains' recycled entry buffers absorb all
//! speculative state in steady state.
//!
//! The proof: after warm-up, the allocation count of a batch of transactions
//! with **256 ops per task** must not exceed that of an identical batch with
//! **4 ops per task** by more than one allocation per transaction of slack.
//! Any per-operation allocation would add hundreds per transaction.
//!
//! This file deliberately contains a single `#[test]` so no concurrent test
//! pollutes the global counter.

use tlstm::{task, TaskCtx, TlstmRuntime, TxnSpec, UThread};
use tlstm_testutil::{allocation_count as allocations, CountingAlloc};
use txmem::{TxConfig, TxMem, WordAddr};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const TASKS: usize = 2;
/// Words each task owns privately (disjoint across tasks, so the batch is
/// deterministic: no intra-thread write/write conflicts).
const TASK_WORDS: u64 = 512;

/// Submits one user-transaction of [`TASKS`] tasks, each performing `ops`
/// reads and `ops` writes over its private slice of the region.
fn run_txn(u: &UThread, region: WordAddr, round: u64, ops: u64) {
    let mut bodies = Vec::with_capacity(TASKS);
    for t in 0..TASKS as u64 {
        bodies.push(task(move |ctx: &mut TaskCtx<'_>| {
            let base = t * TASK_WORDS;
            let mut acc = 0u64;
            for i in 0..ops {
                let w = base + (round * 31 + i * 7) % TASK_WORDS;
                acc = acc.wrapping_add(ctx.read(region.offset(w))?);
            }
            for i in 0..ops {
                let w = base + (round * 13 + i * 5) % TASK_WORDS;
                ctx.write(region.offset(w), acc ^ i)?;
            }
            Ok(())
        }));
    }
    u.execute(vec![TxnSpec::new(bodies)]);
}

fn run_batch(u: &UThread, region: WordAddr, rounds: std::ops::Range<u64>, ops: u64) -> u64 {
    let before = allocations();
    for round in rounds {
        run_txn(u, region, round, ops);
    }
    allocations() - before
}

#[test]
fn task_op_paths_do_not_allocate_per_operation() {
    let rt = TlstmRuntime::new(TxConfig::small());
    let region = rt.heap().alloc(TASKS as u64 * TASK_WORDS).unwrap();
    let u = rt.register_uthread(TASKS);

    // Warm-up: materialise heap segments, grow the workers' recycled
    // buffers, the chains' entry pools and the log pool to the footprint of
    // the *large* variant.
    for round in 0..32 {
        run_txn(&u, region, round, 256);
        run_txn(&u, region, round, 4);
    }

    let txns = 64u64;
    let small = run_batch(&u, region, 100..100 + txns, 4);
    let large = run_batch(&u, region, 200..200 + txns, 256);
    eprintln!("allocations over {txns} txns: {small} at 4 ops/task, {large} at 256 ops/task");

    // The per-transaction orchestration cost (TxnShared, work items, task
    // closures, channel traffic) is identical in both batches; any
    // per-operation allocation in the task paths would add ~500 allocations
    // per transaction to the large batch. Allow one allocation per
    // transaction of slack for incidental variance.
    assert!(
        large <= small + txns,
        "task paths allocate per operation: {txns} txns took {small} allocations \
         at 4 ops/task but {large} at 256 ops/task"
    );

    let stats = rt.stats();
    assert_eq!(stats.tx_commits, 64 + 2 * txns);
    assert!(stats.reads > 0 && stats.writes > 0);
}
