//! Stress tests of the TLSTM conflict machinery: deterministic forcing of
//! intra-thread WAR and WAW rollbacks, program-order commit under deep
//! speculation, and the task-aware contention manager under cross-thread
//! conflicts (SPECDEPTH >= 2 throughout).

use std::sync::Arc;
use std::time::Duration;

use tlstm::{task, TaskCtx, TlstmRuntime, TxnSpec};
use tlstm_testutil::{bounded_threads, with_default_watchdog};
use txmem::{TxConfig, TxMem};

fn config(depth: usize) -> TxConfig {
    let mut cfg = TxConfig::small();
    cfg.heap_capacity_words = 1 << 20;
    cfg.spec_depth = depth;
    cfg
}

/// Intra-thread WAR: the later task reads a word from committed state before
/// the earlier task (delayed on purpose) writes it speculatively. `validate-
/// task` must roll the later task back individually and its re-execution must
/// observe the speculative value, so the committed result reflects program
/// order.
#[test]
fn intra_thread_war_rolls_back_and_reexecutes_the_reader() {
    with_default_watchdog(|| {
        let rt = TlstmRuntime::new(config(2));
        // Separate blocks so the read word and the derived word map to
        // different lock entries: the conflict is then only detectable by
        // `validate-task` (WAR), not by write-lock contention (WAW).
        let a = rt.heap().alloc(64).unwrap();
        let b = rt.heap().alloc(64).unwrap();
        let u = rt.register_uthread(2);
        let rounds = 20u64;
        for round in 0..rounds {
            // Task 1 stalls, then writes `a`. Task 2 reads `a` (almost
            // certainly from committed state, given the stall) and derives
            // `b` from it; program order requires b == (round+1) * 2.
            let writer = task(move |ctx: &mut TaskCtx<'_>| {
                std::thread::sleep(Duration::from_millis(2));
                ctx.write(a, round + 1)
            });
            let reader = task(move |ctx: &mut TaskCtx<'_>| {
                let v = ctx.read(a)?;
                ctx.write(b, v * 2)
            });
            u.run_transaction(vec![writer, reader]);
            assert_eq!(rt.heap().load_committed(a), round + 1);
            assert_eq!(
                rt.heap().load_committed(b),
                (round + 1) * 2,
                "reader task committed a stale value in round {round}"
            );
        }
        let stats = rt.stats();
        assert_eq!(stats.tx_commits, rounds);
        // The stall makes the stale read near-deterministic; across 20 rounds
        // at least one WAR rollback must have been detected and resolved.
        assert!(
            stats.aborts_intra_war >= 1,
            "expected intra-thread WAR rollbacks, stats: {stats}"
        );
    });
}

/// Intra-thread WAW: the later task wins the write lock first; the delayed
/// earlier task must force it out (individual rollback) and the final
/// committed value must still be the later task's (program order).
#[test]
fn intra_thread_waw_rolls_back_the_future_writer() {
    with_default_watchdog(|| {
        let rt = TlstmRuntime::new(config(2));
        let a = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(2);
        let rounds = 20u64;
        for round in 0..rounds {
            let first = task(move |ctx: &mut TaskCtx<'_>| {
                std::thread::sleep(Duration::from_millis(2));
                ctx.write(a, round * 10 + 1)
            });
            let second = task(move |ctx: &mut TaskCtx<'_>| ctx.write(a, round * 10 + 2));
            u.run_transaction(vec![first, second]);
            assert_eq!(
                rt.heap().load_committed(a),
                round * 10 + 2,
                "program-order write did not win in round {round}"
            );
        }
        let stats = rt.stats();
        assert_eq!(stats.tx_commits, rounds);
        // The future writer holds the lock when the past writer arrives, so
        // individual task rollbacks (signal or self-abort) must occur.
        assert!(
            stats.aborts_task_signal + stats.aborts_intra_waw >= 1,
            "expected intra-thread WAW rollbacks, stats: {stats}"
        );
    });
}

/// Deep speculation with every task touching the same word: commits must
/// still serialise in program order, observable through an append-only log.
#[test]
fn program_order_commit_under_deep_speculation() {
    with_default_watchdog(|| {
        let depth = 4;
        let rt = TlstmRuntime::new(config(depth));
        let n_txns = 40u64;
        let log = rt.heap().alloc(n_txns * 2).unwrap();
        let cursor = rt.heap().alloc(1).unwrap();
        let u = rt.register_uthread(depth);
        // Each transaction appends two entries from two different tasks; the
        // whole batch is submitted at once so tasks of future transactions
        // run speculatively alongside earlier ones.
        let batch: Vec<TxnSpec> = (0..n_txns)
            .map(|id| {
                let append = move |tag: u64| {
                    task(move |ctx: &mut TaskCtx<'_>| {
                        let pos = ctx.read(cursor)?;
                        ctx.write(log.offset(pos), id * 2 + tag)?;
                        ctx.write(cursor, pos + 1)
                    })
                };
                TxnSpec::new(vec![append(0), append(1)])
            })
            .collect();
        let outcomes = u.execute(batch);
        assert_eq!(outcomes.len(), n_txns as usize);
        assert_eq!(rt.heap().load_committed(cursor), n_txns * 2);
        let entries: Vec<u64> = (0..n_txns * 2)
            .map(|i| rt.heap().load_committed(log.offset(i)))
            .collect();
        let expected: Vec<u64> = (0..n_txns * 2).collect();
        assert_eq!(
            entries, expected,
            "commit order diverged from program order"
        );
    });
}

/// Task-aware contention management across user-threads: several uthreads run
/// multi-task read-modify-write transactions on one shared counter while also
/// appending to a private log. The counter must be exact (atomicity across
/// conflicts) and every private log must be in program order.
#[test]
fn task_aware_cm_preserves_atomicity_and_program_order_across_uthreads() {
    with_default_watchdog(|| {
        let n_threads = bounded_threads(4) as u64;
        let per_thread = 60u64;
        let rt = TlstmRuntime::new(config(2));
        let counter = rt.heap().alloc(1).unwrap();
        let logs = rt.heap().alloc(n_threads * per_thread).unwrap();
        let cursors = rt.heap().alloc(n_threads * 16).unwrap();
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let rt = Arc::clone(&rt);
                scope.spawn(move || {
                    let u = rt.register_uthread(2);
                    // Spread cursors across lock entries to avoid false
                    // sharing between uthreads' private state.
                    let cursor = cursors.offset(t * 16);
                    let log_base = logs.offset(t * per_thread);
                    for i in 0..per_thread {
                        let bump = task(move |ctx: &mut TaskCtx<'_>| {
                            let v = ctx.read(counter)?;
                            ctx.write(counter, v + 1)
                        });
                        let append = task(move |ctx: &mut TaskCtx<'_>| {
                            let pos = ctx.read(cursor)?;
                            ctx.write(log_base.offset(pos), i)?;
                            ctx.write(cursor, pos + 1)
                        });
                        u.run_transaction(vec![bump, append]);
                    }
                });
            }
        });
        assert_eq!(
            rt.heap().load_committed(counter),
            n_threads * per_thread,
            "increments lost or duplicated under contention"
        );
        for t in 0..n_threads {
            assert_eq!(rt.heap().load_committed(cursors.offset(t * 16)), per_thread);
            for i in 0..per_thread {
                assert_eq!(
                    rt.heap().load_committed(logs.offset(t * per_thread + i)),
                    i,
                    "uthread {t} log out of program order at {i}"
                );
            }
        }
        let stats = rt.stats();
        assert_eq!(stats.tx_commits, n_threads * per_thread);
        assert_eq!(stats.task_commits, 2 * n_threads * per_thread);
    });
}

/// A transaction rolled back as a whole (by the contention manager) must
/// restart all of its tasks together and still commit with consistent state.
#[test]
fn whole_transaction_rollbacks_keep_multi_word_invariants() {
    with_default_watchdog(|| {
        let n_threads = bounded_threads(3) as u64;
        let rt = TlstmRuntime::new(config(2));
        // Two words under (very likely) different locks, kept equal by every
        // transaction; any torn commit or partial restart breaks equality.
        let a = rt.heap().alloc(64).unwrap();
        let b = rt.heap().alloc(64).unwrap();
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let rt = Arc::clone(&rt);
                scope.spawn(move || {
                    let u = rt.register_uthread(2);
                    for i in 0..120u64 {
                        let stamp = t * 1_000_000 + i;
                        let t1 = task(move |ctx: &mut TaskCtx<'_>| {
                            let cur = ctx.read(a)?;
                            ctx.write(a, cur ^ stamp)
                        });
                        let t2 = task(move |ctx: &mut TaskCtx<'_>| {
                            let cur = ctx.read(b)?;
                            let target = ctx.read(a)?;
                            let _ = cur;
                            ctx.write(b, target)
                        });
                        u.run_transaction(vec![t1, t2]);
                    }
                });
            }
        });
        assert_eq!(
            rt.heap().load_committed(a),
            rt.heap().load_committed(b),
            "a/b invariant broken by a partial transaction restart"
        );
    });
}
