//! Cross-crate integration tests: transactional collections driven by TLSTM
//! tasks and SwissTM transactions, equivalence between the two runtimes on
//! identical operation streams, and stress tests of the conflict machinery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use swisstm::SwisstmRuntime;
use tlstm::{task, TaskCtx, TlstmRuntime, TxnSpec};
use tlstm_testutil::with_default_watchdog;
use txcollections::{TxHashMap, TxRbTree};
use txmem::{TxConfig, TxMem};

fn config(depth: usize) -> TxConfig {
    TxConfig {
        heap_capacity_words: 1 << 22,
        spec_depth: depth,
        ..TxConfig::default()
    }
}

#[test]
fn rbtree_inserts_from_multiple_tasks_appear_exactly_once() {
    let rt = TlstmRuntime::new(config(3));
    let tree = TxRbTree::create(&mut rt.direct()).unwrap();
    let u = rt.register_uthread(3);
    // 30 transactions, each inserting 3 keys from 3 different tasks.
    for txn in 0..30u64 {
        let bodies = (0..3u64)
            .map(|t| {
                let key = txn * 3 + t;
                task(move |ctx: &mut TaskCtx<'_>| {
                    tree.insert(ctx, key, key * 10)?;
                    Ok(())
                })
            })
            .collect();
        u.execute(vec![TxnSpec::new(bodies)]);
    }
    let mut mem = rt.direct();
    assert_eq!(tree.len(&mut mem).unwrap(), 90);
    for key in 0..90u64 {
        assert_eq!(tree.get(&mut mem, key).unwrap(), Some(key * 10));
    }
    tree.check_invariants(&mut mem).unwrap();
}

#[test]
fn tlstm_and_swisstm_agree_on_a_deterministic_collection_workload() {
    // The same deterministic stream of map operations must leave the same
    // final state regardless of the runtime and of the task decomposition.
    let ops: Vec<(u64, u64)> = (0..300u64).map(|i| (i * 7 % 97, i)).collect();

    let swisstm_state = {
        let rt = SwisstmRuntime::new(config(1));
        let map = TxHashMap::create(&mut rt.direct(), 16).unwrap();
        let mut thread = rt.register_thread();
        for chunk in ops.chunks(4) {
            let chunk = chunk.to_vec();
            thread.atomic(|tx| {
                for &(k, v) in &chunk {
                    if v % 5 == 0 {
                        map.remove(tx, k)?;
                    } else {
                        map.insert(tx, k, v)?;
                    }
                }
                Ok(())
            });
        }
        let mut state = map.to_vec(&mut rt.direct()).unwrap();
        state.sort_unstable();
        state
    };

    let tlstm_state = {
        let rt = TlstmRuntime::new(config(2));
        let map = TxHashMap::create(&mut rt.direct(), 16).unwrap();
        let u = rt.register_uthread(2);
        for chunk in ops.chunks(4) {
            let chunk = Arc::new(chunk.to_vec());
            let mk = |lo: usize, hi: usize| {
                let chunk = Arc::clone(&chunk);
                task(move |ctx: &mut TaskCtx<'_>| {
                    for &(k, v) in &chunk[lo.min(chunk.len())..hi.min(chunk.len())] {
                        if v % 5 == 0 {
                            map.remove(ctx, k)?;
                        } else {
                            map.insert(ctx, k, v)?;
                        }
                    }
                    Ok(())
                })
            };
            let half = chunk.len().div_ceil(2);
            u.execute(vec![TxnSpec::new(vec![mk(0, half), mk(half, usize::MAX)])]);
        }
        let mut state = map.to_vec(&mut rt.direct()).unwrap();
        state.sort_unstable();
        state
    };

    assert_eq!(swisstm_state, tlstm_state);
}

#[test]
fn concurrent_uthreads_on_shared_tree_preserve_set_semantics() {
    // Task 1 of every transaction inserts `key`; task 2 observes that insert
    // *speculatively* and, only if it saw it, inserts `key + MIRROR`. After
    // everything commits, every key must therefore have its mirror — proving
    // the committed execution of task 2 saw task 1's speculative write — and
    // the tree must contain exactly the expected number of entries.
    const MIRROR: u64 = 1_000_000;
    with_default_watchdog(|| {
        let rt = TlstmRuntime::new(config(2));
        let tree = TxRbTree::create(&mut rt.direct()).unwrap();
        let inserted = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let rt = Arc::clone(&rt);
                let inserted = Arc::clone(&inserted);
                scope.spawn(move || {
                    let u = rt.register_uthread(2);
                    for i in 0..50u64 {
                        let key = worker * 1000 + i;
                        let t1 = task(move |ctx: &mut TaskCtx<'_>| {
                            tree.insert(ctx, key, worker)?;
                            Ok(())
                        });
                        let t2 = task(move |ctx: &mut TaskCtx<'_>| {
                            if tree.get(ctx, key)? == Some(worker) {
                                tree.insert(ctx, key + MIRROR, worker)?;
                            }
                            Ok(())
                        });
                        u.execute(vec![TxnSpec::new(vec![t1, t2])]);
                        inserted.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let mut mem = rt.direct();
        let total = inserted.load(Ordering::Relaxed);
        assert_eq!(tree.len(&mut mem).unwrap(), 2 * total);
        for worker in 0..4u64 {
            for i in 0..50u64 {
                let key = worker * 1000 + i;
                assert_eq!(tree.get(&mut mem, key).unwrap(), Some(worker));
                assert_eq!(
                    tree.get(&mut mem, key + MIRROR).unwrap(),
                    Some(worker),
                    "task 2 did not observe task 1's speculative insert for key {key}"
                );
            }
        }
        tree.check_invariants(&mut mem).unwrap();
    });
}

#[test]
fn write_skew_style_interleavings_remain_serialisable() {
    // Classic write skew: two user-threads each read *both* words and
    // increment only their own by one when x + y < 10. In every serial
    // execution the sum therefore never exceeds 10; under snapshot isolation
    // both sides could read a sum of 9 and push it to 11. The words live in
    // separate heap blocks so they map to different lock entries and the
    // conflict is only detectable through read validation, not through
    // write/write locking.
    with_default_watchdog(|| {
        let rt = TlstmRuntime::new(config(2));
        let x_block = rt.heap().alloc(64).unwrap();
        let y_block = rt.heap().alloc(64).unwrap();
        let words = [x_block, y_block];
        std::thread::scope(|scope| {
            for side in 0..2usize {
                let rt = Arc::clone(&rt);
                scope.spawn(move || {
                    let u = rt.register_uthread(2);
                    for _ in 0..200 {
                        u.atomic(move |ctx| {
                            let x = ctx.read(words[0])?;
                            let y = ctx.read(words[1])?;
                            if x + y < 10 {
                                let own = ctx.read(words[side])?;
                                ctx.write(words[side], own + 1)?;
                            } else {
                                // Reset so the test keeps exercising the race.
                                ctx.write(words[0], 0)?;
                                ctx.write(words[1], 0)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        let x = rt.heap().load_committed(x_block);
        let y = rt.heap().load_committed(y_block);
        assert!(x + y <= 10, "serialisability violated: {x} + {y} > 10");
    });
}

#[test]
fn deep_speculation_commits_long_pipelines() {
    // A single user-thread with a deep speculation window processes a long
    // pipeline of dependent transactions; the dependency chain forces
    // speculative task-to-task forwarding across transaction boundaries.
    let rt = TlstmRuntime::new(config(8));
    let acc = rt.heap().alloc(1).unwrap();
    let u = rt.register_uthread(8);
    let batch: Vec<TxnSpec> = (0..100u64)
        .map(|i| {
            TxnSpec::new(vec![
                task(move |ctx: &mut TaskCtx<'_>| {
                    let v = ctx.read(acc)?;
                    ctx.write(acc, v + i)?;
                    Ok(())
                }),
                task(move |ctx: &mut TaskCtx<'_>| {
                    let v = ctx.read(acc)?;
                    ctx.write(acc, v + 1)?;
                    Ok(())
                }),
            ])
        })
        .collect();
    let outcomes = u.execute(batch);
    assert_eq!(outcomes.len(), 100);
    let expected: u64 = (0..100u64).sum::<u64>() + 100;
    assert_eq!(rt.heap().load_committed(acc), expected);
}

#[test]
fn stats_reflect_committed_transactions_and_tasks() {
    let rt = TlstmRuntime::new(config(3));
    let word = rt.heap().alloc(1).unwrap();
    let u = rt.register_uthread(3);
    for _ in 0..10 {
        let bodies = (0..3)
            .map(|_| {
                task(move |ctx: &mut TaskCtx<'_>| {
                    let v = ctx.read(word)?;
                    ctx.write(word, v + 1)?;
                    Ok(())
                })
            })
            .collect();
        u.execute(vec![TxnSpec::new(bodies)]);
    }
    let stats = rt.stats();
    assert_eq!(stats.tx_commits, 10);
    assert_eq!(stats.task_commits, 30);
    assert!(stats.reads >= 30);
    assert!(stats.writes >= 30);
    assert_eq!(rt.heap().load_committed(word), 30);
}
