//! The log-structured transactional write set.
//!
//! SwissTM-style STMs keep the write set *log-structured*: an append-only
//! array of write entries in program order, plus a small index so
//! read-after-write checks stay cheap. This module provides that structure
//! for both runtimes, replacing the former `HashMap<u64, u64>` buffers:
//!
//! * **Append-only log** — one [`WriteEntry`] per distinct written word, in
//!   first-write program order. A later write to the same word updates the
//!   entry's value in place, so commit write-back applies every word exactly
//!   once, with its final (last-write-wins) value, in a deterministic order.
//! * **Bloom summary** — a 64-bit filter over the written addresses. The
//!   dominant read path ("was this address written by me?" — almost always
//!   *no*) is answered by two bit tests on one word, with no hash-table
//!   machinery touched at all.
//! * **Adaptive index** — small write sets (the common case) are probed with
//!   a branch-friendly linear scan; past [`SMALL_SCAN_MAX`] entries an
//!   open-addressed table of entry indices takes over. The table is
//!   generation-stamped, so [`WriteSet::clear`] is O(1) and never releases
//!   memory: a recycled write set reaches a steady state where transactions
//!   allocate nothing.

use crate::addr::WordAddr;
use crate::lock_table::LockIndex;

/// Write sets at most this large answer lookups by linear scan instead of
/// consulting the open-addressed index.
pub const SMALL_SCAN_MAX: usize = 8;

/// Multiplier of the Fibonacci (multiplicative) hash used for both the bloom
/// signature and the index slot; a single `u64` multiply, far cheaper than the
/// SipHash of `std` `HashMap`.
const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// One buffered transactional write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEntry {
    /// The written word.
    pub addr: WordAddr,
    /// The buffered (most recent) value.
    pub value: u64,
    /// The lock-table entry covering the word.
    pub lock: LockIndex,
}

/// A recyclable, log-structured write set.
///
/// See the [module docs](self) for the layout. All storage is retained across
/// [`clear`](Self::clear), so a long-lived write set stops allocating once it
/// has grown to the workload's steady-state size.
#[derive(Debug, Default)]
pub struct WriteSet {
    /// The write log, in first-write program order.
    log: Vec<WriteEntry>,
    /// Bloom summary of every written address.
    bloom: u64,
    /// Open-addressed index: each slot packs `(generation << 32) | (log index
    /// + 1)`; a slot whose generation differs from `gen` is empty. Allocated
    /// lazily the first time the log outgrows [`SMALL_SCAN_MAX`].
    slots: Box<[u64]>,
    /// Current index generation (starts at 1 so zeroed slots read as empty).
    gen: u32,
}

impl WriteSet {
    /// Creates an empty write set. No storage is allocated until writes occur.
    pub fn new() -> Self {
        WriteSet {
            log: Vec::new(),
            bloom: 0,
            slots: Box::new([]),
            gen: 1,
        }
    }

    /// Number of distinct words written.
    #[inline]
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// `true` if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// The two-bit bloom signature of an address.
    #[inline]
    fn signature(addr: WordAddr) -> u64 {
        let h = addr.index().wrapping_mul(HASH_MULT);
        (1u64 << (h >> 58)) | (1u64 << ((h >> 52) & 63))
    }

    /// `true` if `addr` *may* have been written (bloom probe; false positives
    /// possible, false negatives not).
    #[inline]
    pub fn maybe_written(&self, addr: WordAddr) -> bool {
        let sig = Self::signature(addr);
        self.bloom & sig == sig
    }

    /// Position of `addr` in the log, if present. Assumes the bloom probe
    /// already passed (it is re-run by the public entry points).
    #[inline]
    fn position(&self, addr: WordAddr) -> Option<usize> {
        if self.log.len() <= SMALL_SCAN_MAX {
            return self.log.iter().position(|e| e.addr == addr);
        }
        debug_assert!(!self.slots.is_empty());
        let mask = self.slots.len() - 1;
        let mut slot = (addr.index().wrapping_mul(HASH_MULT) >> 32) as usize & mask;
        loop {
            let packed = self.slots[slot];
            if (packed >> 32) as u32 != self.gen || packed as u32 == 0 {
                return None;
            }
            let idx = (packed as u32 - 1) as usize;
            if self.log[idx].addr == addr {
                return Some(idx);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The buffered value of `addr`, if this set wrote it.
    ///
    /// The bloom filter makes the dominant "not written by me" answer cost
    /// two bit tests; only bloom-positive addresses proceed to the scan/index.
    #[inline]
    pub fn lookup(&self, addr: WordAddr) -> Option<u64> {
        if !self.maybe_written(addr) {
            return None;
        }
        self.position(addr).map(|i| self.log[i].value)
    }

    /// Updates the buffered value of `addr` if it is already in the set.
    /// Returns `false` (definitely absent) otherwise.
    #[inline]
    pub fn update(&mut self, addr: WordAddr, value: u64) -> bool {
        if !self.maybe_written(addr) {
            return false;
        }
        match self.position(addr) {
            Some(i) => {
                self.log[i].value = value;
                true
            }
            None => false,
        }
    }

    /// Appends a write of a word **not yet present** in the set (the caller
    /// established absence via [`update`](Self::update) or
    /// [`lookup`](Self::lookup) returning negative).
    pub fn insert_new(&mut self, addr: WordAddr, value: u64, lock: LockIndex) {
        debug_assert!(
            self.position_slow(addr).is_none(),
            "insert_new called for an address already in the write set"
        );
        self.bloom |= Self::signature(addr);
        self.log.push(WriteEntry { addr, value, lock });
        if self.log.len() > SMALL_SCAN_MAX {
            // The first crossing of the scan threshold must (re-)index the
            // entries appended while scanning was in force — even when the
            // slot table is already large from a previous generation.
            if self.log.len() == SMALL_SCAN_MAX + 1 || self.log.len() * 2 > self.slots.len() {
                self.rebuild_index();
            } else {
                self.index_insert(self.log.len() - 1);
            }
        }
    }

    /// Exhaustive scan, used only by debug assertions.
    fn position_slow(&self, addr: WordAddr) -> Option<usize> {
        self.log.iter().position(|e| e.addr == addr)
    }

    /// (Re-)indexes every log entry, growing the slot table as needed.
    fn rebuild_index(&mut self) {
        let needed = (self.log.len() * 4).next_power_of_two().max(32);
        if self.slots.len() < needed {
            self.slots = vec![0u64; needed].into_boxed_slice();
            self.gen = 1;
        } else {
            self.bump_generation();
        }
        for i in 0..self.log.len() {
            self.index_insert(i);
        }
    }

    /// Inserts log entry `i` into the open-addressed index.
    fn index_insert(&mut self, i: usize) {
        let mask = self.slots.len() - 1;
        let addr = self.log[i].addr;
        let mut slot = (addr.index().wrapping_mul(HASH_MULT) >> 32) as usize & mask;
        loop {
            let packed = self.slots[slot];
            if (packed >> 32) as u32 != self.gen || packed as u32 == 0 {
                self.slots[slot] = (u64::from(self.gen) << 32) | (i as u64 + 1);
                return;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Advances the index generation, wiping the slots only on the (every
    /// four billion clears) generation wrap-around.
    fn bump_generation(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.slots.fill(0);
            self.gen = 1;
        }
    }

    /// Empties the set in O(1), retaining all storage for reuse.
    pub fn clear(&mut self) {
        self.log.clear();
        self.bloom = 0;
        if !self.slots.is_empty() {
            self.bump_generation();
        }
    }

    /// The write log in first-write program order; each written word appears
    /// exactly once, carrying its final value. Commit write-back iterates
    /// this, which makes the applied order deterministic.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &WriteEntry> {
        self.log.iter()
    }

    /// Appends the `(addr, value)` pairs of the log, in log order, to `out`.
    pub fn append_values_to(&self, out: &mut Vec<(WordAddr, u64)>) {
        out.extend(self.log.iter().map(|e| (e.addr, e.value)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u64) -> WordAddr {
        WordAddr::new(i)
    }

    fn lock(i: u32) -> LockIndex {
        LockIndex(i)
    }

    #[test]
    fn lookup_update_insert_round_trip() {
        let mut ws = WriteSet::new();
        assert!(ws.is_empty());
        assert_eq!(ws.lookup(a(5)), None);
        assert!(!ws.update(a(5), 1));
        ws.insert_new(a(5), 1, lock(0));
        assert_eq!(ws.lookup(a(5)), Some(1));
        assert!(ws.update(a(5), 2));
        assert_eq!(ws.lookup(a(5)), Some(2));
        assert_eq!(ws.len(), 1, "update must not append a second entry");
        assert_eq!(ws.lookup(a(6)), None);
    }

    #[test]
    fn log_preserves_first_write_order_with_final_values() {
        let mut ws = WriteSet::new();
        for (addr, v) in [(3u64, 30u64), (1, 10), (2, 20)] {
            ws.insert_new(a(addr), v, lock(addr as u32));
        }
        assert!(ws.update(a(3), 33));
        assert!(ws.update(a(1), 11));
        let entries: Vec<(u64, u64)> = ws.iter().map(|e| (e.addr.index(), e.value)).collect();
        assert_eq!(entries, vec![(3, 33), (1, 11), (2, 20)]);
    }

    #[test]
    fn large_sets_promote_to_the_index_and_stay_correct() {
        let mut ws = WriteSet::new();
        let n = 1000u64;
        for i in 0..n {
            // Spread addresses to mix bloom/index slots.
            ws.insert_new(a(i * 37 + 5), i, lock(i as u32));
        }
        assert_eq!(ws.len(), n as usize);
        for i in 0..n {
            assert_eq!(ws.lookup(a(i * 37 + 5)), Some(i), "entry {i} lost");
        }
        assert_eq!(ws.lookup(a(1)), None);
        assert!(ws.update(a(5), 999));
        assert_eq!(ws.lookup(a(5)), Some(999));
    }

    #[test]
    fn clear_is_complete_and_recycles_storage() {
        let mut ws = WriteSet::new();
        for i in 0..100u64 {
            ws.insert_new(a(i), i, lock(0));
        }
        let slots_before = ws.slots.len();
        let cap_before = ws.log.capacity();
        ws.clear();
        assert!(ws.is_empty());
        for i in 0..100u64 {
            assert_eq!(ws.lookup(a(i)), None, "stale entry {i} after clear");
        }
        assert_eq!(ws.slots.len(), slots_before, "index storage released");
        assert_eq!(ws.log.capacity(), cap_before, "log storage released");
        // The recycled set is fully usable.
        ws.insert_new(a(7), 70, lock(1));
        assert_eq!(ws.lookup(a(7)), Some(70));
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn recycled_set_indexes_pre_threshold_entries() {
        // Regression: after a clear, the slot table is already allocated, so
        // the threshold-crossing rebuild must still re-index the entries
        // appended while the set was in linear-scan mode — otherwise updates
        // miss them and writes duplicate.
        let mut ws = WriteSet::new();
        for i in 0..100u64 {
            ws.insert_new(a(i), i, lock(0));
        }
        ws.clear();
        for round in 0..3 {
            for i in 0..40u64 {
                if !ws.update(a(i), i + round) {
                    ws.insert_new(a(i), i + round, lock(0));
                }
            }
            assert_eq!(ws.len(), 40, "round {round} duplicated entries");
            for i in 0..40u64 {
                assert_eq!(ws.lookup(a(i)), Some(i + round));
            }
            ws.clear();
        }
    }

    #[test]
    fn generation_wrap_wipes_the_slots() {
        let mut ws = WriteSet::new();
        for i in 0..32u64 {
            ws.insert_new(a(i), i, lock(0));
        }
        ws.gen = u32::MAX;
        ws.clear(); // wraps to 0 -> wiped, reset to 1
        assert_eq!(ws.gen, 1);
        assert!(ws.slots.iter().all(|&s| s == 0));
        ws.insert_new(a(3), 3, lock(0));
        assert_eq!(ws.lookup(a(3)), Some(3));
    }

    #[test]
    fn bloom_never_reports_false_negatives() {
        let mut ws = WriteSet::new();
        for i in (0..500u64).step_by(7) {
            ws.insert_new(a(i), i, lock(0));
            assert!(ws.maybe_written(a(i)));
        }
        for i in (0..500u64).step_by(7) {
            assert!(ws.maybe_written(a(i)));
        }
    }

    #[test]
    fn append_values_to_preserves_log_order() {
        let mut ws = WriteSet::new();
        ws.insert_new(a(9), 90, lock(0));
        ws.insert_new(a(4), 40, lock(1));
        ws.update(a(9), 91);
        let mut out = vec![(a(0), 0u64)];
        ws.append_values_to(&mut out);
        assert_eq!(out, vec![(a(0), 0), (a(9), 91), (a(4), 40)]);
    }
}
