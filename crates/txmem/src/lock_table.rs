//! The global lock table.
//!
//! SwissTM maintains a global table of lock pairs; every memory location maps
//! to one pair via its address (`map-addr-to-locks` in the pseudo-code):
//!
//! * the **r-lock** holds either the commit timestamp of the location's last
//!   committed write or the [`LOCKED`] sentinel while a committing
//!   transaction is writing the location back;
//! * the **w-lock** identifies the current writer. In TLSTM it additionally
//!   refers to the location's redo-log — the chain of speculative write
//!   entries of the owning user-thread's tasks ([`WriteChain`]).
//!
//! Multiple consecutive words share one lock entry (lock granularity,
//! `words_per_lock`), and the table has a fixed power-of-two size, so distinct
//! addresses can collide on the same entry. Collisions produce false conflicts
//! exactly as they do in SwissTM.
//!
//! ## Hot-path layout
//!
//! [`LockEntry`] is the most frequently touched shared structure in the
//! system, so its layout is pinned (and asserted by a test):
//!
//! * `#[repr(align(64))]` and exactly 64 bytes — one entry per cache line, so
//!   two threads hitting *different* entries never false-share, and one
//!   entry's r-lock/w-lock pair is always fetched together;
//! * the TLSTM write chain is **boxed and lazily allocated** behind a
//!   [`OnceLock`]: the common entries — everything SwissTM touches, and every
//!   TLSTM location that is only ever read — never pay for a chain, neither
//!   in memory nor in an allocation on first contact. Only the first
//!   *speculative write* under an entry allocates its chain, once, for the
//!   table's lifetime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::{Mutex, MutexGuard};

use crate::addr::WordAddr;
use crate::chain::WriteChain;
use crate::config::TxConfig;
use crate::owner::OwnerToken;

/// Sentinel stored in an r-lock while its locations are being written back by
/// a committing transaction.
pub const LOCKED: u64 = u64::MAX;

/// Index of a lock entry in the global table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockIndex(pub u32);

/// One (r-lock, w-lock) pair of the global table.
///
/// Cache-line sized and aligned (see the [module docs](self)); the write
/// chain is boxed and allocated lazily on the first speculative write.
#[derive(Debug)]
#[repr(align(64))]
pub struct LockEntry {
    /// Version number of the last commit that wrote a location covered by
    /// this entry, or [`LOCKED`].
    rlock: AtomicU64,
    /// Raw [`OwnerToken`]: 0 when unlocked, `ptid + 1` when a user-thread
    /// (TLSTM) or transaction (SwissTM) holds the write lock.
    writer: AtomicU64,
    /// Speculative redo-log chain of the owning user-thread (TLSTM only),
    /// boxed out of line and allocated on first use.
    chain: OnceLock<Box<Mutex<WriteChain>>>,
}

impl Default for LockEntry {
    fn default() -> Self {
        LockEntry {
            rlock: AtomicU64::new(0),
            writer: AtomicU64::new(OwnerToken::UNLOCKED.raw()),
            chain: OnceLock::new(),
        }
    }
}

impl LockEntry {
    /// Reads the r-lock: the commit version, or [`LOCKED`].
    #[inline]
    pub fn version(&self) -> u64 {
        self.rlock.load(Ordering::Acquire)
    }

    /// `true` if the r-lock currently holds the [`LOCKED`] sentinel.
    #[inline]
    pub fn is_version_locked(&self) -> bool {
        self.version() == LOCKED
    }

    /// Locks the r-lock for commit write-back. Only the holder of the w-lock
    /// may call this, so a plain store is sufficient. Returns the previous
    /// version so the caller can restore it if the commit later fails
    /// validation.
    #[inline]
    pub fn lock_version(&self) -> u64 {
        self.rlock.swap(LOCKED, Ordering::AcqRel)
    }

    /// Publishes a new commit timestamp in the r-lock (releasing it).
    #[inline]
    pub fn set_version(&self, ts: u64) {
        debug_assert_ne!(ts, LOCKED);
        self.rlock.store(ts, Ordering::Release);
    }

    /// Current owner token of the w-lock.
    #[inline]
    pub fn writer_token(&self) -> OwnerToken {
        OwnerToken::from_raw(self.writer.load(Ordering::Acquire))
    }

    /// Attempts to acquire the w-lock for `token`; succeeds only when the lock
    /// is currently unlocked. Returns the token observed on failure.
    #[inline]
    pub fn try_acquire_writer(&self, token: OwnerToken) -> Result<(), OwnerToken> {
        match self.writer.compare_exchange(
            OwnerToken::UNLOCKED.raw(),
            token.raw(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(observed) => Err(OwnerToken::from_raw(observed)),
        }
    }

    /// Releases the w-lock. The caller must hold it.
    #[inline]
    pub fn release_writer(&self) {
        self.writer
            .store(OwnerToken::UNLOCKED.raw(), Ordering::Release);
    }

    /// Releases the w-lock only if `token` still owns it.
    #[inline]
    pub fn release_writer_if(&self, token: OwnerToken) -> bool {
        self.writer
            .compare_exchange(
                token.raw(),
                OwnerToken::UNLOCKED.raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Locks and returns the speculative write chain of this entry,
    /// allocating the chain on first use.
    ///
    /// Writers (which are about to install a chain entry anyway) call this;
    /// pure inspection paths should prefer [`Self::try_chain`], which never
    /// allocates.
    #[inline]
    pub fn chain(&self) -> MutexGuard<'_, WriteChain> {
        self.chain
            .get_or_init(|| Box::new(Mutex::new(WriteChain::new())))
            .lock()
    }

    /// Locks and returns the chain **iff it has ever been allocated**.
    ///
    /// `None` means no task has ever written speculatively under this entry,
    /// which callers treat exactly like an empty chain. Read-side and
    /// contention-manager inspection use this so that read-only locations
    /// never cause a chain allocation.
    #[inline]
    pub fn try_chain(&self) -> Option<MutexGuard<'_, WriteChain>> {
        self.chain.get().map(|m| m.lock())
    }

    /// `true` if the chain has been allocated (diagnostics / tests).
    #[inline]
    pub fn chain_allocated(&self) -> bool {
        self.chain.get().is_some()
    }
}

/// The global table of lock pairs.
#[derive(Debug)]
pub struct LockTable {
    entries: Box<[LockEntry]>,
    mask: u64,
    word_shift: u32,
}

impl LockTable {
    /// Builds a table from the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TxConfig::validate`].
    pub fn new(config: &TxConfig) -> Self {
        config
            .validate()
            .expect("invalid TxConfig passed to LockTable::new");
        let len = 1usize << config.lock_table_bits;
        let mut entries = Vec::with_capacity(len);
        entries.resize_with(len, LockEntry::default);
        LockTable {
            entries: entries.into_boxed_slice(),
            mask: (len - 1) as u64,
            word_shift: config.words_per_lock.trailing_zeros(),
        }
    }

    /// Number of entries in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the table has no entries (never the case for a valid config).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maps a word address to its lock index (`map-addr-to-locks`).
    #[inline]
    pub fn index_for(&self, addr: WordAddr) -> LockIndex {
        LockIndex(((addr.index() >> self.word_shift) & self.mask) as u32)
    }

    /// Returns the entry at a given index.
    #[inline]
    pub fn entry(&self, index: LockIndex) -> &LockEntry {
        &self.entries[index.0 as usize]
    }

    /// Maps a word address directly to its lock entry.
    #[inline]
    pub fn entry_for(&self, addr: WordAddr) -> &LockEntry {
        self.entry(self.index_for(addr))
    }

    /// Maps a word address to `(index, entry)`.
    #[inline]
    pub fn lookup(&self, addr: WordAddr) -> (LockIndex, &LockEntry) {
        let idx = self.index_for(addr);
        (idx, self.entry(idx))
    }

    /// Validates a read log against the table: every `(lock, observed
    /// version)` entry must still hold its observed version.
    ///
    /// `locked_by_me` lists the `(lock, pre-lock version)` pairs of r-locks
    /// the calling transaction itself [`LOCKED`] during commit, **sorted by
    /// lock index**; an entry reading [`LOCKED`] is still valid if the
    /// caller locked it and the pre-lock version matches the observation.
    /// Shared by the SwissTM and TLSTM commit/extension paths.
    pub fn validate_read_log(
        &self,
        read_log: &[(LockIndex, u64)],
        locked_by_me: Option<&[(LockIndex, u64)]>,
    ) -> bool {
        for &(idx, observed) in read_log {
            let current = self.entry(idx).version();
            if current == observed {
                continue;
            }
            if current == LOCKED {
                if let Some(mine) = locked_by_me {
                    if mine
                        .binary_search_by_key(&idx, |&(i, _)| i)
                        .map(|pos| mine[pos].1 == observed)
                        .unwrap_or(false)
                    {
                        continue;
                    }
                }
            }
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LockTable {
        LockTable::new(&TxConfig::small())
    }

    #[test]
    fn adjacent_words_share_a_lock() {
        let t = table();
        // With words_per_lock = 4, words 0..4 share an entry.
        assert_eq!(t.index_for(WordAddr::new(0)), t.index_for(WordAddr::new(3)));
        assert_ne!(t.index_for(WordAddr::new(0)), t.index_for(WordAddr::new(4)));
    }

    #[test]
    fn table_wraps_around_causing_false_sharing() {
        let t = table();
        let entries = t.len() as u64;
        let words_per_lock = 4;
        let a = WordAddr::new(0);
        let b = WordAddr::new(entries * words_per_lock);
        assert_eq!(t.index_for(a), t.index_for(b));
    }

    #[test]
    fn version_lock_cycle() {
        let t = table();
        let e = t.entry_for(WordAddr::new(0));
        assert_eq!(e.version(), 0);
        assert!(!e.is_version_locked());
        let prev = e.lock_version();
        assert_eq!(prev, 0);
        assert!(e.is_version_locked());
        e.set_version(17);
        assert_eq!(e.version(), 17);
    }

    #[test]
    fn writer_acquire_release_cycle() {
        let t = table();
        let e = t.entry_for(WordAddr::new(8));
        let me = OwnerToken::from_id(1);
        let other = OwnerToken::from_id(2);
        assert!(e.try_acquire_writer(me).is_ok());
        assert_eq!(e.writer_token(), me);
        assert_eq!(e.try_acquire_writer(other), Err(me));
        assert!(!e.release_writer_if(other));
        assert!(e.release_writer_if(me));
        assert!(e.writer_token().is_unlocked());
        assert!(e.try_acquire_writer(other).is_ok());
        e.release_writer();
        assert!(e.writer_token().is_unlocked());
    }

    #[test]
    fn chain_is_reachable_through_entry() {
        let t = table();
        let e = t.entry_for(WordAddr::new(16));
        assert!(e.chain().is_empty());
    }

    #[test]
    fn lock_entry_is_exactly_one_cache_line() {
        // Pinned layout: any accidental field growth or padding regression
        // reintroduces false sharing between neighbouring entries and fails
        // here rather than silently costing throughput.
        assert_eq!(std::mem::size_of::<LockEntry>(), 64);
        assert_eq!(std::mem::align_of::<LockEntry>(), 64);
    }

    #[test]
    fn chains_are_lazily_allocated() {
        let t = table();
        let e = t.entry_for(WordAddr::new(32));
        assert!(!e.chain_allocated(), "fresh entries must carry no chain");
        assert!(e.try_chain().is_none(), "try_chain must not allocate");
        assert!(!e.chain_allocated());
        // First real chain access allocates, once.
        assert!(e.chain().is_empty());
        assert!(e.chain_allocated());
        assert!(e.try_chain().is_some());
        // The version/writer protocol never needs the chain.
        let f = t.entry_for(WordAddr::new(64));
        let me = OwnerToken::from_id(9);
        assert!(f.try_acquire_writer(me).is_ok());
        let _ = f.lock_version();
        f.set_version(3);
        f.release_writer();
        assert!(!f.chain_allocated());
    }

    #[test]
    fn validate_read_log_honours_own_commit_locks() {
        let t = table();
        let (i0, e0) = t.lookup(WordAddr::new(0));
        let (i1, e1) = t.lookup(WordAddr::new(4));
        e0.set_version(5);
        e1.set_version(7);
        let log = vec![(i0, 5u64), (i1, 7u64)];
        assert!(t.validate_read_log(&log, None));
        // A foreign commit lock invalidates the entry...
        e0.lock_version();
        assert!(!t.validate_read_log(&log, None));
        // ...unless it is our own and the pre-lock version matches.
        let mut mine = vec![(i0, 5u64)];
        mine.sort_unstable_by_key(|&(i, _)| i.0);
        assert!(t.validate_read_log(&log, Some(&mine)));
        assert!(!t.validate_read_log(&log, Some(&[(i0, 4u64)])));
        // A genuinely newer version always fails.
        e0.set_version(9);
        assert!(!t.validate_read_log(&log, Some(&mine)));
    }

    #[test]
    fn lookup_is_consistent_with_index_for() {
        let t = table();
        for i in [0u64, 5, 100, 1023, 4096] {
            let (idx, entry) = t.lookup(WordAddr::new(i));
            assert_eq!(idx, t.index_for(WordAddr::new(i)));
            assert!(std::ptr::eq(entry, t.entry(idx)));
        }
    }
}
