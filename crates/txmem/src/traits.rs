//! The uniform transactional access trait.
//!
//! Transactional data structures (`txcollections`) and benchmark workloads are
//! written against [`TxMem`] so that the exact same code runs on the SwissTM
//! baseline and on TLSTM tasks. This mirrors the paper's methodology: both
//! systems execute identical benchmark code, only the runtime differs.

use crate::addr::WordAddr;
use crate::error::Abort;

/// Word-granularity transactional memory access.
///
/// Implementations are the SwissTM `Transaction` handle and the TLSTM
/// `TaskCtx` handle. All operations may fail with [`Abort`], which the caller
/// must propagate (`?`) so the runtime can roll back and re-execute.
pub trait TxMem {
    /// Transactionally reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] when the read would violate consistency and the
    /// enclosing transaction/task must roll back.
    fn read(&mut self, addr: WordAddr) -> Result<u64, Abort>;

    /// Transactionally writes `value` to the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] when the write loses a conflict and the enclosing
    /// transaction/task must roll back.
    fn write(&mut self, addr: WordAddr, value: u64) -> Result<(), Abort>;

    /// Allocates a zero-initialised block of `words` words inside the
    /// transaction. Allocation survives aborts (the block is simply leaked on
    /// rollback), which matches the behaviour of research STM prototypes.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] (out-of-memory) if the heap is exhausted.
    fn alloc(&mut self, words: u64) -> Result<WordAddr, Abort>;

    // --- typed helpers -----------------------------------------------------

    /// Reads a word and interprets it as a signed integer.
    fn read_i64(&mut self, addr: WordAddr) -> Result<i64, Abort> {
        Ok(self.read(addr)? as i64)
    }

    /// Writes a signed integer.
    fn write_i64(&mut self, addr: WordAddr, value: i64) -> Result<(), Abort> {
        self.write(addr, value as u64)
    }

    /// Reads a word and interprets it as a reference (`NULL_ADDR` ⇒ `None`).
    fn read_ref(&mut self, addr: WordAddr) -> Result<Option<WordAddr>, Abort> {
        let raw = self.read(addr)?;
        if raw == crate::addr::NULL_ADDR {
            Ok(None)
        } else {
            Ok(Some(WordAddr::new(raw)))
        }
    }

    /// Writes a reference (`None` ⇒ `NULL_ADDR`).
    fn write_ref(&mut self, addr: WordAddr, target: Option<WordAddr>) -> Result<(), Abort> {
        self.write(addr, target.map_or(crate::addr::NULL_ADDR, |t| t.index()))
    }

    /// Reads a word and interprets it as a boolean (non-zero ⇒ `true`).
    fn read_bool(&mut self, addr: WordAddr) -> Result<bool, Abort> {
        Ok(self.read(addr)? != 0)
    }

    /// Writes a boolean as 0 / 1.
    fn write_bool(&mut self, addr: WordAddr, value: bool) -> Result<(), Abort> {
        self.write(addr, u64::from(value))
    }
}

/// Mutable references forward transparently, so code generic over `M: TxMem`
/// can also be driven through `&mut dyn TxMem` trait objects (the `txkv`
/// durable front-end hands closures a `&mut dyn TxMem` to stay generic over
/// both runtimes without being generic itself).
impl<M: TxMem + ?Sized> TxMem for &mut M {
    fn read(&mut self, addr: WordAddr) -> Result<u64, Abort> {
        (**self).read(addr)
    }

    fn write(&mut self, addr: WordAddr, value: u64) -> Result<(), Abort> {
        (**self).write(addr, value)
    }

    fn alloc(&mut self, words: u64) -> Result<WordAddr, Abort> {
        (**self).alloc(words)
    }
}

/// A trivial, non-concurrent [`TxMem`] that applies operations directly to a
/// heap without any concurrency control.
///
/// It is used for non-transactional initialisation of benchmark data (the
/// paper's benchmarks also populate their data structures before starting the
/// measured phase) and as a reference implementation in tests of the
/// transactional collections.
#[derive(Debug)]
pub struct DirectMem<'h> {
    heap: &'h crate::heap::TxHeap,
}

impl<'h> DirectMem<'h> {
    /// Wraps a heap for direct access.
    pub fn new(heap: &'h crate::heap::TxHeap) -> Self {
        DirectMem { heap }
    }
}

impl TxMem for DirectMem<'_> {
    fn read(&mut self, addr: WordAddr) -> Result<u64, Abort> {
        Ok(self.heap.load_committed(addr))
    }

    fn write(&mut self, addr: WordAddr, value: u64) -> Result<(), Abort> {
        self.heap.store_committed(addr, value);
        Ok(())
    }

    fn alloc(&mut self, words: u64) -> Result<WordAddr, Abort> {
        self.heap
            .alloc(words)
            .map_err(|_| Abort::new(crate::error::AbortReason::OutOfMemory))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TxConfig;
    use crate::heap::TxHeap;

    #[test]
    fn direct_mem_round_trips_words() {
        let heap = TxHeap::new(&TxConfig::small());
        let mut mem = DirectMem::new(&heap);
        let a = mem.alloc(2).unwrap();
        mem.write(a, 7).unwrap();
        assert_eq!(mem.read(a).unwrap(), 7);
        assert_eq!(heap.load_committed(a), 7);
    }

    #[test]
    fn typed_helpers_round_trip() {
        let heap = TxHeap::new(&TxConfig::small());
        let mut mem = DirectMem::new(&heap);
        let a = mem.alloc(4).unwrap();

        mem.write_i64(a, -5).unwrap();
        assert_eq!(mem.read_i64(a).unwrap(), -5);

        mem.write_bool(a.offset(1), true).unwrap();
        assert!(mem.read_bool(a.offset(1)).unwrap());
        mem.write_bool(a.offset(1), false).unwrap();
        assert!(!mem.read_bool(a.offset(1)).unwrap());

        mem.write_ref(a.offset(2), Some(a)).unwrap();
        assert_eq!(mem.read_ref(a.offset(2)).unwrap(), Some(a));
        mem.write_ref(a.offset(3), None).unwrap();
        assert_eq!(mem.read_ref(a.offset(3)).unwrap(), None);
    }

    #[test]
    fn fresh_word_reads_as_null_reference() {
        let heap = TxHeap::new(&TxConfig::small());
        let mut mem = DirectMem::new(&heap);
        let a = mem.alloc(1).unwrap();
        // Word 0 is reserved, so a zeroed reference field is a null reference.
        assert_eq!(mem.read_ref(a).unwrap(), None);
        assert!(!mem.read_bool(a).unwrap());
        assert_eq!(mem.read_i64(a).unwrap(), 0);
    }
}
