//! Runtime statistics.
//!
//! Both runtimes update a shared [`StatsCollector`]; the evaluation harness
//! and the tests read consistent snapshots through [`StatsCollector::snapshot`].
//! Counters are deliberately coarse (relaxed atomics) — they are diagnostics,
//! not part of the synchronisation protocol.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::AbortReason;

macro_rules! counters {
    ($(#[$collector_meta:meta])* collector $collector:ident;
     $(#[$snapshot_meta:meta])* snapshot $snapshot:ident;
     fields { $($(#[$field_meta:meta])* $field:ident),+ $(,)? }) => {
        $(#[$collector_meta])*
        #[derive(Debug, Default)]
        pub struct $collector {
            $($(#[$field_meta])* pub $field: AtomicU64,)+
        }

        $(#[$snapshot_meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct $snapshot {
            $($(#[$field_meta])* pub $field: u64,)+
        }

        impl $collector {
            /// Creates a collector with all counters at zero.
            pub fn new() -> Self {
                Self::default()
            }

            /// Takes a snapshot of all counters.
            pub fn snapshot(&self) -> $snapshot {
                $snapshot {
                    $($field: self.$field.load(Ordering::Relaxed),)+
                }
            }

            /// Resets every counter to zero.
            pub fn reset(&self) {
                $(self.$field.store(0, Ordering::Relaxed);)+
            }
        }
    };
}

counters! {
    /// Atomic counters describing runtime activity.
    collector StatsCollector;
    /// A point-in-time copy of [`StatsCollector`].
    snapshot StatsSnapshot;
    fields {
        /// User-transactions started (first attempt only).
        tx_starts,
        /// User-transactions committed.
        tx_commits,
        /// User-transaction aborts (whole-transaction rollbacks).
        tx_aborts,
        /// Speculative tasks started (first attempt only).
        task_starts,
        /// Speculative tasks committed (reached retirement).
        task_commits,
        /// Individual task rollbacks (task restarted without aborting the
        /// whole user-transaction).
        task_aborts,
        /// Transactional read operations.
        reads,
        /// Transactional write operations.
        writes,
        /// Aborts caused by failed read validation (inter-thread R/W).
        aborts_read_validation,
        /// Aborts caused by inter-thread write/write conflicts.
        aborts_inter_ww,
        /// Aborts caused by intra-thread write-after-read conflicts.
        aborts_intra_war,
        /// Aborts caused by intra-thread write-after-write conflicts.
        aborts_intra_waw,
        /// Aborts caused by an external abort-transaction signal.
        aborts_tx_signal,
        /// Aborts caused by an internal (single-task) abort signal.
        aborts_task_signal,
        /// Aborts requested explicitly by user code.
        aborts_user_retry,
        /// Aborts caused by allocation failure.
        aborts_oom,
        /// Successful read-log extensions (`extend`).
        extensions,
        /// Full task/transaction validations executed.
        validations,
        /// Times a reader had to wait for a past writer task to complete.
        reader_waits,
        /// Times the contention manager aborted the lock owner.
        cm_owner_aborts,
        /// Times the contention manager aborted the requester.
        cm_self_aborts,
    }
}

impl StatsCollector {
    /// Bumps a counter by one.
    #[inline]
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an abort with the given reason against the per-reason counters.
    /// The caller is responsible for also bumping `tx_aborts`/`task_aborts` as
    /// appropriate.
    pub fn record_abort_reason(&self, reason: AbortReason) {
        let counter = match reason {
            AbortReason::ReadValidation => &self.aborts_read_validation,
            AbortReason::InterThreadWriteConflict => &self.aborts_inter_ww,
            AbortReason::IntraThreadWar => &self.aborts_intra_war,
            AbortReason::IntraThreadWaw => &self.aborts_intra_waw,
            AbortReason::TransactionAbortSignal => &self.aborts_tx_signal,
            AbortReason::TaskAbortSignal => &self.aborts_task_signal,
            AbortReason::UserRetry => &self.aborts_user_retry,
            AbortReason::OutOfMemory => &self.aborts_oom,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Total aborts of any kind (transaction + individual task aborts).
    pub fn total_aborts(&self) -> u64 {
        self.tx_aborts + self.task_aborts
    }

    /// Commit rate: committed transactions over attempted commits.
    /// Returns 1.0 when nothing was attempted.
    pub fn commit_ratio(&self) -> f64 {
        let attempts = self.tx_commits + self.tx_aborts;
        if attempts == 0 {
            1.0
        } else {
            self.tx_commits as f64 / attempts as f64
        }
    }

    /// Difference between two snapshots (`self - earlier`), saturating at 0.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            tx_starts: self.tx_starts.saturating_sub(earlier.tx_starts),
            tx_commits: self.tx_commits.saturating_sub(earlier.tx_commits),
            tx_aborts: self.tx_aborts.saturating_sub(earlier.tx_aborts),
            task_starts: self.task_starts.saturating_sub(earlier.task_starts),
            task_commits: self.task_commits.saturating_sub(earlier.task_commits),
            task_aborts: self.task_aborts.saturating_sub(earlier.task_aborts),
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            aborts_read_validation: self
                .aborts_read_validation
                .saturating_sub(earlier.aborts_read_validation),
            aborts_inter_ww: self.aborts_inter_ww.saturating_sub(earlier.aborts_inter_ww),
            aborts_intra_war: self
                .aborts_intra_war
                .saturating_sub(earlier.aborts_intra_war),
            aborts_intra_waw: self
                .aborts_intra_waw
                .saturating_sub(earlier.aborts_intra_waw),
            aborts_tx_signal: self
                .aborts_tx_signal
                .saturating_sub(earlier.aborts_tx_signal),
            aborts_task_signal: self
                .aborts_task_signal
                .saturating_sub(earlier.aborts_task_signal),
            aborts_user_retry: self
                .aborts_user_retry
                .saturating_sub(earlier.aborts_user_retry),
            aborts_oom: self.aborts_oom.saturating_sub(earlier.aborts_oom),
            extensions: self.extensions.saturating_sub(earlier.extensions),
            validations: self.validations.saturating_sub(earlier.validations),
            reader_waits: self.reader_waits.saturating_sub(earlier.reader_waits),
            cm_owner_aborts: self.cm_owner_aborts.saturating_sub(earlier.cm_owner_aborts),
            cm_self_aborts: self.cm_self_aborts.saturating_sub(earlier.cm_self_aborts),
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tx: {} started, {} committed, {} aborted ({:.1}% commit ratio)",
            self.tx_starts,
            self.tx_commits,
            self.tx_aborts,
            self.commit_ratio() * 100.0
        )?;
        writeln!(
            f,
            "tasks: {} started, {} committed, {} aborted",
            self.task_starts, self.task_commits, self.task_aborts
        )?;
        writeln!(f, "ops: {} reads, {} writes", self.reads, self.writes)?;
        writeln!(
            f,
            "aborts by cause: validation={} inter-ww={} intra-war={} intra-waw={} tx-signal={} task-signal={} retry={} oom={}",
            self.aborts_read_validation,
            self.aborts_inter_ww,
            self.aborts_intra_war,
            self.aborts_intra_waw,
            self.aborts_tx_signal,
            self.aborts_task_signal,
            self.aborts_user_retry,
            self.aborts_oom
        )?;
        write!(
            f,
            "misc: extensions={} validations={} reader-waits={} cm-owner-aborts={} cm-self-aborts={}",
            self.extensions,
            self.validations,
            self.reader_waits,
            self.cm_owner_aborts,
            self.cm_self_aborts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = StatsCollector::new();
        s.bump(&s.tx_commits);
        s.bump(&s.tx_commits);
        s.bump(&s.reads);
        let snap = s.snapshot();
        assert_eq!(snap.tx_commits, 2);
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 0);
    }

    #[test]
    fn abort_reasons_map_to_counters() {
        let s = StatsCollector::new();
        s.record_abort_reason(AbortReason::IntraThreadWar);
        s.record_abort_reason(AbortReason::IntraThreadWar);
        s.record_abort_reason(AbortReason::ReadValidation);
        let snap = s.snapshot();
        assert_eq!(snap.aborts_intra_war, 2);
        assert_eq!(snap.aborts_read_validation, 1);
        assert_eq!(snap.aborts_intra_waw, 0);
    }

    #[test]
    fn commit_ratio_handles_zero() {
        let snap = StatsSnapshot::default();
        assert_eq!(snap.commit_ratio(), 1.0);
        let snap = StatsSnapshot {
            tx_commits: 3,
            tx_aborts: 1,
            ..Default::default()
        };
        assert!((snap.commit_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn delta_since_subtracts() {
        let s = StatsCollector::new();
        s.bump(&s.reads);
        let early = s.snapshot();
        s.bump(&s.reads);
        s.bump(&s.writes);
        let late = s.snapshot();
        let delta = late.delta_since(&early);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.writes, 1);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = StatsCollector::new();
        s.bump(&s.tx_aborts);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn display_is_nonempty_and_mentions_commits() {
        let snap = StatsSnapshot {
            tx_commits: 5,
            ..Default::default()
        };
        let text = snap.to_string();
        assert!(text.contains("5 committed"));
    }
}
