//! Runtime statistics, sharded per user-thread.
//!
//! Both runtimes update a shared [`StatsCollector`]; the evaluation harness
//! and the tests read consistent snapshots through [`StatsCollector::snapshot`].
//! Counters are deliberately coarse (relaxed atomics) — they are diagnostics,
//! not part of the synchronisation protocol.
//!
//! To keep the counters off the hot paths' shared cache lines, the collector
//! is split into cache-line-aligned [`StatsShard`]s. Each user-thread bumps
//! only its own shard (selected by its dense thread/user-thread id), so
//! counter updates never ping-pong a cache line between threads; totals are
//! aggregated lazily at snapshot time. The per-shard snapshots also give the
//! benchmark harness a per-user-thread attribution of commits, aborts and
//! contention-manager escalations.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::AbortReason;

/// Default number of shards in a [`StatsCollector`].
///
/// Shard selection masks the thread id by the shard count, so ids beyond the
/// shard count wrap around (counts stay exact, only the per-thread attribution
/// aliases). 64 shards cover every machine this reproduction targets while
/// costing only a few kilobytes per collector.
pub const DEFAULT_STATS_SHARDS: usize = 64;

macro_rules! counters {
    ($(#[$shard_meta:meta])* shard $shard:ident;
     $(#[$snapshot_meta:meta])* snapshot $snapshot:ident;
     fields { $($(#[$field_meta:meta])* $field:ident),+ $(,)? }) => {
        $(#[$shard_meta])*
        #[derive(Debug, Default)]
        #[repr(align(64))]
        pub struct $shard {
            $($(#[$field_meta])* pub $field: AtomicU64,)+
        }

        $(#[$snapshot_meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct $snapshot {
            $($(#[$field_meta])* pub $field: u64,)+
        }

        impl $shard {
            /// Takes a snapshot of this shard's counters.
            pub fn snapshot(&self) -> $snapshot {
                $snapshot {
                    $($field: self.$field.load(Ordering::Relaxed),)+
                }
            }

            /// Resets every counter of this shard to zero.
            pub fn reset(&self) {
                $(self.$field.store(0, Ordering::Relaxed);)+
            }
        }

        impl $snapshot {
            /// Field-wise sum of two snapshots, saturating at `u64::MAX`.
            pub fn merged(&self, other: &$snapshot) -> $snapshot {
                $snapshot {
                    $($field: self.$field.saturating_add(other.$field),)+
                }
            }

            /// Difference between two snapshots (`self - earlier`), saturating
            /// at 0.
            pub fn delta_since(&self, earlier: &$snapshot) -> $snapshot {
                $snapshot {
                    $($field: self.$field.saturating_sub(earlier.$field),)+
                }
            }

            /// Every counter as a `(name, value)` pair, in declaration order.
            ///
            /// Used by the benchmark reporter to serialise the full breakdown
            /// without hand-maintaining a parallel field list.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($field), self.$field),)+]
            }

            /// Sets the counter named `name`; returns `false` if no counter by
            /// that name exists. The inverse of [`Self::fields`], used when
            /// parsing serialised reports.
            pub fn set_field(&mut self, name: &str, value: u64) -> bool {
                match name {
                    $(stringify!($field) => {
                        self.$field = value;
                        true
                    })+
                    _ => false,
                }
            }
        }
    };
}

counters! {
    /// One cache-line-aligned shard of atomic counters.
    ///
    /// Each user-thread updates exactly one shard, so the relaxed
    /// `fetch_add`s of different threads never contend on the same cache
    /// line. The alignment also prevents false sharing between neighbouring
    /// shards in the collector's shard array.
    shard StatsShard;
    /// A point-in-time copy of one shard's — or, via
    /// [`StatsCollector::snapshot`], the whole collector's — counters.
    snapshot StatsSnapshot;
    fields {
        /// User-transactions started (first attempt only).
        tx_starts,
        /// User-transactions committed.
        tx_commits,
        /// User-transaction aborts (whole-transaction rollbacks).
        tx_aborts,
        /// Speculative tasks started (first attempt only).
        task_starts,
        /// Speculative tasks committed (reached retirement).
        task_commits,
        /// Individual task rollbacks (task restarted without aborting the
        /// whole user-transaction).
        task_aborts,
        /// Transactional read operations.
        reads,
        /// Transactional write operations.
        writes,
        /// Aborts caused by failed read validation (inter-thread R/W).
        aborts_read_validation,
        /// Aborts caused by inter-thread write/write conflicts.
        aborts_inter_ww,
        /// Aborts caused by intra-thread write-after-read conflicts.
        aborts_intra_war,
        /// Aborts caused by intra-thread write-after-write conflicts.
        aborts_intra_waw,
        /// Aborts caused by an external abort-transaction signal.
        aborts_tx_signal,
        /// Aborts caused by an internal (single-task) abort signal.
        aborts_task_signal,
        /// Aborts requested explicitly by user code.
        aborts_user_retry,
        /// Aborts caused by allocation failure.
        aborts_oom,
        /// Successful read-log extensions (`extend`).
        extensions,
        /// Full task/transaction validations executed.
        validations,
        /// Times a reader had to wait for a past writer task to complete.
        reader_waits,
        /// Times the contention manager aborted the lock owner.
        cm_owner_aborts,
        /// Times the contention manager aborted the requester.
        cm_self_aborts,
    }
}

impl StatsShard {
    /// Bumps a counter of this shard by one.
    #[inline]
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter of this shard.
    #[inline]
    pub fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Records an abort with the given reason against the per-reason counters.
    /// The caller is responsible for also bumping `tx_aborts`/`task_aborts` as
    /// appropriate.
    pub fn record_abort_reason(&self, reason: AbortReason) {
        let counter = match reason {
            AbortReason::ReadValidation => &self.aborts_read_validation,
            AbortReason::InterThreadWriteConflict => &self.aborts_inter_ww,
            AbortReason::IntraThreadWar => &self.aborts_intra_war,
            AbortReason::IntraThreadWaw => &self.aborts_intra_waw,
            AbortReason::TransactionAbortSignal => &self.aborts_tx_signal,
            AbortReason::TaskAbortSignal => &self.aborts_task_signal,
            AbortReason::UserRetry => &self.aborts_user_retry,
            AbortReason::OutOfMemory => &self.aborts_oom,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Sharded runtime statistics.
///
/// The collector owns [`DEFAULT_STATS_SHARDS`] (or an explicit power-of-two
/// number of) cache-line-aligned shards. Hot paths obtain their shard once via
/// [`StatsCollector::shard`] and bump counters on it; reporting code sums the
/// shards with [`StatsCollector::snapshot`] or inspects the per-thread
/// attribution with [`StatsCollector::shard_snapshots`].
#[derive(Debug)]
pub struct StatsCollector {
    shards: Box<[StatsShard]>,
}

impl StatsCollector {
    /// Creates a collector with the default shard count, all counters zero.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_STATS_SHARDS)
    }

    /// Creates a collector with at least `shards` shards (rounded up to a
    /// power of two so shard selection is a mask, never a division).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        StatsCollector {
            shards: (0..n).map(|_| StatsShard::default()).collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard user-thread `id` should update.
    ///
    /// Ids are masked by the (power-of-two) shard count, so any id is valid;
    /// ids beyond the shard count alias onto existing shards.
    #[inline]
    pub fn shard(&self, id: u32) -> &StatsShard {
        &self.shards[id as usize & (self.shards.len() - 1)]
    }

    /// Aggregated snapshot of all shards.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.shards
            .iter()
            .fold(StatsSnapshot::default(), |acc, shard| {
                acc.merged(&shard.snapshot())
            })
    }

    /// Per-shard snapshots, in shard order (index = thread id modulo the
    /// shard count). Shards that no thread ever used are all-zero.
    pub fn shard_snapshots(&self) -> Vec<StatsSnapshot> {
        self.shards.iter().map(StatsShard::snapshot).collect()
    }

    /// Resets every counter of every shard to zero.
    pub fn reset(&self) {
        for shard in self.shards.iter() {
            shard.reset();
        }
    }
}

impl Default for StatsCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsSnapshot {
    /// Total aborts of any kind (transaction + individual task aborts).
    pub fn total_aborts(&self) -> u64 {
        self.tx_aborts + self.task_aborts
    }

    /// Commit rate: committed transactions over attempted commits.
    /// Returns 1.0 when nothing was attempted.
    pub fn commit_ratio(&self) -> f64 {
        let attempts = self.tx_commits + self.tx_aborts;
        if attempts == 0 {
            1.0
        } else {
            self.tx_commits as f64 / attempts as f64
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tx: {} started, {} committed, {} aborted ({:.1}% commit ratio)",
            self.tx_starts,
            self.tx_commits,
            self.tx_aborts,
            self.commit_ratio() * 100.0
        )?;
        writeln!(
            f,
            "tasks: {} started, {} committed, {} aborted",
            self.task_starts, self.task_commits, self.task_aborts
        )?;
        writeln!(f, "ops: {} reads, {} writes", self.reads, self.writes)?;
        writeln!(
            f,
            "aborts by cause: validation={} inter-ww={} intra-war={} intra-waw={} tx-signal={} task-signal={} retry={} oom={}",
            self.aborts_read_validation,
            self.aborts_inter_ww,
            self.aborts_intra_war,
            self.aborts_intra_waw,
            self.aborts_tx_signal,
            self.aborts_task_signal,
            self.aborts_user_retry,
            self.aborts_oom
        )?;
        write!(
            f,
            "misc: extensions={} validations={} reader-waits={} cm-owner-aborts={} cm-self-aborts={}",
            self.extensions,
            self.validations,
            self.reader_waits,
            self.cm_owner_aborts,
            self.cm_self_aborts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = StatsCollector::new();
        let shard = s.shard(0);
        shard.bump(&shard.tx_commits);
        shard.bump(&shard.tx_commits);
        shard.bump(&shard.reads);
        let snap = s.snapshot();
        assert_eq!(snap.tx_commits, 2);
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 0);
    }

    #[test]
    fn abort_reasons_map_to_counters() {
        let s = StatsCollector::new();
        let shard = s.shard(3);
        shard.record_abort_reason(AbortReason::IntraThreadWar);
        shard.record_abort_reason(AbortReason::IntraThreadWar);
        shard.record_abort_reason(AbortReason::ReadValidation);
        let snap = s.snapshot();
        assert_eq!(snap.aborts_intra_war, 2);
        assert_eq!(snap.aborts_read_validation, 1);
        assert_eq!(snap.aborts_intra_waw, 0);
    }

    #[test]
    fn commit_ratio_handles_zero() {
        let snap = StatsSnapshot::default();
        assert_eq!(snap.commit_ratio(), 1.0);
        let snap = StatsSnapshot {
            tx_commits: 3,
            tx_aborts: 1,
            ..Default::default()
        };
        assert!((snap.commit_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn delta_since_subtracts() {
        let s = StatsCollector::new();
        let shard = s.shard(0);
        shard.bump(&shard.reads);
        let early = s.snapshot();
        shard.bump(&shard.reads);
        shard.bump(&shard.writes);
        let late = s.snapshot();
        let delta = late.delta_since(&early);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.writes, 1);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = StatsCollector::new();
        let shard = s.shard(9);
        shard.bump(&shard.tx_aborts);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn display_is_nonempty_and_mentions_commits() {
        let snap = StatsSnapshot {
            tx_commits: 5,
            ..Default::default()
        };
        let text = snap.to_string();
        assert!(text.contains("5 committed"));
    }

    #[test]
    fn shards_are_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<StatsShard>(), 64);
        // The shard array inherits the alignment, so neighbouring shards can
        // never share a cache line.
        let s = StatsCollector::with_shards(4);
        let a = s.shard(0) as *const _ as usize;
        let b = s.shard(1) as *const _ as usize;
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b - a >= 64);
    }

    #[test]
    fn shard_ids_wrap_by_masking() {
        let s = StatsCollector::with_shards(4);
        assert_eq!(s.num_shards(), 4);
        // id 5 aliases onto shard 1.
        assert!(std::ptr::eq(s.shard(5), s.shard(1)));
        let shard = s.shard(5);
        shard.bump(&shard.tx_commits);
        assert_eq!(s.shard_snapshots()[1].tx_commits, 1);
    }

    #[test]
    fn with_shards_rounds_up_to_power_of_two() {
        assert_eq!(StatsCollector::with_shards(0).num_shards(), 1);
        assert_eq!(StatsCollector::with_shards(3).num_shards(), 4);
        assert_eq!(StatsCollector::with_shards(64).num_shards(), 64);
    }

    #[test]
    fn sharded_counts_aggregate_to_global_totals() {
        // The sharded collector must report exactly the totals the old single
        // global collector produced: distribute bumps over many (aliasing)
        // shard ids and compare against a straight count.
        let s = StatsCollector::with_shards(8);
        let mut expected_commits = 0u64;
        let mut expected_reads = 0u64;
        for id in 0..100u32 {
            let shard = s.shard(id);
            shard.bump(&shard.tx_commits);
            expected_commits += 1;
            shard.add(&shard.reads, u64::from(id));
            expected_reads += u64::from(id);
        }
        let snap = s.snapshot();
        assert_eq!(snap.tx_commits, expected_commits);
        assert_eq!(snap.reads, expected_reads);
        // Per-shard attribution sums to the same totals.
        let merged = s
            .shard_snapshots()
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merged(s));
        assert_eq!(merged, snap);
    }

    #[test]
    fn fields_roundtrip_through_set_field() {
        let mut snap = StatsSnapshot::default();
        assert!(snap.set_field("tx_commits", 17));
        assert!(snap.set_field("cm_self_aborts", 3));
        assert!(!snap.set_field("no_such_counter", 1));
        assert_eq!(snap.tx_commits, 17);
        assert_eq!(snap.cm_self_aborts, 3);
        let mut rebuilt = StatsSnapshot::default();
        for (name, value) in snap.fields() {
            assert!(rebuilt.set_field(name, value), "unknown field {name}");
        }
        assert_eq!(rebuilt, snap);
    }
}
