//! `seqref` — the sequential global-lock reference runtime.
//!
//! The simplest possible [`TxRuntime`]: one process-wide mutex serialises
//! every transaction, and bodies run against [`DirectMem`] (committed state,
//! no logging, no rollback). It exists for two reasons:
//!
//! * **Conformance baseline.** Under the global lock there are no conflicts,
//!   no speculation and no retries, so a seeded workload's replies and final
//!   state on `seqref` are the ground truth the concurrent runtimes must
//!   match (`tmbench --runtimes seqref`, the `txkv` conformance suites).
//! * **Pluggability proof / scaffold.** It is registered with the benchmark
//!   matrix purely through the runtime registry — the slot a future
//!   Block-STM-style runtime drops into.
//!
//! Because [`DirectMem`] applies writes immediately, a body that returns
//! [`Abort`] cannot be rolled back; `seqref` treats that as a caller bug and
//! panics. This is sound for every consumer in this repository: KV batches
//! report failures as replies (not aborts), and workload bodies only abort on
//! conflicts, which cannot occur while the global lock is held.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::ThreadIdAllocator;
use crate::error::Abort;
use crate::runtime::{TaskBody, TxRuntime, TxSession};
use crate::traits::DirectMem;
use crate::{TxConfig, TxSubstrate};

/// The sequential reference runtime: a global lock around [`DirectMem`].
#[derive(Debug)]
pub struct SeqRefRuntime {
    substrate: Arc<TxSubstrate>,
    gate: Mutex<()>,
    thread_ids: ThreadIdAllocator,
}

impl SeqRefRuntime {
    /// Creates a runtime with a fresh substrate built from `config`.
    pub fn new(config: TxConfig) -> Arc<Self> {
        Self::with_substrate(Arc::new(TxSubstrate::new(config)))
    }

    /// Creates a runtime over an existing substrate.
    pub fn with_substrate(substrate: Arc<TxSubstrate>) -> Arc<Self> {
        Arc::new(SeqRefRuntime {
            substrate,
            gate: Mutex::new(()),
            thread_ids: ThreadIdAllocator::new(),
        })
    }

    /// The shared substrate.
    pub fn substrate(&self) -> &Arc<TxSubstrate> {
        &self.substrate
    }

    /// Opens a session for the calling thread.
    pub fn session(self: &Arc<Self>) -> SeqRefSession {
        SeqRefSession {
            runtime: Arc::clone(self),
            id: self.thread_ids.allocate(),
        }
    }
}

impl TxRuntime for SeqRefRuntime {
    type Session = SeqRefSession;

    const LABEL: &'static str = "seqref";
    const SPECULATIVE: bool = false;

    fn new(config: TxConfig) -> Arc<Self> {
        SeqRefRuntime::new(config)
    }

    fn with_substrate(substrate: Arc<TxSubstrate>) -> Arc<Self> {
        SeqRefRuntime::with_substrate(substrate)
    }

    fn substrate(&self) -> &Arc<TxSubstrate> {
        &self.substrate
    }

    fn session(self: &Arc<Self>) -> SeqRefSession {
        SeqRefRuntime::session(self)
    }
}

/// A per-thread session of the [`SeqRefRuntime`].
///
/// Holds the thread's dense id for stats attribution; every transaction takes
/// the runtime's global lock for its whole duration.
#[derive(Debug)]
pub struct SeqRefSession {
    runtime: Arc<SeqRefRuntime>,
    id: u32,
}

impl SeqRefSession {
    /// The dense identifier assigned to this session's thread.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Executes `f` under the global lock with stats bumped around it.
    fn locked<T>(&self, f: impl FnOnce(&mut DirectMem<'_>) -> Result<T, Abort>) -> T {
        let substrate = &self.runtime.substrate;
        let _gate = self.runtime.gate.lock();
        let stats = substrate.stats.shard(self.id);
        stats.bump(&stats.tx_starts);
        txobs::tx_begin();
        let mut mem = DirectMem::new(&substrate.heap);
        match f(&mut mem) {
            Ok(value) => {
                stats.bump(&stats.tx_commits);
                txobs::tx_commit();
                value
            }
            Err(abort) => panic!(
                "seqref cannot roll back: transaction body aborted with `{}` \
                 under the global lock (bodies run on seqref must be \
                 abort-free)",
                abort.reason
            ),
        }
    }
}

impl TxSession for SeqRefSession {
    type Mem<'t> = DirectMem<'t>;

    fn run<T, F>(&mut self, body: F) -> T
    where
        T: Send,
        F: for<'t> Fn(&mut DirectMem<'t>) -> Result<T, Abort> + Send + Sync,
    {
        self.locked(|mem| body(mem))
    }

    fn run_tasks(&mut self, tasks: &mut [TaskBody<'_>]) {
        if tasks.is_empty() {
            return;
        }
        let stats = self.runtime.substrate.stats.shard(self.id);
        self.locked(|mem| {
            for body in tasks.iter_mut() {
                stats.bump(&stats.task_starts);
                body(mem)?;
                stats.bump(&stats.task_commits);
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_once;
    use crate::traits::TxMem;

    #[test]
    fn run_commits_directly_and_counts() {
        let rt = SeqRefRuntime::new(TxConfig::small());
        let word = rt.heap().alloc(1).unwrap();
        let mut session = rt.session();
        let observed = session.run(|mem| {
            mem.write(word, 41)?;
            let v = mem.read(word)?;
            mem.write(word, v + 1)?;
            mem.read(word)
        });
        assert_eq!(observed, 42);
        assert_eq!(rt.heap().load_committed(word), 42);
        let stats = TxRuntime::stats(&*rt);
        assert_eq!(stats.tx_starts, 1);
        assert_eq!(stats.tx_commits, 1);
        assert_eq!(stats.tx_aborts, 0);
    }

    #[test]
    fn run_tasks_applies_bodies_in_order() {
        let rt = SeqRefRuntime::new(TxConfig::small());
        let word = rt.heap().alloc(1).unwrap();
        let mut session = rt.session();
        let mut first = |mem: &mut dyn TxMem| mem.write(word, 10);
        let mut second = |mem: &mut dyn TxMem| {
            let v = mem.read(word)?;
            mem.write(word, v + 5)
        };
        let mut tasks: [TaskBody<'_>; 2] = [&mut first, &mut second];
        session.run_tasks(&mut tasks);
        assert_eq!(rt.heap().load_committed(word), 15);
        let stats = TxRuntime::stats(&*rt);
        assert_eq!(stats.tx_commits, 1);
        assert_eq!(stats.task_commits, 2);
        // An empty group is a no-op, not a transaction.
        session.run_tasks(&mut []);
        assert_eq!(TxRuntime::stats(&*rt).tx_commits, 1);
    }

    #[test]
    fn concurrent_sessions_serialise_through_the_gate() {
        let rt = SeqRefRuntime::new(TxConfig::small());
        let counter = rt.heap().alloc(1).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rt = Arc::clone(&rt);
                scope.spawn(move || {
                    let mut session = rt.session();
                    for _ in 0..500 {
                        session.run(|mem| {
                            let v = mem.read(counter)?;
                            mem.write(counter, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(rt.heap().load_committed(counter), 2000);
        assert_eq!(TxRuntime::stats(&*rt).tx_commits, 2000);
    }

    #[test]
    #[should_panic(expected = "seqref cannot roll back")]
    fn aborting_body_panics_loudly() {
        let rt = SeqRefRuntime::new(TxConfig::small());
        let mut session = rt.session();
        session.run::<(), _>(|_mem| Err(Abort::user_retry()));
    }

    #[test]
    fn run_once_helper_round_trips() {
        let total = run_once::<SeqRefRuntime, _, _>(TxConfig::small(), |mem| {
            let block = mem.alloc(3)?;
            for i in 0..3 {
                mem.write(block.offset(i), i + 1)?;
            }
            let mut sum = 0;
            for i in 0..3 {
                sum += mem.read(block.offset(i))?;
            }
            Ok(sum)
        });
        assert_eq!(total, 6);
    }
}
