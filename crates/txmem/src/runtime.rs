//! The uniform *inter*-transaction runtime interface.
//!
//! [`TxMem`] (see [`crate::traits`]) is the intra-transaction surface: how a
//! body reads and writes words once a transaction is running. This module adds
//! the missing counterpart — how transactions are *started, retried, split
//! into speculative tasks and accounted* — so that code generic over a
//! runtime can be written once:
//!
//! ```text
//! TxRuntime  — construction (TxConfig / shared TxSubstrate), stats access
//!    └─ TxSession  — one per driving thread: `run` (retry loop) and
//!       │           `run_tasks` (one transaction split into ordered tasks)
//!       └─ &mut dyn TxMem — what a body sees while it executes
//! ```
//!
//! Three runtimes implement the interface:
//!
//! * `swisstm::SwisstmRuntime` — the SwissTM baseline; `run_tasks` executes
//!   the bodies sequentially inside one transaction;
//! * `tlstm::TlstmRuntime` — the unified STM+TLS runtime; `run_tasks` turns
//!   every body into one speculative task of one user-transaction;
//! * [`crate::SeqRefRuntime`] — a global-lock sequential reference runtime
//!   used as the conformance baseline of the benchmark matrix.
//!
//! Bodies must obey the usual STM contract: they may be re-executed any
//! number of times (aborted attempts roll back), so they must be idempotent
//! apart from their transactional reads/writes, and any side buffer they fill
//! must be cleared at the start of each execution.

use std::fmt;
use std::sync::Arc;

use crate::error::Abort;
use crate::stats::StatsSnapshot;
use crate::traits::{DirectMem, TxMem};
use crate::{TxConfig, TxHeap, TxSubstrate};

/// One ordered task body of a [`TxSession::run_tasks`] group.
///
/// The bodies of a group together form *one* atomic transaction; sequential
/// runtimes execute them in order inside a single transaction, speculative
/// runtimes run one task per body. A body may be re-executed (speculation or
/// retry), so it must reset any captured output buffer when it starts.
pub type TaskBody<'a> = &'a mut (dyn FnMut(&mut dyn TxMem) -> Result<(), Abort> + Send);

/// An owned task body; see [`TaskBody`]. Callers that build a group
/// dynamically collect `BoxedTaskBody`s and submit them with
/// [`run_boxed_tasks`].
pub type BoxedTaskBody<'a> = Box<dyn FnMut(&mut dyn TxMem) -> Result<(), Abort> + Send + 'a>;

/// Submits a dynamically built group of owned bodies as one transaction
/// (the [`TxSession::run_tasks`] contract applies unchanged).
pub fn run_boxed_tasks<S: TxSession + ?Sized>(session: &mut S, bodies: &mut [BoxedTaskBody<'_>]) {
    // Shortens the box's trait-object lifetime bound to the borrow's (a
    // built-in coercion, but one the closure-return position won't apply).
    fn shorten<'s, 'a>(
        body: &'s mut (dyn FnMut(&mut dyn TxMem) -> Result<(), Abort> + Send + 'a),
    ) -> TaskBody<'s> {
        body
    }
    let mut group: Vec<TaskBody<'_>> = bodies.iter_mut().map(|body| shorten(&mut **body)).collect();
    session.run_tasks(&mut group);
}

/// A per-thread session handle of a [`TxRuntime`].
///
/// Sessions are `Send` but not `Sync`: each driving OS thread opens its own
/// session (exactly the paper's user-thread model).
pub trait TxSession {
    /// The concrete [`TxMem`] handle bodies of [`TxSession::run`] receive.
    ///
    /// Exposing the concrete type (rather than `&mut dyn TxMem`) keeps the
    /// single-body fast path fully monomorphized: the memory operations of a
    /// `run` body inline into the transaction loop exactly as the runtimes'
    /// inherent APIs do. Task groups ([`TxSession::run_tasks`]) still use
    /// `&mut dyn TxMem` bodies — heterogeneous groups need the erasure.
    type Mem<'t>: TxMem;

    /// Runs `body` as one atomic transaction, retrying until it commits, and
    /// returns the body's result.
    ///
    /// The body accesses shared state exclusively through the [`TxMem`]
    /// handle it receives and may be re-executed an arbitrary number of
    /// times.
    fn run<T, F>(&mut self, body: F) -> T
    where
        T: Send,
        F: for<'t> Fn(&mut Self::Mem<'t>) -> Result<T, Abort> + Send + Sync;

    /// Runs an ordered group of task bodies as *one* atomic transaction.
    ///
    /// Sequential runtimes apply the bodies in order inside a single
    /// transaction; the TLSTM runtime executes one speculative task per body
    /// (program order is preserved by the task serials). An empty group is a
    /// no-op.
    ///
    /// # Panics
    ///
    /// Panics if the group exceeds the session's speculative depth on a
    /// runtime with bounded depth (such a transaction could never commit).
    fn run_tasks(&mut self, tasks: &mut [TaskBody<'_>]);
}

/// A pluggable transactional runtime over the shared [`TxSubstrate`].
///
/// The trait captures what `txkv`, the workload suite and the benchmark
/// matrix need from a runtime: construction, per-thread sessions
/// ([`TxSession`]), and statistics access. Concrete runtimes keep their richer
/// inherent APIs (explicit speculative depth, task specs, ...); generic
/// consumers only rely on this surface.
pub trait TxRuntime: Send + Sync + fmt::Debug + 'static {
    /// The per-thread session handle.
    type Session: TxSession + Send + fmt::Debug;

    /// Identifier used in benchmark reports, CLI selectors and scenario
    /// names (`"swisstm"`, `"tlstm"`, `"seqref"`).
    const LABEL: &'static str;

    /// `true` if the runtime executes the bodies of a [`TxSession::run_tasks`]
    /// group as parallel speculative tasks (so the benchmark matrix expands
    /// it over the task-split axis); `false` for sequential runtimes.
    const SPECULATIVE: bool;

    /// Creates a runtime with a fresh substrate built from `config`.
    fn new(config: TxConfig) -> Arc<Self>;

    /// Creates a runtime over an existing substrate (shared with other
    /// runtimes or with non-transactional initialisation code).
    fn with_substrate(substrate: Arc<TxSubstrate>) -> Arc<Self>;

    /// The shared substrate.
    fn substrate(&self) -> &Arc<TxSubstrate>;

    /// Opens a session for the calling thread.
    ///
    /// Runtimes with a speculative-depth notion size the session from the
    /// substrate's [`TxConfig::spec_depth`].
    fn session(self: &Arc<Self>) -> Self::Session;

    /// The transactional heap (for non-transactional setup of data).
    fn heap(&self) -> &TxHeap {
        &self.substrate().heap
    }

    /// A [`DirectMem`] handle for non-transactional initialisation.
    fn direct(&self) -> DirectMem<'_> {
        DirectMem::new(&self.substrate().heap)
    }

    /// Snapshot of the global statistics counters.
    fn stats(&self) -> StatsSnapshot {
        self.substrate().stats.snapshot()
    }

    /// Per-shard statistics snapshots: entry `i` aggregates the activity of
    /// the sessions whose thread id is `i` modulo the shard count.
    fn stats_per_shard(&self) -> Vec<StatsSnapshot> {
        self.substrate().stats.shard_snapshots()
    }

    /// Resets the global statistics counters.
    fn reset_stats(&self) {
        self.substrate().stats.reset();
    }
}

/// Statically asserts that [`TxMem`] stays object-safe: the `txkv` durable
/// front-end (and every [`TxSession::run`] body) works through
/// `&mut dyn TxMem` trait objects, so losing object safety is an API break.
pub fn assert_txmem_object_safe(mem: &mut dyn TxMem) -> Result<u64, Abort> {
    let word = mem.alloc(1)?;
    mem.write(word, 1)?;
    mem.read(word)
}

/// Convenience: runs `body` through a session of a freshly constructed
/// runtime (tests and examples). The body takes `&mut dyn TxMem`, so one
/// closure works for every `R`.
pub fn run_once<R, T, F>(config: TxConfig, body: F) -> T
where
    R: TxRuntime,
    T: Send,
    F: Fn(&mut dyn TxMem) -> Result<T, Abort> + Send + Sync,
{
    R::new(config).session().run(move |mem| body(mem))
}
