//! The global commit clock (`commit-ts`) and thread id allocation.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// The global commit counter (`commit-ts` in SwissTM / TLSTM).
///
/// Every non-read-only user-transaction increments the clock at commit time;
/// the value after the increment is the commit timestamp written into the
/// r-locks of the committed locations.
#[derive(Debug, Default)]
pub struct GlobalClock {
    commit_ts: AtomicU64,
}

impl GlobalClock {
    /// Creates a clock starting at zero.
    pub fn new() -> Self {
        GlobalClock {
            commit_ts: AtomicU64::new(0),
        }
    }

    /// Current value of `commit-ts`.
    #[inline]
    pub fn now(&self) -> u64 {
        self.commit_ts.load(Ordering::Acquire)
    }

    /// Atomically increments `commit-ts` and returns the *new* value
    /// (the `increment&get` of Algorithm 3).
    #[inline]
    pub fn tick(&self) -> u64 {
        self.commit_ts.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// Allocates small dense identifiers for user-threads / transactions.
///
/// Used by both runtimes to hand out the `tid` / program-thread identifiers
/// that the lock table stores as owner tokens and that the contention manager
/// compares.
#[derive(Debug, Default)]
pub struct ThreadIdAllocator {
    next: AtomicU32,
}

impl ThreadIdAllocator {
    /// Creates an allocator starting at id 0.
    pub fn new() -> Self {
        ThreadIdAllocator {
            next: AtomicU32::new(0),
        }
    }

    /// Returns a fresh identifier, unique for the lifetime of the allocator.
    pub fn allocate(&self) -> u32 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of identifiers handed out so far.
    pub fn allocated(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn tick_is_monotonic_and_returns_new_value() {
        let clock = GlobalClock::new();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.tick(), 1);
        assert_eq!(clock.tick(), 2);
        assert_eq!(clock.now(), 2);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let clock = Arc::new(GlobalClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let clock = Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| clock.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
        assert_eq!(clock.now(), 4000);
    }

    #[test]
    fn thread_ids_are_dense_and_unique() {
        let alloc = ThreadIdAllocator::new();
        let ids: Vec<u32> = (0..10).map(|_| alloc.allocate()).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        assert_eq!(alloc.allocated(), 10);
    }
}
