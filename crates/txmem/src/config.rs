//! Substrate configuration.

/// Configuration for the transactional memory substrate.
///
/// A [`TxConfig`] fixes the sizes of the global structures
/// (heap capacity and lock-table size) and the default speculation parameters
/// picked up by the runtimes built on top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxConfig {
    /// Maximum number of 64-bit words the heap can hold.
    ///
    /// The heap reserves address space lazily in segments, so a large value is
    /// cheap until the words are actually allocated.
    pub heap_capacity_words: u64,
    /// Number of words per heap segment (must be a power of two).
    pub heap_segment_words: u64,
    /// log2 of the number of lock-table entries.
    ///
    /// SwissTM uses a fixed global table of lock pairs; word addresses are
    /// hashed into it, so a smaller table trades memory for false conflicts.
    pub lock_table_bits: u32,
    /// Number of consecutive words covered by a single lock (the lock
    /// granularity). SwissTM uses 4 words per lock entry by default.
    pub words_per_lock: u64,
    /// Default speculative depth (`SPECDEPTH`): the maximum number of
    /// simultaneously active tasks per user-thread in the TLSTM runtime.
    pub spec_depth: usize,
    /// Number of times a waiting operation spins before yielding the CPU.
    pub spin_limit: u32,
}

impl TxConfig {
    /// A configuration with a small heap and lock table, useful in unit tests
    /// to force lock-table collisions and heap exhaustion quickly.
    pub fn small() -> Self {
        TxConfig {
            heap_capacity_words: 1 << 16,
            heap_segment_words: 1 << 10,
            lock_table_bits: 8,
            words_per_lock: 4,
            spec_depth: 4,
            spin_limit: 64,
        }
    }

    /// Validates the internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.heap_segment_words.is_power_of_two() {
            return Err(format!(
                "heap_segment_words must be a power of two, got {}",
                self.heap_segment_words
            ));
        }
        if self.heap_capacity_words == 0 {
            return Err("heap_capacity_words must be non-zero".to_string());
        }
        if self.lock_table_bits == 0 || self.lock_table_bits > 30 {
            return Err(format!(
                "lock_table_bits must be in 1..=30, got {}",
                self.lock_table_bits
            ));
        }
        if !self.words_per_lock.is_power_of_two() {
            return Err(format!(
                "words_per_lock must be a power of two, got {}",
                self.words_per_lock
            ));
        }
        if self.spec_depth == 0 {
            return Err("spec_depth must be at least 1".to_string());
        }
        Ok(())
    }
}

impl Default for TxConfig {
    fn default() -> Self {
        TxConfig {
            heap_capacity_words: 1 << 26, // 64 Mi words = 512 MiB of address space
            heap_segment_words: 1 << 18,
            lock_table_bits: 20,
            words_per_lock: 4,
            spec_depth: 4,
            spin_limit: 128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(TxConfig::default().validate().is_ok());
        assert!(TxConfig::small().validate().is_ok());
    }

    #[test]
    fn invalid_segment_size_rejected() {
        let c = TxConfig {
            heap_segment_words: 100,
            ..TxConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_lock_bits_rejected() {
        let mut c = TxConfig {
            lock_table_bits: 0,
            ..TxConfig::default()
        };
        assert!(c.validate().is_err());
        c.lock_table_bits = 31;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_spec_depth_rejected() {
        let c = TxConfig {
            spec_depth: 0,
            ..TxConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn non_power_of_two_words_per_lock_rejected() {
        let c = TxConfig {
            words_per_lock: 3,
            ..TxConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
