//! Speculative write chains (the per-location "redo-log" of TLSTM).
//!
//! In TLSTM a location's write lock, when held, points to the location's
//! redo-log: a chain of write-log entries belonging to tasks of the owning
//! user-thread, linked from the most speculative entry back to the oldest
//! (`previous-entry` in Algorithm 1/2). A task reading a location locked by
//! its own user-thread walks this chain to find the most recent value written
//! by itself or by a task from its past.
//!
//! This module models the chain as a [`WriteChain`]: a small vector of
//! [`SpecEntry`] values kept sorted by task serial number. The chain is only
//! touched by writers and by same-user-thread speculative readers, which is
//! exactly the set of accesses that dereference `w-lock` in the paper, so
//! guarding it with the lock entry's mutex preserves the algorithm's
//! contention behaviour.

use crate::addr::WordAddr;
use crate::owner::OwnerHandle;

/// One task's (or, for SwissTM, one transaction's) speculative write entry for
/// a given lock.
#[derive(Debug, Clone)]
pub struct SpecEntry {
    /// Program-thread (user-thread) identifier of the writer.
    pub ptid: u32,
    /// Serial number of the writer task within its user-thread
    /// (0 for plain SwissTM transactions, which have a single implicit task).
    pub serial: u64,
    /// Serial number of the first task of the writer's user-transaction;
    /// identifies which user-transaction the entry belongs to.
    pub tx_start_serial: u64,
    /// Contention-manager handle of the writer's user-transaction.
    pub owner: OwnerHandle,
    /// Speculative values written under this lock, as `(address, value)`
    /// pairs in insertion order. Later writes to the same address overwrite
    /// the earlier pair.
    pub writes: Vec<(WordAddr, u64)>,
}

impl SpecEntry {
    /// Returns the speculative value this entry holds for `addr`, if any.
    pub fn value_of(&self, addr: WordAddr) -> Option<u64> {
        self.writes
            .iter()
            .rev()
            .find(|(a, _)| *a == addr)
            .map(|(_, v)| *v)
    }

    /// Records a write of `value` to `addr`, overwriting any previous write of
    /// the same address by this entry.
    pub fn record_write(&mut self, addr: WordAddr, value: u64) {
        if let Some(slot) = self.writes.iter_mut().find(|(a, _)| *a == addr) {
            slot.1 = value;
        } else {
            self.writes.push((addr, value));
        }
    }
}

/// Result of probing a chain for the value visible to a reader task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainRead {
    /// The reader's own entry holds the value (reads-from-own-writes).
    Own(u64),
    /// A past task's entry holds the value; carries the writer's serial so the
    /// reader can record it in its task-read-log and validate against it.
    Past {
        /// Serial of the past writer task.
        writer_serial: u64,
        /// The speculative value.
        value: u64,
    },
    /// No entry at or before the reader's serial wrote this address; the
    /// reader must fall back to the committed value in memory.
    Committed,
}

/// Maximum number of recycled per-entry write buffers a chain retains.
/// Bounded so an idle chain pins at most a few small vectors.
const MAX_SPARE_BUFFERS: usize = 8;

/// The speculative write chain attached to one lock-table entry.
///
/// Entries are kept sorted by ascending task serial. There is at most one
/// entry per active task of the owning user-thread (so at most `SPECDEPTH`).
///
/// Chains live as long as the lock table, so they recycle the write buffers
/// of removed entries (`spare`): in steady state, installing a new entry pops
/// a previously used buffer instead of allocating. Only the buffer storage is
/// retained — the removed entry's owner handle is dropped immediately, so a
/// pooled chain never pins a finished transaction's state.
#[derive(Debug, Default)]
pub struct WriteChain {
    entries: Vec<SpecEntry>,
    spare: Vec<Vec<(WordAddr, u64)>>,
}

impl WriteChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        WriteChain {
            entries: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// Retains a removed entry's write buffer for reuse (bounded).
    fn recycle(&mut self, mut writes: Vec<(WordAddr, u64)>) {
        if self.spare.len() < MAX_SPARE_BUFFERS && writes.capacity() > 0 {
            writes.clear();
            self.spare.push(writes);
        }
    }

    /// `true` if the chain holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries in the chain.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The program-thread id of the owning user-thread, if any entry exists.
    pub fn owner_ptid(&self) -> Option<u32> {
        self.entries.first().map(|e| e.ptid)
    }

    /// The most speculative (highest-serial) entry, if any. This is what the
    /// raw `w-lock` pointer refers to in the paper.
    pub fn newest(&self) -> Option<&SpecEntry> {
        self.entries.last()
    }

    /// The highest serial present in the chain, if any.
    pub fn newest_serial(&self) -> Option<u64> {
        self.entries.last().map(|e| e.serial)
    }

    /// The most recent entry with `serial <= reader_serial`, i.e. the entry a
    /// reader task reaches after walking `previous-entry` links past all
    /// future tasks' entries.
    pub fn latest_at_or_before(&self, reader_serial: u64) -> Option<&SpecEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.serial <= reader_serial)
    }

    /// The entry belonging to exactly `serial`, if present.
    pub fn entry_for_serial(&self, serial: u64) -> Option<&SpecEntry> {
        self.entries.iter().find(|e| e.serial == serial)
    }

    /// Iterates over all entries in ascending serial order.
    pub fn iter(&self) -> impl Iterator<Item = &SpecEntry> {
        self.entries.iter()
    }

    /// Resolves the value of `addr` visible to a reader task with serial
    /// `reader_serial`, following the paper's read rule: walk from the most
    /// speculative entry towards the past, skip entries from the reader's
    /// future, and take the first entry (own or past) that actually wrote this
    /// address.
    pub fn read_visible(&self, addr: WordAddr, reader_serial: u64) -> ChainRead {
        for entry in self.entries.iter().rev() {
            if entry.serial > reader_serial {
                continue;
            }
            if let Some(value) = entry.value_of(addr) {
                if entry.serial == reader_serial {
                    return ChainRead::Own(value);
                }
                return ChainRead::Past {
                    writer_serial: entry.serial,
                    value,
                };
            }
        }
        ChainRead::Committed
    }

    /// Records a speculative write by the task `(ptid, serial)`, creating its
    /// entry if necessary. Returns `true` if a new entry was created.
    #[allow(clippy::too_many_arguments)]
    pub fn record_write(
        &mut self,
        ptid: u32,
        serial: u64,
        tx_start_serial: u64,
        owner: &OwnerHandle,
        addr: WordAddr,
        value: u64,
    ) -> bool {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.serial == serial) {
            debug_assert_eq!(entry.ptid, ptid, "chain entries must share one user-thread");
            entry.record_write(addr, value);
            return false;
        }
        let mut writes = self.spare.pop().unwrap_or_default();
        writes.push((addr, value));
        let entry = SpecEntry {
            ptid,
            serial,
            tx_start_serial,
            owner: OwnerHandle::clone(owner),
            writes,
        };
        let pos = self
            .entries
            .iter()
            .position(|e| e.serial > serial)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, entry);
        true
    }

    /// Removes the entry belonging to task `serial` (single-task rollback).
    /// Returns `true` if an entry was removed.
    pub fn remove_serial(&mut self, serial: u64) -> bool {
        match self.entries.iter().position(|e| e.serial == serial) {
            Some(pos) => {
                let entry = self.entries.remove(pos);
                self.recycle(entry.writes);
                true
            }
            None => false,
        }
    }

    /// Removes every entry whose serial falls in `[start_serial, commit_serial]`
    /// (user-transaction rollback or commit write-back). Returns the number of
    /// entries removed.
    pub fn remove_transaction(&mut self, start_serial: u64, commit_serial: u64) -> usize {
        let before = self.entries.len();
        let mut i = 0;
        while i < self.entries.len() {
            let serial = self.entries[i].serial;
            if serial >= start_serial && serial <= commit_serial {
                let entry = self.entries.remove(i);
                self.recycle(entry.writes);
            } else {
                i += 1;
            }
        }
        before - self.entries.len()
    }

    /// Removes all entries (defensive cleanup paths and tests).
    pub fn clear(&mut self) {
        while let Some(entry) = self.entries.pop() {
            self.recycle(entry.writes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::LockOwner;
    use std::sync::Arc;

    #[derive(Debug)]
    struct DummyOwner(u32);
    impl LockOwner for DummyOwner {
        fn signal_abort(&self) {}
        fn is_finishing(&self) -> bool {
            false
        }
        fn completed_progress(&self) -> u64 {
            0
        }
        fn cm_priority(&self) -> u64 {
            u64::MAX
        }
        fn owner_id(&self) -> u32 {
            self.0
        }
    }

    fn owner(id: u32) -> OwnerHandle {
        Arc::new(DummyOwner(id))
    }

    fn addr(i: u64) -> WordAddr {
        WordAddr::new(i)
    }

    #[test]
    fn record_and_read_own_write() {
        let mut chain = WriteChain::new();
        let o = owner(0);
        assert!(chain.record_write(0, 5, 5, &o, addr(1), 42));
        assert_eq!(chain.read_visible(addr(1), 5), ChainRead::Own(42));
        // overwrite
        assert!(!chain.record_write(0, 5, 5, &o, addr(1), 43));
        assert_eq!(chain.read_visible(addr(1), 5), ChainRead::Own(43));
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn future_entries_are_invisible_to_past_readers() {
        let mut chain = WriteChain::new();
        let o = owner(0);
        chain.record_write(0, 7, 7, &o, addr(1), 70);
        assert_eq!(chain.read_visible(addr(1), 5), ChainRead::Committed);
        assert_eq!(
            chain.read_visible(addr(1), 9),
            ChainRead::Past {
                writer_serial: 7,
                value: 70
            }
        );
    }

    #[test]
    fn reader_sees_most_recent_past_writer() {
        let mut chain = WriteChain::new();
        let o = owner(0);
        chain.record_write(0, 2, 2, &o, addr(1), 20);
        chain.record_write(0, 4, 4, &o, addr(1), 40);
        chain.record_write(0, 6, 6, &o, addr(1), 60);
        assert_eq!(
            chain.read_visible(addr(1), 5),
            ChainRead::Past {
                writer_serial: 4,
                value: 40
            }
        );
        assert_eq!(
            chain.read_visible(addr(1), 7),
            ChainRead::Past {
                writer_serial: 6,
                value: 60
            }
        );
    }

    #[test]
    fn chain_falls_back_to_committed_for_unwritten_addresses() {
        let mut chain = WriteChain::new();
        let o = owner(0);
        chain.record_write(0, 2, 2, &o, addr(1), 20);
        assert_eq!(chain.read_visible(addr(9), 5), ChainRead::Committed);
    }

    #[test]
    fn entries_stay_sorted_regardless_of_insertion_order() {
        let mut chain = WriteChain::new();
        let o = owner(0);
        chain.record_write(0, 6, 6, &o, addr(1), 60);
        chain.record_write(0, 2, 2, &o, addr(1), 20);
        chain.record_write(0, 4, 4, &o, addr(1), 40);
        let serials: Vec<u64> = chain.iter().map(|e| e.serial).collect();
        assert_eq!(serials, vec![2, 4, 6]);
        assert_eq!(chain.newest_serial(), Some(6));
        assert_eq!(chain.latest_at_or_before(5).unwrap().serial, 4);
        assert_eq!(
            chain.entry_for_serial(4).unwrap().value_of(addr(1)),
            Some(40)
        );
    }

    #[test]
    fn remove_serial_and_transaction() {
        let mut chain = WriteChain::new();
        let o = owner(0);
        for s in [2, 3, 4, 7] {
            chain.record_write(0, s, s, &o, addr(s), s * 10);
        }
        assert!(chain.remove_serial(3));
        assert!(!chain.remove_serial(3));
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.remove_transaction(2, 4), 2);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.newest_serial(), Some(7));
        chain.clear();
        assert!(chain.is_empty());
        assert_eq!(chain.owner_ptid(), None);
    }

    #[test]
    fn removed_entries_recycle_their_write_buffers() {
        let mut chain = WriteChain::new();
        let o = owner(0);
        // Grow an entry's write buffer, remove it, and re-install: the new
        // entry must reuse the retained buffer capacity.
        for i in 0..16 {
            chain.record_write(0, 1, 1, &o, addr(i), i);
        }
        assert!(chain.remove_serial(1));
        assert_eq!(chain.spare.len(), 1);
        let spare_cap = chain.spare[0].capacity();
        assert!(spare_cap >= 16);
        assert!(chain.record_write(0, 2, 2, &o, addr(0), 1));
        assert!(
            chain.spare.is_empty(),
            "new entry must pop the spare buffer"
        );
        assert_eq!(chain.newest().unwrap().writes.capacity(), spare_cap);
        // Recycling never changes observable behaviour.
        assert_eq!(chain.read_visible(addr(0), 2), ChainRead::Own(1));
        chain.clear();
        assert!(chain.is_empty());
        assert_eq!(chain.spare.len(), 1);
    }

    #[test]
    fn owner_ptid_reflects_entries() {
        let mut chain = WriteChain::new();
        let o = owner(3);
        chain.record_write(3, 1, 1, &o, addr(0), 5);
        assert_eq!(chain.owner_ptid(), Some(3));
        assert_eq!(chain.newest().unwrap().owner.owner_id(), 3);
    }
}
