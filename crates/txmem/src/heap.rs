//! The transactional word heap.
//!
//! [`TxHeap`] is a bump-allocated arena of 64-bit words. Committed state is
//! stored in `AtomicU64` cells, which gives us the same semantics as the raw
//! word memory SwissTM operates on without any `unsafe` code: transactional
//! reads of committed state are acquire atomic loads, commit-time write-back
//! is a release store, and all speculative values live in logs until commit.
//!
//! The heap reserves a fixed amount of *address space* up front (see
//! [`TxConfig::heap_capacity_words`](crate::TxConfig)) but only materialises
//! segments of it on demand, so large capacities are cheap. Segments are
//! published through `OnceLock`, so the hot load/store path is lock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::addr::WordAddr;
use crate::config::TxConfig;
use crate::error::MemError;

/// A lazily materialised segment of words.
#[derive(Debug)]
struct Segment {
    words: Box<[AtomicU64]>,
}

impl Segment {
    fn new(len: u64) -> Self {
        let mut v = Vec::with_capacity(len as usize);
        v.resize_with(len as usize, || AtomicU64::new(0));
        Segment {
            words: v.into_boxed_slice(),
        }
    }
}

/// Growable arena of 64-bit words holding committed transactional state.
#[derive(Debug)]
pub struct TxHeap {
    segments: Box<[OnceLock<Segment>]>,
    segment_words: u64,
    segment_shift: u32,
    capacity_words: u64,
    next_free: AtomicU64,
}

impl TxHeap {
    /// Builds a heap from the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TxConfig::validate`].
    pub fn new(config: &TxConfig) -> Self {
        config
            .validate()
            .expect("invalid TxConfig passed to TxHeap::new");
        let segment_words = config.heap_segment_words;
        let n_segments = config.heap_capacity_words.div_ceil(segment_words);
        let mut segments = Vec::with_capacity(n_segments as usize);
        segments.resize_with(n_segments as usize, OnceLock::new);
        let heap = TxHeap {
            segments: segments.into_boxed_slice(),
            segment_words,
            segment_shift: segment_words.trailing_zeros(),
            capacity_words: config.heap_capacity_words,
            // Word 0 is reserved so that address 0 can serve as the null
            // reference (see `NULL_ADDR`); zero-initialised reference fields
            // then read back as null.
            next_free: AtomicU64::new(1),
        };
        heap.segments[0].get_or_init(|| Segment::new(heap.segment_words));
        heap
    }

    /// Total words of address space this heap can serve.
    pub fn capacity_words(&self) -> u64 {
        self.capacity_words
    }

    /// Words handed out so far (including the reserved null word 0).
    pub fn words_allocated(&self) -> u64 {
        self.next_free
            .load(Ordering::Relaxed)
            .min(self.capacity_words)
    }

    /// Allocates a block of `words` consecutive words and returns the address
    /// of its first word. The block is zero-initialised.
    ///
    /// Allocation is a wait-free atomic bump; blocks are never reclaimed
    /// (transactional `free` is a no-op in this reproduction, as it is in most
    /// word-based STM research prototypes).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::ZeroSizedAlloc`] for `words == 0` and
    /// [`MemError::HeapExhausted`] when the reserved address space runs out.
    pub fn alloc(&self, words: u64) -> Result<WordAddr, MemError> {
        if words == 0 {
            return Err(MemError::ZeroSizedAlloc);
        }
        let start = self.next_free.fetch_add(words, Ordering::Relaxed);
        let end = start.checked_add(words).ok_or(MemError::HeapExhausted {
            requested: words,
            available: 0,
        })?;
        if end > self.capacity_words {
            return Err(MemError::HeapExhausted {
                requested: words,
                available: self.capacity_words.saturating_sub(start),
            });
        }
        // Materialise every segment the block spans so later loads/stores
        // find them without synchronisation.
        let first_seg = start >> self.segment_shift;
        let last_seg = (end - 1) >> self.segment_shift;
        for seg in first_seg..=last_seg {
            self.segments[seg as usize].get_or_init(|| Segment::new(self.segment_words));
        }
        Ok(WordAddr::new(start))
    }

    #[inline]
    fn word(&self, addr: WordAddr) -> &AtomicU64 {
        let idx = addr.index();
        assert!(
            idx < self.next_free.load(Ordering::Relaxed) && idx < self.capacity_words,
            "address {idx} is outside the allocated heap range"
        );
        let seg = (idx >> self.segment_shift) as usize;
        let off = (idx & (self.segment_words - 1)) as usize;
        let segment = self.segments[seg]
            .get()
            .expect("allocated address must have a materialised segment");
        &segment.words[off]
    }

    /// Loads the committed value of a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was never allocated.
    #[inline]
    pub fn load_committed(&self, addr: WordAddr) -> u64 {
        self.word(addr).load(Ordering::Acquire)
    }

    /// Stores a committed value of a word (used at commit time and for
    /// non-transactional initialisation).
    ///
    /// # Panics
    ///
    /// Panics if `addr` was never allocated.
    #[inline]
    pub fn store_committed(&self, addr: WordAddr, value: u64) {
        self.word(addr).store(value, Ordering::Release);
    }

    /// Returns `true` if `addr` falls inside the allocated range.
    pub fn contains(&self, addr: WordAddr) -> bool {
        addr.index() < self.words_allocated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn small_heap() -> TxHeap {
        TxHeap::new(&TxConfig::small())
    }

    #[test]
    fn alloc_and_rw_round_trip() {
        let heap = small_heap();
        let a = heap.alloc(4).unwrap();
        for i in 0..4 {
            heap.store_committed(a.offset(i), i * 10);
        }
        for i in 0..4 {
            assert_eq!(heap.load_committed(a.offset(i)), i * 10);
        }
    }

    #[test]
    fn fresh_allocations_are_zeroed() {
        let heap = small_heap();
        let a = heap.alloc(16).unwrap();
        for i in 0..16 {
            assert_eq!(heap.load_committed(a.offset(i)), 0);
        }
    }

    #[test]
    fn zero_sized_alloc_rejected() {
        let heap = small_heap();
        assert_eq!(heap.alloc(0), Err(MemError::ZeroSizedAlloc));
    }

    #[test]
    fn exhaustion_reported() {
        let mut cfg = TxConfig::small();
        cfg.heap_capacity_words = 128;
        cfg.heap_segment_words = 64;
        let heap = TxHeap::new(&cfg);
        assert!(heap.alloc(100).is_ok());
        let err = heap.alloc(100).unwrap_err();
        assert!(matches!(err, MemError::HeapExhausted { .. }));
    }

    #[test]
    fn word_zero_is_reserved_for_null() {
        let heap = small_heap();
        let a = heap.alloc(1).unwrap();
        assert!(
            a.index() >= 1,
            "allocations must never return the null word"
        );
        assert_eq!(heap.words_allocated(), a.index() + 1);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let heap = small_heap();
        let a = heap.alloc(10).unwrap();
        let b = heap.alloc(10).unwrap();
        assert!(b.index() >= a.index() + 10);
    }

    #[test]
    fn blocks_spanning_segments_work() {
        let mut cfg = TxConfig::small();
        cfg.heap_segment_words = 8;
        cfg.heap_capacity_words = 64;
        let heap = TxHeap::new(&cfg);
        let a = heap.alloc(20).unwrap();
        for i in 0..20 {
            heap.store_committed(a.offset(i), 1000 + i);
        }
        for i in 0..20 {
            assert_eq!(heap.load_committed(a.offset(i)), 1000 + i);
        }
    }

    #[test]
    #[should_panic(expected = "outside the allocated heap range")]
    fn unallocated_access_panics() {
        let heap = small_heap();
        let _ = heap.load_committed(WordAddr::new(5));
    }

    #[test]
    fn concurrent_alloc_yields_disjoint_blocks() {
        let heap = Arc::new(small_heap());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let heap = Arc::clone(&heap);
            handles.push(std::thread::spawn(move || {
                let mut blocks = Vec::new();
                for _ in 0..100 {
                    blocks.push(heap.alloc(3).unwrap().index());
                }
                blocks
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        for pair in all.windows(2) {
            assert!(pair[1] - pair[0] >= 3, "blocks overlap: {pair:?}");
        }
    }

    #[test]
    fn contains_tracks_allocation() {
        let heap = small_heap();
        assert!(!heap.contains(WordAddr::new(1)));
        let a = heap.alloc(2).unwrap();
        assert!(heap.contains(a));
        assert!(heap.contains(a.offset(1)));
        assert!(!heap.contains(a.offset(2)));
    }
}
