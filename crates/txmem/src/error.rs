//! Error and abort types shared by the runtimes.

use std::error::Error;
use std::fmt;

/// Reason a transaction or speculative task had to abort.
///
/// These map directly onto the conflict classes discussed in §3.2 of the
/// paper; the statistics collector counts them separately so that the
/// evaluation harness can report *why* speculation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// A read observed a version newer than `valid-ts` and the read-log could
    /// not be extended (inter-thread read/write conflict).
    ReadValidation,
    /// Write/write conflict with a transaction of another user-thread where
    /// the contention manager decided that *we* abort.
    InterThreadWriteConflict,
    /// Intra-thread write-after-read conflict: a past task wrote to a location
    /// this task had already read speculatively (TLSTM `validate-task`).
    IntraThreadWar,
    /// Intra-thread write-after-write conflict: this task raced with another
    /// task of the same user-thread for a location's write lock.
    IntraThreadWaw,
    /// The whole user-transaction was signalled to abort (for example because
    /// the contention manager aborted it on behalf of another user-thread).
    TransactionAbortSignal,
    /// The task was signalled to abort individually (`aborted-internally`).
    TaskAbortSignal,
    /// The user's transaction body requested an explicit retry.
    UserRetry,
    /// Heap allocation failed inside the transaction.
    OutOfMemory,
}

impl AbortReason {
    /// Short machine-friendly label, used in stats output.
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::ReadValidation => "read-validation",
            AbortReason::InterThreadWriteConflict => "inter-ww",
            AbortReason::IntraThreadWar => "intra-war",
            AbortReason::IntraThreadWaw => "intra-waw",
            AbortReason::TransactionAbortSignal => "tx-abort-signal",
            AbortReason::TaskAbortSignal => "task-abort-signal",
            AbortReason::UserRetry => "user-retry",
            AbortReason::OutOfMemory => "out-of-memory",
        }
    }

    /// The abort-cause code this reason carries in `txobs` trace events
    /// (see [`txobs::trace::cause`]).
    pub fn trace_cause(self) -> u64 {
        match self {
            AbortReason::ReadValidation => txobs::trace::cause::READ_VALIDATION,
            AbortReason::InterThreadWriteConflict => txobs::trace::cause::INTER_WW,
            AbortReason::IntraThreadWar => txobs::trace::cause::INTRA_WAR,
            AbortReason::IntraThreadWaw => txobs::trace::cause::INTRA_WAW,
            AbortReason::TransactionAbortSignal => txobs::trace::cause::TX_SIGNAL,
            AbortReason::TaskAbortSignal => txobs::trace::cause::TASK_SIGNAL,
            AbortReason::UserRetry => txobs::trace::cause::USER_RETRY,
            AbortReason::OutOfMemory => txobs::trace::cause::OOM,
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Control-flow value returned by transactional operations when the enclosing
/// transaction or task must roll back and re-execute.
///
/// User transaction bodies simply propagate it with `?`; the runtime catches
/// it, rolls back and re-runs the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort {
    /// Why the abort happened.
    pub reason: AbortReason,
}

impl Abort {
    /// Creates an abort with the given reason.
    pub const fn new(reason: AbortReason) -> Self {
        Abort { reason }
    }

    /// Abort requested explicitly by user code (`retry`).
    pub const fn user_retry() -> Self {
        Abort::new(AbortReason::UserRetry)
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted: {}", self.reason)
    }
}

impl Error for Abort {}

impl From<AbortReason> for Abort {
    fn from(reason: AbortReason) -> Self {
        Abort::new(reason)
    }
}

/// Non-transactional memory errors (setup/allocation time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The heap ran out of reserved address space.
    HeapExhausted {
        /// Words requested by the failing allocation.
        requested: u64,
        /// Words still available.
        available: u64,
    },
    /// An allocation of zero words was requested.
    ZeroSizedAlloc,
    /// An address outside the allocated heap range was used.
    AddressOutOfRange {
        /// The offending address.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::HeapExhausted {
                requested,
                available,
            } => write!(
                f,
                "transactional heap exhausted: requested {requested} words, {available} available"
            ),
            MemError::ZeroSizedAlloc => write!(f, "zero-sized allocation requested"),
            MemError::AddressOutOfRange { addr } => {
                write!(f, "address {addr} is outside the allocated heap range")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_display_includes_reason() {
        let a = Abort::new(AbortReason::IntraThreadWar);
        assert!(a.to_string().contains("intra-war"));
        let b: Abort = AbortReason::ReadValidation.into();
        assert_eq!(b.reason, AbortReason::ReadValidation);
    }

    #[test]
    fn mem_error_display() {
        let e = MemError::HeapExhausted {
            requested: 10,
            available: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("3"));
        assert!(MemError::ZeroSizedAlloc.to_string().contains("zero"));
    }

    #[test]
    fn all_reasons_have_distinct_labels() {
        use AbortReason::*;
        let reasons = [
            ReadValidation,
            InterThreadWriteConflict,
            IntraThreadWar,
            IntraThreadWaw,
            TransactionAbortSignal,
            TaskAbortSignal,
            UserRetry,
            OutOfMemory,
        ];
        let mut labels: Vec<_> = reasons.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), reasons.len());
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<Abort>();
        assert_err::<MemError>();
    }
}
