//! # txmem — word-based transactional memory substrate
//!
//! This crate provides the shared substrate used by both the [`SwissTM`
//! baseline](https://dl.acm.org/doi/10.1145/1542476.1542494) reimplementation
//! (`swisstm` crate) and the TLSTM unified STM+TLS runtime (`tlstm` crate)
//! from *"Unifying Thread-Level Speculation and Transactional Memory"*
//! (Barreto et al., Middleware 2012).
//!
//! The substrate consists of:
//!
//! * [`TxHeap`] — a growable arena of 64-bit words ([`WordAddr`] addressed).
//!   Committed state is stored in plain atomics, so no `unsafe` is required
//!   for speculative execution: speculative values live in per-task logs and
//!   in per-lock write chains until commit.
//! * [`LockTable`] — the global table mapping every word address to an
//!   (r-lock, w-lock) pair, exactly as SwissTM does. The r-lock holds either a
//!   commit timestamp or a `LOCKED` sentinel; the w-lock holds the owner of
//!   the location plus a chain of speculative write entries
//!   ([`WriteChain`]) used by TLSTM tasks of the owning user-thread.
//! * [`WriteSet`] — the log-structured transactional write set shared by both
//!   runtimes: an append-only write log in program order with a bloom summary
//!   and a generation-stamped index, recyclable so steady-state transactions
//!   allocate nothing.
//! * [`GlobalClock`] — the global commit counter (`commit-ts` in the paper).
//! * [`TxMem`] — the uniform access trait implemented by both runtimes'
//!   transaction/task handles, so that transactional data structures
//!   (`txcollections`) and benchmarks (`tlstm-workloads`) are written once and
//!   run unchanged on either runtime.
//! * [`TxRuntime`] / [`TxSession`] — the *inter*-transaction counterpart to
//!   [`TxMem`]: construction from a config or shared substrate, per-thread
//!   sessions with a commit-retry loop ([`TxSession::run`]) and ordered
//!   task-group submission ([`TxSession::run_tasks`]), and statistics access.
//!   Implemented by the `swisstm` and `tlstm` runtimes and by the in-crate
//!   sequential reference runtime [`SeqRefRuntime`], so servers, workloads
//!   and the benchmark matrix are generic over the runtime.
//! * [`StatsCollector`] — cheap atomic counters for commits, aborts and
//!   conflict classes, sharded per user-thread into cache-line-aligned
//!   [`StatsShard`]s and used by the evaluation harness and by tests.
//!
//! ## Example
//!
//! ```rust
//! use txmem::{TxHeap, LockTable, GlobalClock, TxConfig};
//!
//! let config = TxConfig::default();
//! let heap = TxHeap::new(&config);
//! let locks = LockTable::new(&config);
//! let clock = GlobalClock::new();
//!
//! // Allocate three words of committed state and initialise them directly
//! // (outside of any transaction).
//! let block = heap.alloc(3).unwrap();
//! heap.store_committed(block, 42);
//! assert_eq!(heap.load_committed(block), 42);
//! assert_eq!(clock.now(), 0);
//! let _ = locks.entry_for(block);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod chain;
pub mod clock;
pub mod config;
pub mod error;
pub mod heap;
pub mod lock_table;
pub mod owner;
pub mod pause;
pub mod runtime;
pub mod seqref;
pub mod stats;
pub mod traits;
pub mod write_set;

pub use addr::{WordAddr, NULL_ADDR};
pub use chain::{SpecEntry, WriteChain};
pub use clock::{GlobalClock, ThreadIdAllocator};
pub use config::TxConfig;
pub use error::{Abort, AbortReason, MemError};
pub use heap::TxHeap;
pub use lock_table::{LockEntry, LockIndex, LockTable, LOCKED};
pub use owner::OwnerHandle;
pub use owner::{CmDecision, LockOwner, OwnerToken};
pub use runtime::{
    assert_txmem_object_safe, run_boxed_tasks, BoxedTaskBody, TaskBody, TxRuntime, TxSession,
};
pub use seqref::{SeqRefRuntime, SeqRefSession};
pub use stats::{StatsCollector, StatsShard, StatsSnapshot};
pub use traits::{DirectMem, TxMem};
pub use write_set::{WriteEntry, WriteSet};

/// Shared, immutable bundle of the global structures a runtime needs.
///
/// Both the SwissTM and the TLSTM runtime are built around one [`TxSubstrate`]
/// instance; benchmarks that compare the two runtimes on the *same* data
/// simply hand the same substrate to both.
#[derive(Debug)]
pub struct TxSubstrate {
    /// The word heap holding committed state.
    pub heap: TxHeap,
    /// The global lock table.
    pub locks: LockTable,
    /// The global commit timestamp (`commit-ts`).
    pub clock: GlobalClock,
    /// Global statistics counters.
    pub stats: StatsCollector,
    /// Configuration used to build the substrate.
    pub config: TxConfig,
}

impl TxSubstrate {
    /// Builds a substrate from a configuration.
    pub fn new(config: TxConfig) -> Self {
        Self {
            heap: TxHeap::new(&config),
            locks: LockTable::new(&config),
            clock: GlobalClock::new(),
            stats: StatsCollector::new(),
            config,
        }
    }
}

impl Default for TxSubstrate {
    fn default() -> Self {
        Self::new(TxConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substrate_default_builds() {
        let s = TxSubstrate::default();
        assert_eq!(s.clock.now(), 0);
        // Only the reserved null word is allocated on a fresh heap.
        assert_eq!(s.heap.words_allocated(), 1);
    }

    #[test]
    fn substrate_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TxSubstrate>();
    }
}
