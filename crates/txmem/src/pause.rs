//! Adaptive busy-wait helpers.
//!
//! Spinning only helps when the thread being waited on can make progress on
//! another core. On a single-core host every spin burns the exact CPU time
//! the other thread needs, so all wait loops in the runtimes consult
//! [`multi_core`] and fall straight through to `yield_now` when there is no
//! parallelism to exploit.

use std::sync::OnceLock;

/// `true` if the host exposes more than one unit of parallelism.
///
/// Cached after the first call; defaults to `true` when the parallelism
/// cannot be determined.
pub fn multi_core() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(true)
    })
}

/// Backs off inside a wait loop: spins on the `iteration`-th call only while
/// that is useful (multi-core host and below `spin_limit`), otherwise yields
/// the CPU to the thread being waited on.
#[inline]
pub fn contention_pause(iteration: u32, spin_limit: u32) {
    if multi_core() && iteration < spin_limit {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_core_is_stable() {
        assert_eq!(multi_core(), multi_core());
    }

    #[test]
    fn contention_pause_terminates() {
        for i in 0..200 {
            contention_pause(i, 64);
        }
    }
}
