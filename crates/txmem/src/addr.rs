//! Word addresses.
//!
//! The substrate exposes memory as an array of 64-bit words. A [`WordAddr`]
//! is the index of one word in the [`TxHeap`](crate::TxHeap). This mirrors the
//! word-based design of SwissTM (and hence TLSTM) where every program address
//! is mapped to a lock-table entry; here a "program address" is a heap word
//! index, which keeps the implementation free of raw pointers while preserving
//! the lock-granularity and hashing behaviour of the original systems.

use std::fmt;

/// A "null pointer" value for word-encoded references.
///
/// Transactional data structures store references to other heap blocks as
/// plain words; `NULL_ADDR` is the conventional sentinel for "no reference".
/// The heap reserves word 0 at construction time and never hands it out, so a
/// zero-initialised reference field reads back as null.
pub const NULL_ADDR: u64 = 0;

/// The index of one 64-bit word in the transactional heap.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WordAddr(pub u64);

impl WordAddr {
    /// Creates an address from a raw word index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        WordAddr(index)
    }

    /// Returns the raw word index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the address `offset` words after `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the addition overflows.
    #[inline]
    pub const fn offset(self, offset: u64) -> Self {
        WordAddr(self.0 + offset)
    }

    /// Returns `true` if this address is the conventional null sentinel.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == NULL_ADDR
    }

    /// The conventional null address.
    #[inline]
    pub const fn null() -> Self {
        WordAddr(NULL_ADDR)
    }
}

impl fmt::Debug for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "WordAddr(NULL)")
        } else {
            write!(f, "WordAddr({})", self.0)
        }
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for WordAddr {
    fn from(index: u64) -> Self {
        WordAddr(index)
    }
}

impl From<WordAddr> for u64 {
    fn from(addr: WordAddr) -> Self {
        addr.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_and_index_round_trip() {
        let a = WordAddr::new(10);
        assert_eq!(a.offset(5).index(), 15);
        assert_eq!(u64::from(a), 10);
        assert_eq!(WordAddr::from(10u64), a);
    }

    #[test]
    fn null_is_null() {
        assert!(WordAddr::null().is_null());
        assert!(WordAddr::new(0).is_null());
        assert!(!WordAddr::new(1).is_null());
        assert_eq!(format!("{:?}", WordAddr::null()), "WordAddr(NULL)");
        assert_eq!(format!("{}", WordAddr::new(3)), "WordAddr(3)");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(WordAddr::new(1) < WordAddr::new(2));
        assert_eq!(WordAddr::new(7), WordAddr::new(7));
    }
}
