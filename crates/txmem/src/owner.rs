//! Lock-owner abstraction used by the contention managers.
//!
//! When a transaction (SwissTM) or a user-thread's set of tasks (TLSTM) holds
//! a location's write lock, other threads that want the lock must consult the
//! contention manager. The contention manager needs to (a) inspect the owner's
//! progress/priority and (b) possibly signal it to abort. Both runtimes expose
//! that capability through the [`LockOwner`] trait so that the lock table can
//! store the owner uniformly.

use std::fmt;
use std::sync::Arc;

/// A compact token identifying which user-thread (TLSTM) or transaction
/// descriptor (SwissTM) owns a write lock.
///
/// `0` is reserved for "unlocked"; tokens handed to the lock table are always
/// `id + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OwnerToken(u64);

impl OwnerToken {
    /// Token meaning "nobody owns the lock".
    pub const UNLOCKED: OwnerToken = OwnerToken(0);

    /// Builds a token from a thread / transaction id.
    #[inline]
    pub fn from_id(id: u32) -> Self {
        OwnerToken(u64::from(id) + 1)
    }

    /// Recovers the id, or `None` for the unlocked token.
    #[inline]
    pub fn id(self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some((self.0 - 1) as u32)
        }
    }

    /// Raw packed representation (for storing in an atomic).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a token from its raw representation.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        OwnerToken(raw)
    }

    /// `true` if this is the unlocked token.
    #[inline]
    pub fn is_unlocked(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for OwnerToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.id() {
            None => write!(f, "unlocked"),
            Some(id) => write!(f, "owner#{id}"),
        }
    }
}

/// Decision returned by a contention manager when two owners conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmDecision {
    /// The requester must abort (roll back its transaction / task).
    AbortSelf,
    /// The current owner was signalled to abort; the requester should wait for
    /// the lock to be released and then retry the acquisition.
    AbortOwner,
    /// Neither side aborts; the requester should simply wait and retry
    /// (used while the owner is already in the process of aborting).
    Wait,
}

/// Interface the lock table exposes to contention managers for the current
/// owner of a write lock.
///
/// Implemented by the SwissTM transaction descriptor and by the TLSTM
/// user-transaction descriptor.
pub trait LockOwner: Send + Sync + fmt::Debug {
    /// Signals the owner that its user-transaction must abort.
    fn signal_abort(&self);

    /// `true` once the owner has observed (or completed) an abort request, or
    /// has already committed; in either case the lock will be released soon
    /// and waiting is the right strategy.
    fn is_finishing(&self) -> bool;

    /// Progress measure used by the task-aware TLSTM contention manager:
    /// number of tasks of the owner's user-transaction that have already
    /// completed (always `0` for plain SwissTM transactions).
    fn completed_progress(&self) -> u64;

    /// Greedy-contention-manager priority: smaller value = older = stronger.
    /// Two-phase greedy assigns `u64::MAX` until the transaction aborts for
    /// the first time and acquires a real ticket.
    fn cm_priority(&self) -> u64;

    /// Identifier of the owning user-thread, for assertions and tracing.
    fn owner_id(&self) -> u32;
}

/// Reference-counted owner handle stored in the lock table.
pub type OwnerHandle = Arc<dyn LockOwner>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trip() {
        let t = OwnerToken::from_id(7);
        assert_eq!(t.id(), Some(7));
        assert!(!t.is_unlocked());
        assert_eq!(OwnerToken::from_raw(t.raw()), t);
        assert_eq!(OwnerToken::UNLOCKED.id(), None);
        assert!(OwnerToken::UNLOCKED.is_unlocked());
    }

    #[test]
    fn token_display() {
        assert_eq!(OwnerToken::from_id(3).to_string(), "owner#3");
        assert_eq!(OwnerToken::UNLOCKED.to_string(), "unlocked");
    }

    #[test]
    fn tokens_for_distinct_ids_differ() {
        assert_ne!(OwnerToken::from_id(0), OwnerToken::UNLOCKED);
        assert_ne!(OwnerToken::from_id(0), OwnerToken::from_id(1));
    }
}
