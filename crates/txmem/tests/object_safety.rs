//! Regression pin: [`TxMem`] must stay object-safe. Every portable
//! transaction body runs through `&mut dyn TxMem` (see [`TxSession::run`]),
//! and the `txkv` durable front-end stores boxed bodies — adding a generic
//! method or a `Self: Sized` requirement to `TxMem` would silently break
//! every consumer. This test fails to *compile* if object safety is lost.

use txmem::{
    assert_txmem_object_safe, Abort, DirectMem, SeqRefRuntime, TxConfig, TxMem, TxSession,
    TxSubstrate,
};

// Compile-time pins: `dyn TxMem` must be a valid type and the helper must
// keep its trait-object signature.
const _PIN: fn(&mut dyn TxMem) -> Result<u64, Abort> = assert_txmem_object_safe;

fn _dyn_boxes_are_constructible(substrate: &TxSubstrate) -> Box<dyn TxMem + '_> {
    Box::new(DirectMem::new(&substrate.heap))
}

#[test]
fn direct_mem_works_through_a_trait_object() {
    let substrate = TxSubstrate::new(TxConfig::small());
    let mut direct = DirectMem::new(&substrate.heap);
    let mem: &mut dyn TxMem = &mut direct;
    assert_eq!(assert_txmem_object_safe(mem).unwrap(), 1);
}

#[test]
fn session_bodies_receive_a_trait_object() {
    let runtime = SeqRefRuntime::new(TxConfig::small());
    let mut session = runtime.session();
    // The body parameter *is* `&mut dyn TxMem`; passing it straight to the
    // object-safety helper pins the signature.
    let value = session.run(|mem| assert_txmem_object_safe(mem));
    assert_eq!(value, 1);
}
