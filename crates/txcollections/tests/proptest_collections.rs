//! Property-based tests: every transactional collection behaves exactly like
//! its `std` reference model under arbitrary operation sequences, and the
//! red-black tree keeps its balancing invariants.

use proptest::prelude::*;
use std::collections::{BTreeMap, VecDeque};

use txcollections::{TxCounter, TxHashMap, TxQueue, TxRbTree, TxSortedList};
use txmem::{DirectMem, TxConfig, TxHeap};

fn big_heap() -> TxHeap {
    let mut cfg = TxConfig::small();
    cfg.heap_capacity_words = 1 << 22;
    TxHeap::new(&cfg)
}

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn map_ops(key_space: u64, len: usize) -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..key_space, any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
            (0..key_space).prop_map(MapOp::Remove),
            (0..key_space).prop_map(MapOp::Get),
        ],
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rbtree_matches_btreemap(ops in map_ops(64, 400)) {
        let heap = big_heap();
        let mut mem = DirectMem::new(&heap);
        let tree = TxRbTree::create(&mut mem).unwrap();
        let mut model = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let fresh = tree.insert(&mut mem, k, v).unwrap();
                    prop_assert_eq!(fresh, model.insert(k, v).is_none());
                }
                MapOp::Remove(k) => {
                    let removed = tree.remove(&mut mem, k).unwrap();
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(tree.get(&mut mem, k).unwrap(), model.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(tree.len(&mut mem).unwrap(), model.len() as u64);
        let contents = tree.to_vec(&mut mem).unwrap();
        let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(contents, expected);
        // Structural invariants (panics internally on violation).
        tree.check_invariants(&mut mem).unwrap();
    }

    #[test]
    fn sorted_list_matches_btreemap(ops in map_ops(32, 200)) {
        let heap = big_heap();
        let mut mem = DirectMem::new(&heap);
        let list = TxSortedList::create(&mut mem).unwrap();
        let mut model = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let fresh = list.insert(&mut mem, k, v).unwrap();
                    prop_assert_eq!(fresh, model.insert(k, v).is_none());
                }
                MapOp::Remove(k) => {
                    let removed = list.remove(&mut mem, k).unwrap();
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(list.get(&mut mem, k).unwrap(), model.get(&k).copied());
                }
            }
        }
        let contents = list.to_vec(&mut mem).unwrap();
        let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(contents, expected);
    }

    #[test]
    fn hashmap_matches_btreemap(ops in map_ops(128, 300), buckets in 1u64..16) {
        let heap = big_heap();
        let mut mem = DirectMem::new(&heap);
        let map = TxHashMap::create(&mut mem, buckets).unwrap();
        let mut model = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let fresh = map.insert(&mut mem, k, v).unwrap();
                    prop_assert_eq!(fresh, model.insert(k, v).is_none());
                }
                MapOp::Remove(k) => {
                    let removed = map.remove(&mut mem, k).unwrap();
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(map.get(&mut mem, k).unwrap(), model.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(map.len(&mut mem).unwrap(), model.len() as u64);
        let mut contents = map.to_vec(&mut mem).unwrap();
        contents.sort_unstable();
        let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(contents, expected);
    }

    #[test]
    fn queue_matches_vecdeque(ops in prop::collection::vec(prop::option::of(any::<u64>()), 0..200)) {
        let heap = big_heap();
        let mut mem = DirectMem::new(&heap);
        let queue = TxQueue::create(&mut mem).unwrap();
        let mut model = VecDeque::new();
        // `Some(v)` enqueues v, `None` dequeues.
        for op in ops {
            match op {
                Some(v) => {
                    queue.enqueue(&mut mem, v).unwrap();
                    model.push_back(v);
                }
                None => {
                    prop_assert_eq!(queue.dequeue(&mut mem).unwrap(), model.pop_front());
                }
            }
            prop_assert_eq!(queue.peek(&mut mem).unwrap(), model.front().copied());
            prop_assert_eq!(queue.len(&mut mem).unwrap(), model.len() as u64);
        }
    }

    /// Removal-heavy rb-tree sequences over a small key space, with the
    /// balancing invariants re-checked after *every* mutation — this drives
    /// the rebalance-on-delete paths (red sibling rotations, double-black
    /// propagation) that an insert-biased mix rarely reaches. The op vector
    /// shrinks element-by-element, so failures minimise to short sequences.
    #[test]
    fn rbtree_survives_removal_heavy_churn(
        ops in prop::collection::vec(
            prop_oneof![
                (0..24u64, 0..1000u64).prop_map(|(k, v)| MapOp::Insert(k, v)),
                (0..24u64).prop_map(MapOp::Remove),
                (0..24u64).prop_map(MapOp::Remove),
                (0..24u64).prop_map(MapOp::Get),
            ],
            1..120,
        )
    ) {
        let heap = big_heap();
        let mut mem = DirectMem::new(&heap);
        let tree = TxRbTree::create(&mut mem).unwrap();
        let mut model = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(
                        tree.insert(&mut mem, k, v).unwrap(),
                        model.insert(k, v).is_none()
                    );
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(
                        tree.remove(&mut mem, k).unwrap(),
                        model.remove(&k).is_some()
                    );
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(tree.get(&mut mem, k).unwrap(), model.get(&k).copied());
                }
            }
            tree.check_invariants(&mut mem).unwrap();
        }
        // Drain the remainder through remove as well, still checking balance.
        let keys: Vec<u64> = model.keys().copied().collect();
        for k in keys {
            prop_assert!(tree.remove(&mut mem, k).unwrap());
            tree.check_invariants(&mut mem).unwrap();
        }
        prop_assert!(tree.is_empty(&mut mem).unwrap());
    }

    /// Alternating bursts of enqueues and dequeues (including full drains)
    /// exercise the queue's empty/non-empty boundary transitions, where the
    /// head/tail pointers are re-linked.
    #[test]
    fn queue_drain_refill_cycles_match_vecdeque(
        bursts in prop::collection::vec((1..20u64, 0..30u64), 1..24)
    ) {
        let heap = big_heap();
        let mut mem = DirectMem::new(&heap);
        let queue = TxQueue::create(&mut mem).unwrap();
        let mut model = VecDeque::new();
        let mut next_value = 0u64;
        for (enqueues, dequeues) in bursts {
            for _ in 0..enqueues {
                queue.enqueue(&mut mem, next_value).unwrap();
                model.push_back(next_value);
                next_value += 1;
            }
            // Dequeue possibly more than is present to hit the empty case.
            for _ in 0..dequeues {
                prop_assert_eq!(queue.dequeue(&mut mem).unwrap(), model.pop_front());
            }
            prop_assert_eq!(queue.len(&mut mem).unwrap(), model.len() as u64);
            prop_assert_eq!(queue.peek(&mut mem).unwrap(), model.front().copied());
            prop_assert_eq!(queue.is_empty(&mut mem).unwrap(), model.is_empty());
        }
        // FIFO order must survive to the very end.
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(queue.dequeue(&mut mem).unwrap(), Some(expected));
        }
        prop_assert_eq!(queue.dequeue(&mut mem).unwrap(), None);
    }

    /// The counter behaves like a plain u64 accumulator under arbitrary
    /// add/sub/set sequences (sub saturates at zero by contract).
    #[test]
    fn counter_matches_u64_model(
        ops in prop::collection::vec((0..3u64, 0..1000u64), 0..100)
    ) {
        let heap = big_heap();
        let mut mem = DirectMem::new(&heap);
        let counter = TxCounter::create(&mut mem).unwrap();
        let mut model = 0u64;
        for (kind, amount) in ops {
            match kind {
                0 => {
                    counter.add(&mut mem, amount).unwrap();
                    model += amount;
                }
                1 => {
                    counter.sub(&mut mem, amount).unwrap();
                    model = model.saturating_sub(amount);
                }
                _ => {
                    counter.set(&mut mem, amount).unwrap();
                    model = amount;
                }
            }
            prop_assert_eq!(counter.get(&mut mem).unwrap(), model);
        }
    }
}
