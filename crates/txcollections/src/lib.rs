//! # txcollections — transactional data structures
//!
//! Data structures stored in the transactional word heap and accessed through
//! the [`txmem::TxMem`] trait, so that exactly the same code runs on
//! the SwissTM baseline and on TLSTM tasks. The benchmarks of the TLSTM paper
//! are built from these structures:
//!
//! * [`TxRbTree`] — a red-black tree (the classic STM micro-benchmark, also
//!   the backing store of the Vacation reservation tables);
//! * [`TxSortedList`] — a sorted singly-linked list (customer reservation
//!   lists in Vacation, index lists in STMBench7);
//! * [`TxHashMap`] — a fixed-bucket chained hash map;
//! * [`TxQueue`] — a FIFO queue;
//! * [`TxCounter`] — a shared counter word.
//!
//! Every structure is a thin, `Copy` handle around the heap address of its
//! header block; the memory itself lives in the shared [`txmem::TxHeap`].
//!
//! ## Example
//!
//! ```rust
//! use txcollections::TxRbTree;
//! use txmem::{DirectMem, TxConfig, TxHeap, TxMem};
//!
//! let heap = TxHeap::new(&TxConfig::small());
//! let mut mem = DirectMem::new(&heap);
//! let tree = TxRbTree::create(&mut mem)?;
//! tree.insert(&mut mem, 10, 100)?;
//! tree.insert(&mut mem, 5, 50)?;
//! assert_eq!(tree.get(&mut mem, 5)?, Some(50));
//! assert_eq!(tree.len(&mut mem)?, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod counter;
pub mod hashmap;
pub mod list;
pub mod queue;
pub mod rbtree;

pub use counter::TxCounter;
pub use hashmap::TxHashMap;
pub use list::TxSortedList;
pub use queue::TxQueue;
pub use rbtree::TxRbTree;

pub use txmem::{Abort, TxMem, WordAddr};
