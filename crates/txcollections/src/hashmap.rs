//! A transactional fixed-bucket chained hash map.
//!
//! Header layout: `n_buckets, size, bucket_0_head, bucket_1_head, ...`.
//! Each bucket is an unsorted singly-linked chain of 3-word nodes
//! (`key, value, next`).

use txmem::{Abort, TxMem, WordAddr};

const NODE_WORDS: u64 = 3;
const OFF_KEY: u64 = 0;
const OFF_VALUE: u64 = 1;
const OFF_NEXT: u64 = 2;

const HDR_BUCKETS: u64 = 0;
const HDR_SIZE: u64 = 1;
const HDR_TABLE: u64 = 2;

/// Handle to a transactional hash map (the address of its header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxHashMap {
    header: WordAddr,
}

impl TxHashMap {
    /// Allocates a map with `n_buckets` buckets (rounded up to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates allocation failure from the underlying memory.
    pub fn create<M: TxMem>(mem: &mut M, n_buckets: u64) -> Result<Self, Abort> {
        let n_buckets = n_buckets.max(1);
        let header = mem.alloc(HDR_TABLE + n_buckets)?;
        mem.write(header.offset(HDR_BUCKETS), n_buckets)?;
        mem.write(header.offset(HDR_SIZE), 0)?;
        for b in 0..n_buckets {
            mem.write_ref(header.offset(HDR_TABLE + b), None)?;
        }
        Ok(TxHashMap { header })
    }

    /// Re-creates a handle from a previously obtained header address.
    pub fn from_header(header: WordAddr) -> Self {
        TxHashMap { header }
    }

    /// The heap address of the map header.
    pub fn header(&self) -> WordAddr {
        self.header
    }

    fn bucket_slot<M: TxMem>(&self, mem: &mut M, key: u64) -> Result<WordAddr, Abort> {
        let n = mem.read(self.header.offset(HDR_BUCKETS))?;
        // Fibonacci hashing keeps adjacent keys in different buckets.
        let hash = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Ok(self.header.offset(HDR_TABLE + hash % n))
    }

    /// Number of entries in the map.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len<M: TxMem>(&self, mem: &mut M) -> Result<u64, Abort> {
        mem.read(self.header.offset(HDR_SIZE))
    }

    /// `true` if the map has no entries.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn is_empty<M: TxMem>(&self, mem: &mut M) -> Result<bool, Abort> {
        Ok(self.len(mem)? == 0)
    }

    /// Inserts `key → value`. Returns `false` (updating the value) if the key
    /// was already present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn insert<M: TxMem>(&self, mem: &mut M, key: u64, value: u64) -> Result<bool, Abort> {
        let slot = self.bucket_slot(mem, key)?;
        let head = mem.read_ref(slot)?;
        let mut cur = head;
        while let Some(node) = cur {
            if mem.read(node.offset(OFF_KEY))? == key {
                mem.write(node.offset(OFF_VALUE), value)?;
                return Ok(false);
            }
            cur = mem.read_ref(node.offset(OFF_NEXT))?;
        }
        let node = mem.alloc(NODE_WORDS)?;
        mem.write(node.offset(OFF_KEY), key)?;
        mem.write(node.offset(OFF_VALUE), value)?;
        mem.write_ref(node.offset(OFF_NEXT), head)?;
        mem.write_ref(slot, Some(node))?;
        let size = mem.read(self.header.offset(HDR_SIZE))?;
        mem.write(self.header.offset(HDR_SIZE), size + 1)?;
        Ok(true)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get<M: TxMem>(&self, mem: &mut M, key: u64) -> Result<Option<u64>, Abort> {
        let slot = self.bucket_slot(mem, key)?;
        let mut cur = mem.read_ref(slot)?;
        while let Some(node) = cur {
            if mem.read(node.offset(OFF_KEY))? == key {
                return Ok(Some(mem.read(node.offset(OFF_VALUE))?));
            }
            cur = mem.read_ref(node.offset(OFF_NEXT))?;
        }
        Ok(None)
    }

    /// `true` if `key` is present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn contains<M: TxMem>(&self, mem: &mut M, key: u64) -> Result<bool, Abort> {
        Ok(self.get(mem, key)?.is_some())
    }

    /// Removes `key`. Returns `true` if it was present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn remove<M: TxMem>(&self, mem: &mut M, key: u64) -> Result<bool, Abort> {
        let slot = self.bucket_slot(mem, key)?;
        let mut prev: Option<WordAddr> = None;
        let mut cur = mem.read_ref(slot)?;
        while let Some(node) = cur {
            if mem.read(node.offset(OFF_KEY))? == key {
                let next = mem.read_ref(node.offset(OFF_NEXT))?;
                match prev {
                    None => mem.write_ref(slot, next)?,
                    Some(p) => mem.write_ref(p.offset(OFF_NEXT), next)?,
                }
                let size = mem.read(self.header.offset(HDR_SIZE))?;
                mem.write(self.header.offset(HDR_SIZE), size - 1)?;
                return Ok(true);
            }
            prev = Some(node);
            cur = mem.read_ref(node.offset(OFF_NEXT))?;
        }
        Ok(false)
    }

    /// Collects all `(key, value)` pairs (bucket order, then chain order).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn to_vec<M: TxMem>(&self, mem: &mut M) -> Result<Vec<(u64, u64)>, Abort> {
        let n = mem.read(self.header.offset(HDR_BUCKETS))?;
        let mut out = Vec::new();
        for b in 0..n {
            let mut cur = mem.read_ref(self.header.offset(HDR_TABLE + b))?;
            while let Some(node) = cur {
                out.push((
                    mem.read(node.offset(OFF_KEY))?,
                    mem.read(node.offset(OFF_VALUE))?,
                ));
                cur = mem.read_ref(node.offset(OFF_NEXT))?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::{DirectMem, TxConfig, TxHeap};

    fn heap() -> TxHeap {
        TxHeap::new(&TxConfig::small())
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let map = TxHashMap::create(&mut mem, 8).unwrap();
        for k in 0..50u64 {
            assert!(map.insert(&mut mem, k, k * 3).unwrap());
        }
        assert_eq!(map.len(&mut mem).unwrap(), 50);
        for k in 0..50u64 {
            assert_eq!(map.get(&mut mem, k).unwrap(), Some(k * 3));
        }
        assert_eq!(map.get(&mut mem, 99).unwrap(), None);
        for k in (0..50u64).step_by(2) {
            assert!(map.remove(&mut mem, k).unwrap());
        }
        assert_eq!(map.len(&mut mem).unwrap(), 25);
        assert!(!map.remove(&mut mem, 0).unwrap());
        assert!(map.contains(&mut mem, 1).unwrap());
        assert!(!map.contains(&mut mem, 2).unwrap());
    }

    #[test]
    fn duplicate_insert_updates_in_place() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let map = TxHashMap::create(&mut mem, 4).unwrap();
        assert!(map.insert(&mut mem, 7, 1).unwrap());
        assert!(!map.insert(&mut mem, 7, 2).unwrap());
        assert_eq!(map.get(&mut mem, 7).unwrap(), Some(2));
        assert_eq!(map.len(&mut mem).unwrap(), 1);
    }

    #[test]
    fn single_bucket_degenerates_to_a_list_but_still_works() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let map = TxHashMap::create(&mut mem, 1).unwrap();
        for k in 0..20u64 {
            map.insert(&mut mem, k, k).unwrap();
        }
        let mut all = map.to_vec(&mut mem).unwrap();
        all.sort_unstable();
        assert_eq!(all, (0..20u64).map(|k| (k, k)).collect::<Vec<_>>());
    }

    #[test]
    fn zero_bucket_request_is_clamped() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let map = TxHashMap::create(&mut mem, 0).unwrap();
        assert!(map.insert(&mut mem, 1, 1).unwrap());
        assert_eq!(map.get(&mut mem, 1).unwrap(), Some(1));
    }
}
