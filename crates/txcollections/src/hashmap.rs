//! A transactional fixed-bucket chained hash map.
//!
//! Header layout: `n_buckets, size, bucket_0_head, bucket_1_head, ...`.
//! Each bucket is an unsorted singly-linked chain of 3-word nodes
//! (`key, value, next`).

use txmem::{Abort, TxMem, WordAddr};

const NODE_WORDS: u64 = 3;
const OFF_KEY: u64 = 0;
const OFF_VALUE: u64 = 1;
const OFF_NEXT: u64 = 2;

const HDR_BUCKETS: u64 = 0;
const HDR_SIZE: u64 = 1;
const HDR_TABLE: u64 = 2;

/// Handle to a transactional hash map (the address of its header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxHashMap {
    header: WordAddr,
}

impl TxHashMap {
    /// Allocates a map with `n_buckets` buckets (rounded up to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates allocation failure from the underlying memory.
    pub fn create<M: TxMem + ?Sized>(mem: &mut M, n_buckets: u64) -> Result<Self, Abort> {
        let n_buckets = n_buckets.max(1);
        let header = mem.alloc(HDR_TABLE + n_buckets)?;
        mem.write(header.offset(HDR_BUCKETS), n_buckets)?;
        mem.write(header.offset(HDR_SIZE), 0)?;
        for b in 0..n_buckets {
            mem.write_ref(header.offset(HDR_TABLE + b), None)?;
        }
        Ok(TxHashMap { header })
    }

    /// Allocates a map pre-sized for `expected_entries` entries: the bucket
    /// count is the next power of two of the expected entry count, so chains
    /// stay around one node long at the expected fill and the map never needs
    /// rehashing in steady state.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure from the underlying memory.
    pub fn with_capacity<M: TxMem + ?Sized>(
        mem: &mut M,
        expected_entries: u64,
    ) -> Result<Self, Abort> {
        // Cap the pre-allocation at 2^24 buckets (128 MiB of heads) so an
        // absurd capacity request degrades into longer chains, not OOM.
        let buckets = expected_entries
            .max(1)
            .checked_next_power_of_two()
            .unwrap_or(1 << 24)
            .min(1 << 24);
        Self::create(mem, buckets)
    }

    /// Re-creates a handle from a previously obtained header address.
    pub fn from_header(header: WordAddr) -> Self {
        TxHashMap { header }
    }

    /// Number of buckets the map was created with.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn bucket_count<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<u64, Abort> {
        mem.read(self.header.offset(HDR_BUCKETS))
    }

    /// The heap address of the map header.
    pub fn header(&self) -> WordAddr {
        self.header
    }

    fn bucket_slot<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<WordAddr, Abort> {
        let n = mem.read(self.header.offset(HDR_BUCKETS))?;
        // Fibonacci hashing, taking the product's *high* bits: the low bits
        // of `key * C mod 2^k` depend only on the key's low bits, which are
        // exactly what an outer power-of-two sharding (txkv) already fixed —
        // using them would leave most buckets of a shard's map empty.
        let hash = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Ok(self.header.offset(HDR_TABLE + (hash >> 32) % n))
    }

    /// Number of entries in the map.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<u64, Abort> {
        mem.read(self.header.offset(HDR_SIZE))
    }

    /// `true` if the map has no entries.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn is_empty<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<bool, Abort> {
        Ok(self.len(mem)? == 0)
    }

    /// Inserts `key → value`. Returns `false` (updating the value) if the key
    /// was already present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn insert<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        key: u64,
        value: u64,
    ) -> Result<bool, Abort> {
        let slot = self.bucket_slot(mem, key)?;
        let head = mem.read_ref(slot)?;
        let mut cur = head;
        while let Some(node) = cur {
            if mem.read(node.offset(OFF_KEY))? == key {
                mem.write(node.offset(OFF_VALUE), value)?;
                return Ok(false);
            }
            cur = mem.read_ref(node.offset(OFF_NEXT))?;
        }
        let node = mem.alloc(NODE_WORDS)?;
        mem.write(node.offset(OFF_KEY), key)?;
        mem.write(node.offset(OFF_VALUE), value)?;
        mem.write_ref(node.offset(OFF_NEXT), head)?;
        mem.write_ref(slot, Some(node))?;
        let size = mem.read(self.header.offset(HDR_SIZE))?;
        mem.write(self.header.offset(HDR_SIZE), size + 1)?;
        Ok(true)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<Option<u64>, Abort> {
        let slot = self.bucket_slot(mem, key)?;
        let mut cur = mem.read_ref(slot)?;
        while let Some(node) = cur {
            if mem.read(node.offset(OFF_KEY))? == key {
                return Ok(Some(mem.read(node.offset(OFF_VALUE))?));
            }
            cur = mem.read_ref(node.offset(OFF_NEXT))?;
        }
        Ok(None)
    }

    /// `true` if `key` is present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn contains<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<bool, Abort> {
        Ok(self.get(mem, key)?.is_some())
    }

    /// Removes `key`. Returns `true` if it was present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn remove<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<bool, Abort> {
        let slot = self.bucket_slot(mem, key)?;
        let mut prev: Option<WordAddr> = None;
        let mut cur = mem.read_ref(slot)?;
        while let Some(node) = cur {
            if mem.read(node.offset(OFF_KEY))? == key {
                let next = mem.read_ref(node.offset(OFF_NEXT))?;
                match prev {
                    None => mem.write_ref(slot, next)?,
                    Some(p) => mem.write_ref(p.offset(OFF_NEXT), next)?,
                }
                let size = mem.read(self.header.offset(HDR_SIZE))?;
                mem.write(self.header.offset(HDR_SIZE), size - 1)?;
                return Ok(true);
            }
            prev = Some(node);
            cur = mem.read_ref(node.offset(OFF_NEXT))?;
        }
        Ok(false)
    }

    /// Visits every `(key, value)` pair (bucket order, then chain order)
    /// without materialising an intermediate vector. [`Self::to_vec`] and
    /// whole-map consistency checks (e.g. `txkv`'s shard/index audit) are
    /// built on it.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn for_each<M: TxMem + ?Sized, F>(&self, mem: &mut M, mut visit: F) -> Result<(), Abort>
    where
        F: FnMut(u64, u64),
    {
        let n = mem.read(self.header.offset(HDR_BUCKETS))?;
        for b in 0..n {
            let mut cur = mem.read_ref(self.header.offset(HDR_TABLE + b))?;
            while let Some(node) = cur {
                visit(
                    mem.read(node.offset(OFF_KEY))?,
                    mem.read(node.offset(OFF_VALUE))?,
                );
                cur = mem.read_ref(node.offset(OFF_NEXT))?;
            }
        }
        Ok(())
    }

    /// Collects all `(key, value)` pairs (bucket order, then chain order).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn to_vec<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<Vec<(u64, u64)>, Abort> {
        let mut out = Vec::new();
        self.for_each(mem, |k, v| out.push((k, v)))?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::{DirectMem, TxConfig, TxHeap};

    fn heap() -> TxHeap {
        TxHeap::new(&TxConfig::small())
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let map = TxHashMap::create(&mut mem, 8).unwrap();
        for k in 0..50u64 {
            assert!(map.insert(&mut mem, k, k * 3).unwrap());
        }
        assert_eq!(map.len(&mut mem).unwrap(), 50);
        for k in 0..50u64 {
            assert_eq!(map.get(&mut mem, k).unwrap(), Some(k * 3));
        }
        assert_eq!(map.get(&mut mem, 99).unwrap(), None);
        for k in (0..50u64).step_by(2) {
            assert!(map.remove(&mut mem, k).unwrap());
        }
        assert_eq!(map.len(&mut mem).unwrap(), 25);
        assert!(!map.remove(&mut mem, 0).unwrap());
        assert!(map.contains(&mut mem, 1).unwrap());
        assert!(!map.contains(&mut mem, 2).unwrap());
    }

    #[test]
    fn duplicate_insert_updates_in_place() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let map = TxHashMap::create(&mut mem, 4).unwrap();
        assert!(map.insert(&mut mem, 7, 1).unwrap());
        assert!(!map.insert(&mut mem, 7, 2).unwrap());
        assert_eq!(map.get(&mut mem, 7).unwrap(), Some(2));
        assert_eq!(map.len(&mut mem).unwrap(), 1);
    }

    #[test]
    fn single_bucket_degenerates_to_a_list_but_still_works() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let map = TxHashMap::create(&mut mem, 1).unwrap();
        for k in 0..20u64 {
            map.insert(&mut mem, k, k).unwrap();
        }
        let mut all = map.to_vec(&mut mem).unwrap();
        all.sort_unstable();
        assert_eq!(all, (0..20u64).map(|k| (k, k)).collect::<Vec<_>>());
    }

    #[test]
    fn bucket_hash_spreads_keys_that_share_low_bits() {
        // Keys with identical low bits (the residue class an outer
        // power-of-two sharding fixes) must still fan out over the buckets.
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let map = TxHashMap::create(&mut mem, 64).unwrap();
        for i in 0..256u64 {
            map.insert(&mut mem, i * 16 + 3, i).unwrap();
        }
        let mut used = std::collections::HashSet::new();
        for b in 0..64u64 {
            let head = mem.read_ref(map.header().offset(HDR_TABLE + b)).unwrap();
            if head.is_some() {
                used.insert(b);
            }
        }
        assert!(
            used.len() > 48,
            "256 same-residue keys occupy only {}/64 buckets",
            used.len()
        );
    }

    #[test]
    fn with_capacity_presizes_buckets() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let map = TxHashMap::with_capacity(&mut mem, 100).unwrap();
        assert_eq!(map.bucket_count(&mut mem).unwrap(), 128);
        for k in 0..100u64 {
            map.insert(&mut mem, k, k + 1).unwrap();
        }
        assert_eq!(map.len(&mut mem).unwrap(), 100);
        // Power-of-two request is taken as-is, zero is clamped to one bucket.
        let map = TxHashMap::with_capacity(&mut mem, 64).unwrap();
        assert_eq!(map.bucket_count(&mut mem).unwrap(), 64);
        let map = TxHashMap::with_capacity(&mut mem, 0).unwrap();
        assert_eq!(map.bucket_count(&mut mem).unwrap(), 1);
    }

    #[test]
    fn for_each_visits_every_entry_once() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let map = TxHashMap::create(&mut mem, 8).unwrap();
        for k in 0..30u64 {
            map.insert(&mut mem, k, k * 7).unwrap();
        }
        let mut seen = Vec::new();
        map.for_each(&mut mem, |k, v| seen.push((k, v))).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..30u64).map(|k| (k, k * 7)).collect::<Vec<_>>());
        // to_vec is just a collected for_each.
        let mut collected = map.to_vec(&mut mem).unwrap();
        collected.sort_unstable();
        assert_eq!(collected, seen);
    }

    #[test]
    fn zero_bucket_request_is_clamped() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let map = TxHashMap::create(&mut mem, 0).unwrap();
        assert!(map.insert(&mut mem, 1, 1).unwrap());
        assert_eq!(map.get(&mut mem, 1).unwrap(), Some(1));
    }
}
