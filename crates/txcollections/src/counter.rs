//! A transactional counter word (and small fixed-size arrays of counters).

use txmem::{Abort, TxMem, WordAddr};

/// Handle to a single transactional counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxCounter {
    addr: WordAddr,
}

impl TxCounter {
    /// Allocates a counter initialised to zero.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure from the underlying memory.
    pub fn create<M: TxMem + ?Sized>(mem: &mut M) -> Result<Self, Abort> {
        let addr = mem.alloc(1)?;
        mem.write(addr, 0)?;
        Ok(TxCounter { addr })
    }

    /// Wraps an existing word as a counter.
    pub fn at(addr: WordAddr) -> Self {
        TxCounter { addr }
    }

    /// The counter's heap address.
    pub fn addr(&self) -> WordAddr {
        self.addr
    }

    /// Reads the counter.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<u64, Abort> {
        mem.read(self.addr)
    }

    /// Sets the counter.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn set<M: TxMem + ?Sized>(&self, mem: &mut M, value: u64) -> Result<(), Abort> {
        mem.write(self.addr, value)
    }

    /// Adds `delta` and returns the new value.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn add<M: TxMem + ?Sized>(&self, mem: &mut M, delta: u64) -> Result<u64, Abort> {
        let v = mem.read(self.addr)?.wrapping_add(delta);
        mem.write(self.addr, v)?;
        Ok(v)
    }

    /// Subtracts `delta` (saturating at zero) and returns the new value.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn sub<M: TxMem + ?Sized>(&self, mem: &mut M, delta: u64) -> Result<u64, Abort> {
        let v = mem.read(self.addr)?.saturating_sub(delta);
        mem.write(self.addr, v)?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::{DirectMem, TxConfig, TxHeap};

    #[test]
    fn counter_arithmetic() {
        let heap = TxHeap::new(&TxConfig::small());
        let mut mem = DirectMem::new(&heap);
        let c = TxCounter::create(&mut mem).unwrap();
        assert_eq!(c.get(&mut mem).unwrap(), 0);
        assert_eq!(c.add(&mut mem, 5).unwrap(), 5);
        assert_eq!(c.add(&mut mem, 3).unwrap(), 8);
        assert_eq!(c.sub(&mut mem, 10).unwrap(), 0, "saturating subtraction");
        c.set(&mut mem, 42).unwrap();
        assert_eq!(c.get(&mut mem).unwrap(), 42);
        assert_eq!(TxCounter::at(c.addr()).get(&mut mem).unwrap(), 42);
    }
}
