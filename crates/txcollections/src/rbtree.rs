//! A transactional red-black tree.
//!
//! The classic STM benchmark data structure (and the backing store of the
//! Vacation reservation tables). Keys and values are `u64` words; the tree is
//! a standard CLRS red-black tree with parent pointers, stored entirely in the
//! transactional heap.
//!
//! Node layout (6 words): `key, value, left, right, parent, color`.
//! Header layout (2 words): `root, size`.

use txmem::{Abort, TxMem, WordAddr};

const NODE_WORDS: u64 = 6;
const OFF_KEY: u64 = 0;
const OFF_VALUE: u64 = 1;
const OFF_LEFT: u64 = 2;
const OFF_RIGHT: u64 = 3;
const OFF_PARENT: u64 = 4;
const OFF_COLOR: u64 = 5;

const HDR_WORDS: u64 = 2;
const HDR_ROOT: u64 = 0;
const HDR_SIZE: u64 = 1;

const RED: u64 = 0;
const BLACK: u64 = 1;

/// Handle to a transactional red-black tree (the address of its header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxRbTree {
    header: WordAddr,
}

impl TxRbTree {
    /// Allocates an empty tree.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure from the underlying memory.
    pub fn create<M: TxMem + ?Sized>(mem: &mut M) -> Result<Self, Abort> {
        let header = mem.alloc(HDR_WORDS)?;
        mem.write_ref(header.offset(HDR_ROOT), None)?;
        mem.write(header.offset(HDR_SIZE), 0)?;
        Ok(TxRbTree { header })
    }

    /// Re-creates a handle from a previously obtained header address.
    pub fn from_header(header: WordAddr) -> Self {
        TxRbTree { header }
    }

    /// The heap address of the tree header (for storing the handle inside
    /// other transactional structures).
    pub fn header(&self) -> WordAddr {
        self.header
    }

    /// Number of keys currently stored.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<u64, Abort> {
        mem.read(self.header.offset(HDR_SIZE))
    }

    /// `true` if the tree holds no keys.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn is_empty<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<bool, Abort> {
        Ok(self.len(mem)? == 0)
    }

    fn root<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<Option<WordAddr>, Abort> {
        mem.read_ref(self.header.offset(HDR_ROOT))
    }

    fn set_root<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        node: Option<WordAddr>,
    ) -> Result<(), Abort> {
        mem.write_ref(self.header.offset(HDR_ROOT), node)
    }

    /// Looks up `key` and returns its value, if present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<Option<u64>, Abort> {
        let mut cur = self.root(mem)?;
        while let Some(node) = cur {
            let nkey = mem.read(node.offset(OFF_KEY))?;
            if key == nkey {
                return Ok(Some(mem.read(node.offset(OFF_VALUE))?));
            }
            cur = if key < nkey {
                mem.read_ref(node.offset(OFF_LEFT))?
            } else {
                mem.read_ref(node.offset(OFF_RIGHT))?
            };
        }
        Ok(None)
    }

    /// `true` if `key` is present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn contains<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<bool, Abort> {
        Ok(self.get(mem, key)?.is_some())
    }

    /// Inserts `key → value`. Returns `false` (and updates the value) if the
    /// key was already present, `true` if a new node was inserted.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn insert<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        key: u64,
        value: u64,
    ) -> Result<bool, Abort> {
        // Standard BST descent.
        let mut parent: Option<WordAddr> = None;
        let mut cur = self.root(mem)?;
        let mut went_left = false;
        while let Some(node) = cur {
            let nkey = mem.read(node.offset(OFF_KEY))?;
            if key == nkey {
                mem.write(node.offset(OFF_VALUE), value)?;
                return Ok(false);
            }
            parent = Some(node);
            if key < nkey {
                went_left = true;
                cur = mem.read_ref(node.offset(OFF_LEFT))?;
            } else {
                went_left = false;
                cur = mem.read_ref(node.offset(OFF_RIGHT))?;
            }
        }
        // Allocate and link the new red node.
        let node = mem.alloc(NODE_WORDS)?;
        mem.write(node.offset(OFF_KEY), key)?;
        mem.write(node.offset(OFF_VALUE), value)?;
        mem.write_ref(node.offset(OFF_LEFT), None)?;
        mem.write_ref(node.offset(OFF_RIGHT), None)?;
        mem.write_ref(node.offset(OFF_PARENT), parent)?;
        mem.write(node.offset(OFF_COLOR), RED)?;
        match parent {
            None => self.set_root(mem, Some(node))?,
            Some(p) => {
                let slot = if went_left { OFF_LEFT } else { OFF_RIGHT };
                mem.write_ref(p.offset(slot), Some(node))?;
            }
        }
        let size = mem.read(self.header.offset(HDR_SIZE))?;
        mem.write(self.header.offset(HDR_SIZE), size + 1)?;
        self.insert_fixup(mem, node)?;
        Ok(true)
    }

    fn color<M: TxMem + ?Sized>(&self, mem: &mut M, node: Option<WordAddr>) -> Result<u64, Abort> {
        match node {
            None => Ok(BLACK),
            Some(n) => mem.read(n.offset(OFF_COLOR)),
        }
    }

    fn set_color<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        node: WordAddr,
        color: u64,
    ) -> Result<(), Abort> {
        mem.write(node.offset(OFF_COLOR), color)
    }

    fn parent_of<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        node: WordAddr,
    ) -> Result<Option<WordAddr>, Abort> {
        mem.read_ref(node.offset(OFF_PARENT))
    }

    fn left_of<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        node: WordAddr,
    ) -> Result<Option<WordAddr>, Abort> {
        mem.read_ref(node.offset(OFF_LEFT))
    }

    fn right_of<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        node: WordAddr,
    ) -> Result<Option<WordAddr>, Abort> {
        mem.read_ref(node.offset(OFF_RIGHT))
    }

    fn rotate_left<M: TxMem + ?Sized>(&self, mem: &mut M, x: WordAddr) -> Result<(), Abort> {
        let y = self
            .right_of(mem, x)?
            .expect("rotate_left requires a right child");
        let y_left = self.left_of(mem, y)?;
        mem.write_ref(x.offset(OFF_RIGHT), y_left)?;
        if let Some(yl) = y_left {
            mem.write_ref(yl.offset(OFF_PARENT), Some(x))?;
        }
        let x_parent = self.parent_of(mem, x)?;
        mem.write_ref(y.offset(OFF_PARENT), x_parent)?;
        match x_parent {
            None => self.set_root(mem, Some(y))?,
            Some(p) => {
                if self.left_of(mem, p)? == Some(x) {
                    mem.write_ref(p.offset(OFF_LEFT), Some(y))?;
                } else {
                    mem.write_ref(p.offset(OFF_RIGHT), Some(y))?;
                }
            }
        }
        mem.write_ref(y.offset(OFF_LEFT), Some(x))?;
        mem.write_ref(x.offset(OFF_PARENT), Some(y))?;
        Ok(())
    }

    fn rotate_right<M: TxMem + ?Sized>(&self, mem: &mut M, x: WordAddr) -> Result<(), Abort> {
        let y = self
            .left_of(mem, x)?
            .expect("rotate_right requires a left child");
        let y_right = self.right_of(mem, y)?;
        mem.write_ref(x.offset(OFF_LEFT), y_right)?;
        if let Some(yr) = y_right {
            mem.write_ref(yr.offset(OFF_PARENT), Some(x))?;
        }
        let x_parent = self.parent_of(mem, x)?;
        mem.write_ref(y.offset(OFF_PARENT), x_parent)?;
        match x_parent {
            None => self.set_root(mem, Some(y))?,
            Some(p) => {
                if self.right_of(mem, p)? == Some(x) {
                    mem.write_ref(p.offset(OFF_RIGHT), Some(y))?;
                } else {
                    mem.write_ref(p.offset(OFF_LEFT), Some(y))?;
                }
            }
        }
        mem.write_ref(y.offset(OFF_RIGHT), Some(x))?;
        mem.write_ref(x.offset(OFF_PARENT), Some(y))?;
        Ok(())
    }

    fn insert_fixup<M: TxMem + ?Sized>(&self, mem: &mut M, mut z: WordAddr) -> Result<(), Abort> {
        loop {
            let parent = match self.parent_of(mem, z)? {
                Some(p) if self.color(mem, Some(p))? == RED => p,
                _ => break,
            };
            let grandparent = self
                .parent_of(mem, parent)?
                .expect("a red node always has a parent");
            if Some(parent) == self.left_of(mem, grandparent)? {
                let uncle = self.right_of(mem, grandparent)?;
                if self.color(mem, uncle)? == RED {
                    self.set_color(mem, parent, BLACK)?;
                    self.set_color(mem, uncle.expect("red uncle exists"), BLACK)?;
                    self.set_color(mem, grandparent, RED)?;
                    z = grandparent;
                } else {
                    if Some(z) == self.right_of(mem, parent)? {
                        z = parent;
                        self.rotate_left(mem, z)?;
                    }
                    let parent = self.parent_of(mem, z)?.expect("parent exists after rotate");
                    let grandparent = self
                        .parent_of(mem, parent)?
                        .expect("grandparent exists after rotate");
                    self.set_color(mem, parent, BLACK)?;
                    self.set_color(mem, grandparent, RED)?;
                    self.rotate_right(mem, grandparent)?;
                }
            } else {
                let uncle = self.left_of(mem, grandparent)?;
                if self.color(mem, uncle)? == RED {
                    self.set_color(mem, parent, BLACK)?;
                    self.set_color(mem, uncle.expect("red uncle exists"), BLACK)?;
                    self.set_color(mem, grandparent, RED)?;
                    z = grandparent;
                } else {
                    if Some(z) == self.left_of(mem, parent)? {
                        z = parent;
                        self.rotate_right(mem, z)?;
                    }
                    let parent = self.parent_of(mem, z)?.expect("parent exists after rotate");
                    let grandparent = self
                        .parent_of(mem, parent)?
                        .expect("grandparent exists after rotate");
                    self.set_color(mem, parent, BLACK)?;
                    self.set_color(mem, grandparent, RED)?;
                    self.rotate_left(mem, grandparent)?;
                }
            }
        }
        if let Some(root) = self.root(mem)? {
            self.set_color(mem, root, BLACK)?;
        }
        Ok(())
    }

    fn find_node<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        key: u64,
    ) -> Result<Option<WordAddr>, Abort> {
        let mut cur = self.root(mem)?;
        while let Some(node) = cur {
            let nkey = mem.read(node.offset(OFF_KEY))?;
            if key == nkey {
                return Ok(Some(node));
            }
            cur = if key < nkey {
                mem.read_ref(node.offset(OFF_LEFT))?
            } else {
                mem.read_ref(node.offset(OFF_RIGHT))?
            };
        }
        Ok(None)
    }

    fn minimum<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        mut node: WordAddr,
    ) -> Result<WordAddr, Abort> {
        while let Some(left) = self.left_of(mem, node)? {
            node = left;
        }
        Ok(node)
    }

    /// Replaces the subtree rooted at `u` with the subtree rooted at `v`
    /// (CLRS `RB-TRANSPLANT`); `v` may be absent.
    fn transplant<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        u: WordAddr,
        v: Option<WordAddr>,
    ) -> Result<(), Abort> {
        let u_parent = self.parent_of(mem, u)?;
        match u_parent {
            None => self.set_root(mem, v)?,
            Some(p) => {
                if self.left_of(mem, p)? == Some(u) {
                    mem.write_ref(p.offset(OFF_LEFT), v)?;
                } else {
                    mem.write_ref(p.offset(OFF_RIGHT), v)?;
                }
            }
        }
        if let Some(v) = v {
            mem.write_ref(v.offset(OFF_PARENT), u_parent)?;
        }
        Ok(())
    }

    /// Removes `key`. Returns `true` if the key was present.
    ///
    /// Uses the classic CLRS deletion rewritten without a sentinel node: the
    /// fix-up tracks an "absent" node through its parent.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn remove<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<bool, Abort> {
        let z = match self.find_node(mem, key)? {
            Some(z) => z,
            None => return Ok(false),
        };
        // `fix_node`/`fix_parent` identify the position that takes over y's
        // original black height once the splice is done.
        let mut removed_color;
        let fix_node: Option<WordAddr>;
        let fix_parent: Option<WordAddr>;
        let z_left = self.left_of(mem, z)?;
        let z_right = self.right_of(mem, z)?;
        if z_left.is_none() {
            removed_color = self.color(mem, Some(z))?;
            fix_node = z_right;
            fix_parent = self.parent_of(mem, z)?;
            self.transplant(mem, z, z_right)?;
        } else if z_right.is_none() {
            removed_color = self.color(mem, Some(z))?;
            fix_node = z_left;
            fix_parent = self.parent_of(mem, z)?;
            self.transplant(mem, z, z_left)?;
        } else {
            let y = self.minimum(mem, z_right.expect("checked above"))?;
            removed_color = self.color(mem, Some(y))?;
            let y_right = self.right_of(mem, y)?;
            if self.parent_of(mem, y)? == Some(z) {
                fix_parent = Some(y);
                fix_node = y_right;
            } else {
                fix_parent = self.parent_of(mem, y)?;
                fix_node = y_right;
                self.transplant(mem, y, y_right)?;
                let zr = self.right_of(mem, z)?;
                mem.write_ref(y.offset(OFF_RIGHT), zr)?;
                if let Some(zr) = zr {
                    mem.write_ref(zr.offset(OFF_PARENT), Some(y))?;
                }
            }
            self.transplant(mem, z, Some(y))?;
            let zl = self.left_of(mem, z)?;
            mem.write_ref(y.offset(OFF_LEFT), zl)?;
            if let Some(zl) = zl {
                mem.write_ref(zl.offset(OFF_PARENT), Some(y))?;
            }
            let z_color = self.color(mem, Some(z))?;
            self.set_color(mem, y, z_color)?;
        }
        let size = mem.read(self.header.offset(HDR_SIZE))?;
        mem.write(self.header.offset(HDR_SIZE), size - 1)?;
        if removed_color == BLACK {
            self.remove_fixup(mem, fix_node, fix_parent)?;
        }
        // Note: the removed node's words are leaked, matching the allocation
        // model of the substrate (no transactional free).
        removed_color = BLACK;
        let _ = removed_color;
        Ok(true)
    }

    /// CLRS `RB-DELETE-FIXUP`, tracking a possibly-absent `x` through its
    /// parent.
    fn remove_fixup<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        mut x: Option<WordAddr>,
        mut parent: Option<WordAddr>,
    ) -> Result<(), Abort> {
        loop {
            let root = self.root(mem)?;
            if x == root || self.color(mem, x)? == RED {
                break;
            }
            let p = match parent {
                Some(p) => p,
                None => break,
            };
            if self.left_of(mem, p)? == x {
                let mut w = self
                    .right_of(mem, p)?
                    .expect("sibling exists while x is doubly black");
                if self.color(mem, Some(w))? == RED {
                    self.set_color(mem, w, BLACK)?;
                    self.set_color(mem, p, RED)?;
                    self.rotate_left(mem, p)?;
                    w = self
                        .right_of(mem, p)?
                        .expect("new sibling exists after rotation");
                }
                let w_left = self.left_of(mem, w)?;
                let w_right = self.right_of(mem, w)?;
                if self.color(mem, w_left)? == BLACK && self.color(mem, w_right)? == BLACK {
                    self.set_color(mem, w, RED)?;
                    x = Some(p);
                    parent = self.parent_of(mem, p)?;
                } else {
                    if self.color(mem, w_right)? == BLACK {
                        if let Some(wl) = w_left {
                            self.set_color(mem, wl, BLACK)?;
                        }
                        self.set_color(mem, w, RED)?;
                        self.rotate_right(mem, w)?;
                        w = self
                            .right_of(mem, p)?
                            .expect("sibling exists after rotation");
                    }
                    let p_color = self.color(mem, Some(p))?;
                    self.set_color(mem, w, p_color)?;
                    self.set_color(mem, p, BLACK)?;
                    if let Some(wr) = self.right_of(mem, w)? {
                        self.set_color(mem, wr, BLACK)?;
                    }
                    self.rotate_left(mem, p)?;
                    x = self.root(mem)?;
                    parent = None;
                }
            } else {
                let mut w = self
                    .left_of(mem, p)?
                    .expect("sibling exists while x is doubly black");
                if self.color(mem, Some(w))? == RED {
                    self.set_color(mem, w, BLACK)?;
                    self.set_color(mem, p, RED)?;
                    self.rotate_right(mem, p)?;
                    w = self
                        .left_of(mem, p)?
                        .expect("new sibling exists after rotation");
                }
                let w_left = self.left_of(mem, w)?;
                let w_right = self.right_of(mem, w)?;
                if self.color(mem, w_left)? == BLACK && self.color(mem, w_right)? == BLACK {
                    self.set_color(mem, w, RED)?;
                    x = Some(p);
                    parent = self.parent_of(mem, p)?;
                } else {
                    if self.color(mem, w_left)? == BLACK {
                        if let Some(wr) = w_right {
                            self.set_color(mem, wr, BLACK)?;
                        }
                        self.set_color(mem, w, RED)?;
                        self.rotate_left(mem, w)?;
                        w = self
                            .left_of(mem, p)?
                            .expect("sibling exists after rotation");
                    }
                    let p_color = self.color(mem, Some(p))?;
                    self.set_color(mem, w, p_color)?;
                    self.set_color(mem, p, BLACK)?;
                    if let Some(wl) = self.left_of(mem, w)? {
                        self.set_color(mem, wl, BLACK)?;
                    }
                    self.rotate_right(mem, p)?;
                    x = self.root(mem)?;
                    parent = None;
                }
            }
        }
        if let Some(x) = x {
            self.set_color(mem, x, BLACK)?;
        }
        Ok(())
    }

    /// Returns the smallest key ≥ `key`, with its value (range queries in the
    /// Vacation benchmark).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn ceiling<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        key: u64,
    ) -> Result<Option<(u64, u64)>, Abort> {
        let mut cur = self.root(mem)?;
        let mut best: Option<(u64, u64)> = None;
        while let Some(node) = cur {
            let nkey = mem.read(node.offset(OFF_KEY))?;
            if nkey == key {
                return Ok(Some((nkey, mem.read(node.offset(OFF_VALUE))?)));
            }
            if nkey > key {
                best = Some((nkey, mem.read(node.offset(OFF_VALUE))?));
                cur = mem.read_ref(node.offset(OFF_LEFT))?;
            } else {
                cur = mem.read_ref(node.offset(OFF_RIGHT))?;
            }
        }
        Ok(best)
    }

    /// Appends up to `limit` `(key, value)` pairs with keys in `lo..hi`, in
    /// ascending key order, to `out`.
    ///
    /// One pruned in-order traversal: O(log n) to reach `lo`, then O(1)
    /// amortised per returned entry — unlike repeated [`Self::ceiling`]
    /// calls, which pay a full root descent per entry.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn range_into<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        lo: u64,
        hi: u64,
        limit: u64,
        out: &mut Vec<(u64, u64)>,
    ) -> Result<(), Abort> {
        let mut taken = 0u64;
        let mut stack = Vec::new();
        // Descend towards `lo`, stacking every node whose key is in range
        // (the left spine of the candidate region).
        let mut cur = self.root(mem)?;
        while let Some(node) = cur {
            cur = if mem.read(node.offset(OFF_KEY))? >= lo {
                stack.push(node);
                self.left_of(mem, node)?
            } else {
                self.right_of(mem, node)?
            };
        }
        // Nodes now pop in ascending key order; stop at `hi` or `limit`.
        while let Some(node) = stack.pop() {
            let key = mem.read(node.offset(OFF_KEY))?;
            if key >= hi || taken >= limit {
                return Ok(());
            }
            out.push((key, mem.read(node.offset(OFF_VALUE))?));
            taken += 1;
            // In-order successor: right child, then its left spine (every
            // key there exceeds `key`, so no further `lo` pruning needed).
            let mut cur = self.right_of(mem, node)?;
            while let Some(n) = cur {
                stack.push(n);
                cur = self.left_of(mem, n)?;
            }
        }
        Ok(())
    }

    /// Collects all `(key, value)` pairs in ascending key order (used for
    /// validation in tests and by full traversal workloads).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn to_vec<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<Vec<(u64, u64)>, Abort> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut cur = self.root(mem)?;
        loop {
            while let Some(node) = cur {
                stack.push(node);
                cur = self.left_of(mem, node)?;
            }
            let node = match stack.pop() {
                Some(n) => n,
                None => break,
            };
            out.push((
                mem.read(node.offset(OFF_KEY))?,
                mem.read(node.offset(OFF_VALUE))?,
            ));
            cur = self.right_of(mem, node)?;
        }
        Ok(out)
    }

    /// Checks the red-black invariants (test/diagnostic helper): root is
    /// black, no red node has a red child, and every root-to-leaf path has the
    /// same number of black nodes. Returns the tree's black height.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn check_invariants<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<u64, Abort> {
        let root = self.root(mem)?;
        assert_eq!(self.color(mem, root)?, BLACK, "root must be black");
        self.check_subtree(mem, root, None, None)
    }

    fn check_subtree<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        node: Option<WordAddr>,
        min: Option<u64>,
        max: Option<u64>,
    ) -> Result<u64, Abort> {
        let node = match node {
            None => return Ok(1),
            Some(n) => n,
        };
        let key = mem.read(node.offset(OFF_KEY))?;
        if let Some(min) = min {
            assert!(key > min, "BST order violated");
        }
        if let Some(max) = max {
            assert!(key < max, "BST order violated");
        }
        let color = self.color(mem, Some(node))?;
        let left = self.left_of(mem, node)?;
        let right = self.right_of(mem, node)?;
        if color == RED {
            assert_eq!(
                self.color(mem, left)?,
                BLACK,
                "red node with red left child"
            );
            assert_eq!(
                self.color(mem, right)?,
                BLACK,
                "red node with red right child"
            );
        }
        let lh = self.check_subtree(mem, left, min, Some(key))?;
        let rh = self.check_subtree(mem, right, Some(key), max)?;
        assert_eq!(lh, rh, "black height mismatch");
        Ok(lh + u64::from(color == BLACK))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::{DirectMem, TxConfig, TxHeap};

    fn heap() -> TxHeap {
        let mut cfg = TxConfig::small();
        cfg.heap_capacity_words = 1 << 20;
        TxHeap::new(&cfg)
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let tree = TxRbTree::create(&mut mem).unwrap();
        assert!(tree.is_empty(&mut mem).unwrap());
        assert!(tree.insert(&mut mem, 5, 50).unwrap());
        assert!(tree.insert(&mut mem, 3, 30).unwrap());
        assert!(tree.insert(&mut mem, 8, 80).unwrap());
        assert!(!tree.insert(&mut mem, 5, 55).unwrap(), "duplicate key");
        assert_eq!(tree.get(&mut mem, 5).unwrap(), Some(55));
        assert_eq!(tree.get(&mut mem, 3).unwrap(), Some(30));
        assert_eq!(tree.get(&mut mem, 9).unwrap(), None);
        assert_eq!(tree.len(&mut mem).unwrap(), 3);
        assert!(tree.remove(&mut mem, 3).unwrap());
        assert!(!tree.remove(&mut mem, 3).unwrap());
        assert_eq!(tree.get(&mut mem, 3).unwrap(), None);
        assert_eq!(tree.len(&mut mem).unwrap(), 2);
        tree.check_invariants(&mut mem).unwrap();
    }

    #[test]
    fn ascending_insertions_stay_balanced() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let tree = TxRbTree::create(&mut mem).unwrap();
        for i in 0..256 {
            tree.insert(&mut mem, i, i * 2).unwrap();
        }
        let black_height = tree.check_invariants(&mut mem).unwrap();
        // A red-black tree with 256 nodes has black height well below 256.
        assert!(black_height <= 10);
        assert_eq!(tree.len(&mut mem).unwrap(), 256);
        let all = tree.to_vec(&mut mem).unwrap();
        assert_eq!(all.len(), 256);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn ceiling_finds_next_key() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let tree = TxRbTree::create(&mut mem).unwrap();
        for k in [10u64, 20, 30, 40] {
            tree.insert(&mut mem, k, k).unwrap();
        }
        assert_eq!(tree.ceiling(&mut mem, 5).unwrap(), Some((10, 10)));
        assert_eq!(tree.ceiling(&mut mem, 20).unwrap(), Some((20, 20)));
        assert_eq!(tree.ceiling(&mut mem, 21).unwrap(), Some((30, 30)));
        assert_eq!(tree.ceiling(&mut mem, 41).unwrap(), None);
    }

    #[test]
    fn random_workload_matches_reference_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let tree = TxRbTree::create(&mut mem).unwrap();
        let mut reference = std::collections::BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let key = rng.gen_range(0..200u64);
            match rng.gen_range(0..3) {
                0 => {
                    let value = rng.gen_range(0..1000u64);
                    let inserted = tree.insert(&mut mem, key, value).unwrap();
                    assert_eq!(inserted, reference.insert(key, value).is_none());
                }
                1 => {
                    let removed = tree.remove(&mut mem, key).unwrap();
                    assert_eq!(removed, reference.remove(&key).is_some());
                }
                _ => {
                    assert_eq!(
                        tree.get(&mut mem, key).unwrap(),
                        reference.get(&key).copied()
                    );
                }
            }
        }
        assert_eq!(tree.len(&mut mem).unwrap(), reference.len() as u64);
        let all = tree.to_vec(&mut mem).unwrap();
        let expected: Vec<(u64, u64)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(all, expected);
        tree.check_invariants(&mut mem).unwrap();
    }

    #[test]
    fn range_into_matches_filtered_to_vec() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let tree = TxRbTree::create(&mut mem).unwrap();
        for i in 0..200u64 {
            tree.insert(&mut mem, (i * 37) % 301, i).unwrap();
        }
        let all = tree.to_vec(&mut mem).unwrap();
        for (lo, hi, limit) in [
            (0u64, 301u64, u64::MAX),
            (50, 150, u64::MAX),
            (50, 150, 7),
            (150, 50, u64::MAX), // empty range
            (300, 400, u64::MAX),
            (0, 1, 0), // zero limit
        ] {
            let mut got = Vec::new();
            tree.range_into(&mut mem, lo, hi, limit, &mut got).unwrap();
            let want: Vec<(u64, u64)> = all
                .iter()
                .filter(|(k, _)| (lo..hi).contains(k))
                .take(limit as usize)
                .copied()
                .collect();
            assert_eq!(got, want, "range [{lo}, {hi}) limit {limit}");
        }
        // Empty tree.
        let empty = TxRbTree::create(&mut mem).unwrap();
        let mut got = Vec::new();
        empty.range_into(&mut mem, 0, 100, 10, &mut got).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn remove_all_leaves_empty_tree() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let tree = TxRbTree::create(&mut mem).unwrap();
        let keys: Vec<u64> = (0..64).map(|i| (i * 37) % 101).collect();
        for &k in &keys {
            tree.insert(&mut mem, k, k).unwrap();
        }
        for &k in &keys {
            assert!(tree.remove(&mut mem, k).unwrap());
            tree.check_invariants(&mut mem).unwrap();
        }
        assert!(tree.is_empty(&mut mem).unwrap());
        assert_eq!(tree.to_vec(&mut mem).unwrap(), Vec::new());
    }
}
