//! A transactional sorted singly-linked list.
//!
//! Node layout (3 words): `key, value, next`.
//! Header layout (2 words): `head, size`.

use txmem::{Abort, TxMem, WordAddr};

const NODE_WORDS: u64 = 3;
const OFF_KEY: u64 = 0;
const OFF_VALUE: u64 = 1;
const OFF_NEXT: u64 = 2;

const HDR_WORDS: u64 = 2;
const HDR_HEAD: u64 = 0;
const HDR_SIZE: u64 = 1;

/// Handle to a transactional sorted list (the address of its header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxSortedList {
    header: WordAddr,
}

impl TxSortedList {
    /// Allocates an empty list.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure from the underlying memory.
    pub fn create<M: TxMem + ?Sized>(mem: &mut M) -> Result<Self, Abort> {
        let header = mem.alloc(HDR_WORDS)?;
        mem.write_ref(header.offset(HDR_HEAD), None)?;
        mem.write(header.offset(HDR_SIZE), 0)?;
        Ok(TxSortedList { header })
    }

    /// Re-creates a handle from a previously obtained header address.
    pub fn from_header(header: WordAddr) -> Self {
        TxSortedList { header }
    }

    /// The heap address of the list header.
    pub fn header(&self) -> WordAddr {
        self.header
    }

    /// Number of elements in the list.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<u64, Abort> {
        mem.read(self.header.offset(HDR_SIZE))
    }

    /// `true` if the list holds no elements.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn is_empty<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<bool, Abort> {
        Ok(self.len(mem)? == 0)
    }

    /// Inserts `key → value` keeping keys sorted. Returns `false` (updating
    /// the value in place) if the key was already present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn insert<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        key: u64,
        value: u64,
    ) -> Result<bool, Abort> {
        let mut prev: Option<WordAddr> = None;
        let mut cur = mem.read_ref(self.header.offset(HDR_HEAD))?;
        while let Some(node) = cur {
            let nkey = mem.read(node.offset(OFF_KEY))?;
            if nkey == key {
                mem.write(node.offset(OFF_VALUE), value)?;
                return Ok(false);
            }
            if nkey > key {
                break;
            }
            prev = Some(node);
            cur = mem.read_ref(node.offset(OFF_NEXT))?;
        }
        let node = mem.alloc(NODE_WORDS)?;
        mem.write(node.offset(OFF_KEY), key)?;
        mem.write(node.offset(OFF_VALUE), value)?;
        mem.write_ref(node.offset(OFF_NEXT), cur)?;
        match prev {
            None => mem.write_ref(self.header.offset(HDR_HEAD), Some(node))?,
            Some(p) => mem.write_ref(p.offset(OFF_NEXT), Some(node))?,
        }
        let size = mem.read(self.header.offset(HDR_SIZE))?;
        mem.write(self.header.offset(HDR_SIZE), size + 1)?;
        Ok(true)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<Option<u64>, Abort> {
        let mut cur = mem.read_ref(self.header.offset(HDR_HEAD))?;
        while let Some(node) = cur {
            let nkey = mem.read(node.offset(OFF_KEY))?;
            if nkey == key {
                return Ok(Some(mem.read(node.offset(OFF_VALUE))?));
            }
            if nkey > key {
                return Ok(None);
            }
            cur = mem.read_ref(node.offset(OFF_NEXT))?;
        }
        Ok(None)
    }

    /// `true` if `key` is present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn contains<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<bool, Abort> {
        Ok(self.get(mem, key)?.is_some())
    }

    /// Removes `key`. Returns `true` if it was present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn remove<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<bool, Abort> {
        let mut prev: Option<WordAddr> = None;
        let mut cur = mem.read_ref(self.header.offset(HDR_HEAD))?;
        while let Some(node) = cur {
            let nkey = mem.read(node.offset(OFF_KEY))?;
            if nkey == key {
                let next = mem.read_ref(node.offset(OFF_NEXT))?;
                match prev {
                    None => mem.write_ref(self.header.offset(HDR_HEAD), next)?,
                    Some(p) => mem.write_ref(p.offset(OFF_NEXT), next)?,
                }
                let size = mem.read(self.header.offset(HDR_SIZE))?;
                mem.write(self.header.offset(HDR_SIZE), size - 1)?;
                return Ok(true);
            }
            if nkey > key {
                return Ok(false);
            }
            prev = Some(node);
            cur = mem.read_ref(node.offset(OFF_NEXT))?;
        }
        Ok(false)
    }

    /// Collects all `(key, value)` pairs in key order.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn to_vec<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<Vec<(u64, u64)>, Abort> {
        let mut out = Vec::new();
        let mut cur = mem.read_ref(self.header.offset(HDR_HEAD))?;
        while let Some(node) = cur {
            out.push((
                mem.read(node.offset(OFF_KEY))?,
                mem.read(node.offset(OFF_VALUE))?,
            ));
            cur = mem.read_ref(node.offset(OFF_NEXT))?;
        }
        Ok(out)
    }

    /// Applies `f` to every `(key, value)` pair in key order (traversals).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts (including aborts raised by `f`).
    pub fn for_each<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        mut f: impl FnMut(&mut M, u64, u64) -> Result<(), Abort>,
    ) -> Result<(), Abort> {
        let mut cur = mem.read_ref(self.header.offset(HDR_HEAD))?;
        while let Some(node) = cur {
            let key = mem.read(node.offset(OFF_KEY))?;
            let value = mem.read(node.offset(OFF_VALUE))?;
            f(mem, key, value)?;
            cur = mem.read_ref(node.offset(OFF_NEXT))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::{DirectMem, TxConfig, TxHeap};

    fn heap() -> TxHeap {
        TxHeap::new(&TxConfig::small())
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let list = TxSortedList::create(&mut mem).unwrap();
        for k in [5u64, 1, 9, 3, 7] {
            assert!(list.insert(&mut mem, k, k * 10).unwrap());
        }
        assert_eq!(
            list.to_vec(&mut mem).unwrap(),
            vec![(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]
        );
        assert_eq!(list.len(&mut mem).unwrap(), 5);
    }

    #[test]
    fn duplicate_insert_updates_value() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let list = TxSortedList::create(&mut mem).unwrap();
        assert!(list.insert(&mut mem, 4, 40).unwrap());
        assert!(!list.insert(&mut mem, 4, 44).unwrap());
        assert_eq!(list.get(&mut mem, 4).unwrap(), Some(44));
        assert_eq!(list.len(&mut mem).unwrap(), 1);
    }

    #[test]
    fn remove_head_middle_tail() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let list = TxSortedList::create(&mut mem).unwrap();
        for k in 1..=5u64 {
            list.insert(&mut mem, k, k).unwrap();
        }
        assert!(list.remove(&mut mem, 1).unwrap()); // head
        assert!(list.remove(&mut mem, 3).unwrap()); // middle
        assert!(list.remove(&mut mem, 5).unwrap()); // tail
        assert!(!list.remove(&mut mem, 9).unwrap());
        assert_eq!(list.to_vec(&mut mem).unwrap(), vec![(2, 2), (4, 4)]);
    }

    #[test]
    fn get_and_contains_on_missing_keys() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let list = TxSortedList::create(&mut mem).unwrap();
        assert!(list.is_empty(&mut mem).unwrap());
        assert_eq!(list.get(&mut mem, 1).unwrap(), None);
        list.insert(&mut mem, 10, 1).unwrap();
        assert!(!list.contains(&mut mem, 5).unwrap());
        assert!(!list.contains(&mut mem, 15).unwrap());
        assert!(list.contains(&mut mem, 10).unwrap());
    }

    #[test]
    fn for_each_visits_in_order() {
        let heap = heap();
        let mut mem = DirectMem::new(&heap);
        let list = TxSortedList::create(&mut mem).unwrap();
        for k in [3u64, 1, 2] {
            list.insert(&mut mem, k, k).unwrap();
        }
        let mut seen = Vec::new();
        list.for_each(&mut mem, |_, k, _| {
            seen.push(k);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
    }
}
