//! A transactional FIFO queue.
//!
//! Node layout (2 words): `value, next`.
//! Header layout (3 words): `head, tail, size`.

use txmem::{Abort, TxMem, WordAddr};

const NODE_WORDS: u64 = 2;
const OFF_VALUE: u64 = 0;
const OFF_NEXT: u64 = 1;

const HDR_WORDS: u64 = 3;
const HDR_HEAD: u64 = 0;
const HDR_TAIL: u64 = 1;
const HDR_SIZE: u64 = 2;

/// Handle to a transactional FIFO queue (the address of its header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxQueue {
    header: WordAddr,
}

impl TxQueue {
    /// Allocates an empty queue.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure from the underlying memory.
    pub fn create<M: TxMem + ?Sized>(mem: &mut M) -> Result<Self, Abort> {
        let header = mem.alloc(HDR_WORDS)?;
        mem.write_ref(header.offset(HDR_HEAD), None)?;
        mem.write_ref(header.offset(HDR_TAIL), None)?;
        mem.write(header.offset(HDR_SIZE), 0)?;
        Ok(TxQueue { header })
    }

    /// Re-creates a handle from a previously obtained header address.
    pub fn from_header(header: WordAddr) -> Self {
        TxQueue { header }
    }

    /// The heap address of the queue header.
    pub fn header(&self) -> WordAddr {
        self.header
    }

    /// Number of queued elements.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<u64, Abort> {
        mem.read(self.header.offset(HDR_SIZE))
    }

    /// `true` if the queue is empty.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn is_empty<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<bool, Abort> {
        Ok(self.len(mem)? == 0)
    }

    /// Appends `value` at the tail.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn enqueue<M: TxMem + ?Sized>(&self, mem: &mut M, value: u64) -> Result<(), Abort> {
        let node = mem.alloc(NODE_WORDS)?;
        mem.write(node.offset(OFF_VALUE), value)?;
        mem.write_ref(node.offset(OFF_NEXT), None)?;
        match mem.read_ref(self.header.offset(HDR_TAIL))? {
            None => {
                mem.write_ref(self.header.offset(HDR_HEAD), Some(node))?;
            }
            Some(tail) => {
                mem.write_ref(tail.offset(OFF_NEXT), Some(node))?;
            }
        }
        mem.write_ref(self.header.offset(HDR_TAIL), Some(node))?;
        let size = mem.read(self.header.offset(HDR_SIZE))?;
        mem.write(self.header.offset(HDR_SIZE), size + 1)?;
        Ok(())
    }

    /// Removes and returns the head element, if any.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn dequeue<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<Option<u64>, Abort> {
        let head = match mem.read_ref(self.header.offset(HDR_HEAD))? {
            None => return Ok(None),
            Some(h) => h,
        };
        let value = mem.read(head.offset(OFF_VALUE))?;
        let next = mem.read_ref(head.offset(OFF_NEXT))?;
        mem.write_ref(self.header.offset(HDR_HEAD), next)?;
        if next.is_none() {
            mem.write_ref(self.header.offset(HDR_TAIL), None)?;
        }
        let size = mem.read(self.header.offset(HDR_SIZE))?;
        mem.write(self.header.offset(HDR_SIZE), size - 1)?;
        Ok(Some(value))
    }

    /// Returns the head element without removing it.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn peek<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<Option<u64>, Abort> {
        match mem.read_ref(self.header.offset(HDR_HEAD))? {
            None => Ok(None),
            Some(head) => Ok(Some(mem.read(head.offset(OFF_VALUE))?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::{DirectMem, TxConfig, TxHeap};

    #[test]
    fn fifo_order_preserved() {
        let heap = TxHeap::new(&TxConfig::small());
        let mut mem = DirectMem::new(&heap);
        let q = TxQueue::create(&mut mem).unwrap();
        assert!(q.is_empty(&mut mem).unwrap());
        assert_eq!(q.dequeue(&mut mem).unwrap(), None);
        for v in 1..=5u64 {
            q.enqueue(&mut mem, v).unwrap();
        }
        assert_eq!(q.len(&mut mem).unwrap(), 5);
        assert_eq!(q.peek(&mut mem).unwrap(), Some(1));
        for v in 1..=5u64 {
            assert_eq!(q.dequeue(&mut mem).unwrap(), Some(v));
        }
        assert_eq!(q.dequeue(&mut mem).unwrap(), None);
        assert!(q.is_empty(&mut mem).unwrap());
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let heap = TxHeap::new(&TxConfig::small());
        let mut mem = DirectMem::new(&heap);
        let q = TxQueue::create(&mut mem).unwrap();
        q.enqueue(&mut mem, 1).unwrap();
        q.enqueue(&mut mem, 2).unwrap();
        assert_eq!(q.dequeue(&mut mem).unwrap(), Some(1));
        q.enqueue(&mut mem, 3).unwrap();
        assert_eq!(q.dequeue(&mut mem).unwrap(), Some(2));
        assert_eq!(q.dequeue(&mut mem).unwrap(), Some(3));
        assert_eq!(q.peek(&mut mem).unwrap(), None);
        // Tail pointer must have been reset: new enqueues still work.
        q.enqueue(&mut mem, 4).unwrap();
        assert_eq!(q.dequeue(&mut mem).unwrap(), Some(4));
    }
}
