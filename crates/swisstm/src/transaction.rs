//! The SwissTM transaction.
//!
//! Implements the algorithm of §3.1 of the TLSTM paper: eager write/write
//! locking through the global lock table, invisible reads with lazy
//! counter-based validation (`valid-ts` + read-log extension), buffered writes
//! applied at commit under the written locations' r-locks.
//!
//! ## Zero-allocation hot path
//!
//! Mirroring the original SwissTM implementation (whose descriptors and
//! read/write logs are reused across transactions precisely so the fast path
//! stays allocation-free), a [`Transaction`] owns **no** speculative state of
//! its own: it borrows its thread's recycled
//! [`TxContext`], which provides
//!
//! * the **read log** — an append-only `(lock, version)` vector whose
//!   capacity survives resets;
//! * the **log-structured write set** ([`txmem::WriteSet`]) — an append-only
//!   write log in program order plus a 64-bit bloom summary, so the dominant
//!   read-path question "did I write this address?" is answered by two bit
//!   tests instead of a hash-map probe, and commit write-back applies each
//!   word exactly once (final value, deterministic order);
//! * the **acquired-locks log** — `(lock, previous r-lock version)` pairs
//!   that double as the commit-time undo list, replacing the per-commit
//!   `old_versions` hash map;
//! * the thread's **reused descriptor**, re-armed per attempt and published
//!   to contenders through the runtime's owner registry (the lock table's
//!   write chains are no longer touched by SwissTM at all — chains are a
//!   TLSTM-only structure, allocated lazily).
//!
//! After a thread's context has warmed up to the workload's footprint, the
//! read, write, commit and rollback paths perform zero heap allocations;
//! `crates/swisstm/tests/zero_alloc.rs` pins this with a counting allocator.

use txmem::{
    Abort, AbortReason, CmDecision, GlobalClock, LockEntry, LockIndex, LockTable, OwnerToken,
    StatsShard, TxHeap, TxMem, WordAddr, LOCKED,
};

use crate::cm::GreedyCm;
use crate::context::TxContext;
use crate::descriptor::TxDescriptor;
use crate::runtime::SwisstmRuntime;

/// How many busy-spin iterations a waiter performs before yielding the CPU
/// (spinning is skipped entirely on single-core hosts).
const SPIN_BEFORE_YIELD: u32 = 64;

/// Spin/yield helper used when waiting for a lock to be released.
pub(crate) fn contention_pause(iteration: u32) {
    txmem::pause::contention_pause(iteration, SPIN_BEFORE_YIELD);
}

/// A single SwissTM transaction attempt.
///
/// Created by [`SwisstmThread::atomic`](crate::SwisstmThread::atomic) over the
/// thread's recycled context; user code interacts with it through the
/// [`TxMem`] trait.
#[derive(Debug)]
pub struct Transaction<'a> {
    heap: &'a TxHeap,
    locks: &'a LockTable,
    clock: &'a GlobalClock,
    /// This thread's statistics shard (never shared with other threads).
    stats: &'a StatsShard,
    /// Owner registry used to resolve write-lock conflicts.
    runtime: &'a SwisstmRuntime,
    cm: GreedyCm,
    token: OwnerToken,
    valid_ts: u64,
    /// The thread's recycled speculative state.
    ctx: &'a mut TxContext,
    /// Local operation counters, flushed into the shared stats at the end.
    local_reads: u64,
    local_writes: u64,
}

impl<'a> Transaction<'a> {
    /// Starts a new transaction attempt on behalf of `thread_id`, recycling
    /// the thread's context (which is reset here).
    pub(crate) fn new(
        runtime: &'a SwisstmRuntime,
        ctx: &'a mut TxContext,
        thread_id: u32,
        priority: u64,
    ) -> Self {
        let substrate = runtime.substrate();
        ctx.reset_for_attempt(priority);
        Transaction {
            heap: &substrate.heap,
            locks: &substrate.locks,
            clock: &substrate.clock,
            stats: substrate.stats.shard(thread_id),
            runtime,
            cm: runtime.cm(),
            token: OwnerToken::from_id(thread_id),
            valid_ts: substrate.clock.now(),
            ctx,
            local_reads: 0,
            local_writes: 0,
        }
    }

    /// The transaction's current validity timestamp.
    pub fn valid_ts(&self) -> u64 {
        self.valid_ts
    }

    /// `true` if this transaction has not written anything (read-only so far).
    pub fn is_read_only(&self) -> bool {
        self.ctx.write_set.is_empty()
    }

    /// Number of distinct write locks held.
    pub fn locks_held(&self) -> usize {
        self.ctx.acquired.len()
    }

    /// The descriptor other threads use to signal this transaction.
    pub fn descriptor(&self) -> &std::sync::Arc<TxDescriptor> {
        &self.ctx.descriptor
    }

    fn check_abort_signal(&self) -> Result<(), Abort> {
        if self.ctx.descriptor.abort_requested() {
            Err(Abort::new(AbortReason::TransactionAbortSignal))
        } else {
            Ok(())
        }
    }

    /// Validates every read-log entry against the current lock-table state.
    ///
    /// `locked_by_me` supplies the `(lock, pre-lock version)` pairs of r-locks
    /// this transaction itself locked during commit — **sorted by lock
    /// index** — so that its own commit-time locking does not invalidate its
    /// reads.
    fn validate(&self, locked_by_me: Option<&[(LockIndex, u64)]>) -> bool {
        self.locks
            .validate_read_log(&self.ctx.read_log, locked_by_me)
    }

    /// Attempts to extend `valid-ts` to the current commit timestamp by
    /// re-validating the read log (`extend` in the paper).
    fn extend(&mut self) -> Result<(), Abort> {
        let target = self.clock.now();
        self.stats.bump(&self.stats.validations);
        if self.validate(None) {
            self.valid_ts = target;
            self.stats.bump(&self.stats.extensions);
            Ok(())
        } else {
            Err(Abort::new(AbortReason::ReadValidation))
        }
    }

    /// Reads the committed value of `addr` consistently with respect to the
    /// location's r-lock, extending `valid-ts` if the version is too new.
    ///
    /// The caller has already resolved `(idx, entry)` for `addr`, so the
    /// lock-table mapping is computed exactly once per read.
    ///
    /// The extension happens *before* the value is used: a version newer than
    /// `valid-ts` first forces a successful read-log extension and then the
    /// read is retried under the new timestamp, which is what preserves
    /// opacity (a stale value must never be returned alongside newer ones).
    fn read_committed(
        &mut self,
        idx: LockIndex,
        entry: &LockEntry,
        addr: WordAddr,
    ) -> Result<u64, Abort> {
        let mut spin = 0u32;
        loop {
            let v1 = entry.version();
            if v1 == LOCKED {
                // A committing transaction is writing this location back;
                // stay responsive to abort signals while waiting.
                self.check_abort_signal()?;
                contention_pause(spin);
                spin = spin.wrapping_add(1);
                continue;
            }
            if v1 > self.valid_ts {
                // The location was committed after our snapshot: try to move
                // the snapshot forward, then re-read the version.
                self.extend()?;
                continue;
            }
            let value = self.heap.load_committed(addr);
            let v2 = entry.version();
            if v1 != v2 {
                contention_pause(spin);
                spin = spin.wrapping_add(1);
                continue;
            }
            self.ctx.read_log.push((idx, v1));
            return Ok(value);
        }
    }

    /// Commits the transaction: locks the written locations' r-locks, draws a
    /// commit timestamp, validates the read log and writes the buffered
    /// values back.
    ///
    /// Write-back iterates the log-structured write set, so every written
    /// word is stored exactly once with its final value, in first-write
    /// program order — deterministic regardless of how addresses collide in
    /// the lock table.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if validation fails or an abort was signalled; the
    /// caller must then roll the transaction back and retry.
    pub(crate) fn commit(&mut self) -> Result<(), Abort> {
        self.check_abort_signal()?;
        self.ctx.descriptor.set_finishing();
        if self.ctx.write_set.is_empty() {
            // Read-only transactions are already consistent at `valid-ts`.
            return Ok(());
        }
        // Lock the r-locks of every written location, remembering the
        // previous versions in the acquired-locks log so they can be restored
        // if validation fails. Sorting first makes the log binary-searchable
        // during validation (locking order is irrelevant: `lock_version` is a
        // plain swap that only the w-lock holder may perform).
        self.ctx.acquired.sort_unstable_by_key(|&(idx, _)| idx.0);
        for slot in self.ctx.acquired.iter_mut() {
            slot.1 = self.locks.entry(slot.0).lock_version();
        }
        let ts = self.clock.tick();
        self.stats.bump(&self.stats.validations);
        if !self.validate(Some(&self.ctx.acquired)) {
            for &(idx, prev) in &self.ctx.acquired {
                self.locks.entry(idx).set_version(prev);
            }
            return Err(Abort::new(AbortReason::ReadValidation));
        }
        // Write back and release.
        for e in self.ctx.write_set.iter() {
            self.heap.store_committed(e.addr, e.value);
        }
        for &(idx, _) in &self.ctx.acquired {
            let entry = self.locks.entry(idx);
            entry.set_version(ts);
            entry.release_writer();
        }
        Ok(())
    }

    /// Rolls the transaction back: releases all acquired write locks and
    /// clears the speculative state (retaining its capacity for the retry).
    pub(crate) fn rollback(&mut self, reason: AbortReason) {
        for &(idx, _) in &self.ctx.acquired {
            self.locks.entry(idx).release_writer_if(self.token);
        }
        self.ctx.acquired.clear();
        self.ctx.write_set.clear();
        self.ctx.read_log.clear();
        self.stats.record_abort_reason(reason);
    }

    /// Flushes the per-transaction operation counters into this thread's
    /// statistics shard.
    pub(crate) fn flush_op_counters(&mut self) {
        if self.local_reads > 0 {
            self.stats.add(&self.stats.reads, self.local_reads);
            self.local_reads = 0;
        }
        if self.local_writes > 0 {
            self.stats.add(&self.stats.writes, self.local_writes);
            self.local_writes = 0;
        }
    }
}

impl TxMem for Transaction<'_> {
    fn read(&mut self, addr: WordAddr) -> Result<u64, Abort> {
        self.local_reads += 1;
        let locks = self.locks;
        let (idx, entry) = locks.lookup(addr);
        // Read-after-write is only possible under a lock this transaction
        // already owns, so the owner-token check (on a cache line the read
        // touches anyway) keeps unrelated reads out of the write set even
        // when a large write set has saturated the bloom summary; the bloom
        // then settles the common same-lock-different-word miss cheaply.
        if entry.writer_token() == self.token {
            if let Some(value) = self.ctx.write_set.lookup(addr) {
                return Ok(value);
            }
        }
        self.read_committed(idx, entry, addr)
    }

    fn write(&mut self, addr: WordAddr, value: u64) -> Result<(), Abort> {
        self.local_writes += 1;
        // Repeated write to an address already in the set: update in place.
        if self.ctx.write_set.update(addr, value) {
            return Ok(());
        }
        let locks = self.locks;
        let (idx, entry) = locks.lookup(addr);
        if entry.writer_token() == self.token {
            // Same lock already held (a neighbouring word was written first).
            self.ctx.write_set.insert_new(addr, value, idx);
            return Ok(());
        }
        let mut spin = 0u32;
        loop {
            self.check_abort_signal()?;
            match entry.try_acquire_writer(self.token) {
                Ok(()) => {
                    self.ctx.acquired.push((idx, 0));
                    self.ctx.write_set.insert_new(addr, value, idx);
                    break;
                }
                Err(owner_token) => {
                    // Reach the owner's descriptor through the runtime's
                    // registry (the token encodes the owning thread id); the
                    // lock's write chain is never touched by SwissTM.
                    let decision = match self.runtime.owner_for(owner_token) {
                        // Owner released (or is not a SwissTM thread of this
                        // runtime): just wait for the lock and retry.
                        None => CmDecision::Wait,
                        Some(owner) => {
                            let decision = self
                                .cm
                                .resolve(self.ctx.descriptor.priority(), owner.as_ref());
                            if decision == CmDecision::AbortOwner {
                                owner.signal_abort();
                                self.stats.bump(&self.stats.cm_owner_aborts);
                            }
                            decision
                        }
                    };
                    match decision {
                        CmDecision::AbortSelf => {
                            self.stats.bump(&self.stats.cm_self_aborts);
                            return Err(Abort::new(AbortReason::InterThreadWriteConflict));
                        }
                        CmDecision::AbortOwner | CmDecision::Wait => {
                            contention_pause(spin);
                            spin = spin.wrapping_add(1);
                            continue;
                        }
                    }
                }
            }
        }
        // Opacity check inherited from SwissTM (Algorithm 2, line 52): if the
        // location has a version newer than valid-ts the read set must still
        // be extendable, otherwise the transaction is doomed.
        if entry.version() != LOCKED && entry.version() > self.valid_ts {
            self.extend()?;
        }
        Ok(())
    }

    fn alloc(&mut self, words: u64) -> Result<WordAddr, Abort> {
        self.heap
            .alloc(words)
            .map_err(|_| Abort::new(AbortReason::OutOfMemory))
    }
}
