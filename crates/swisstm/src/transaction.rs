//! The SwissTM transaction.
//!
//! Implements the algorithm of §3.1 of the TLSTM paper: eager write/write
//! locking through the global lock table, invisible reads with lazy
//! counter-based validation (`valid-ts` + read-log extension), buffered writes
//! applied at commit under the written locations' r-locks.

use std::collections::HashMap;
use std::sync::Arc;

use txmem::{
    Abort, AbortReason, CmDecision, GlobalClock, LockIndex, LockTable, OwnerToken, StatsShard,
    TxHeap, TxMem, WordAddr, LOCKED,
};

use crate::cm::GreedyCm;
use crate::descriptor::TxDescriptor;
use crate::runtime::SwisstmRuntime;

/// How many busy-spin iterations a waiter performs before yielding the CPU
/// (spinning is skipped entirely on single-core hosts).
const SPIN_BEFORE_YIELD: u32 = 64;

/// Spin/yield helper used when waiting for a lock to be released.
pub(crate) fn contention_pause(iteration: u32) {
    txmem::pause::contention_pause(iteration, SPIN_BEFORE_YIELD);
}

/// A single SwissTM transaction attempt.
///
/// Created by [`SwisstmThread::atomic`](crate::SwisstmThread::atomic); user
/// code interacts with it through the [`TxMem`] trait.
#[derive(Debug)]
pub struct Transaction<'rt> {
    heap: &'rt TxHeap,
    locks: &'rt LockTable,
    clock: &'rt GlobalClock,
    /// This thread's statistics shard (never shared with other threads).
    stats: &'rt StatsShard,
    cm: GreedyCm,
    descriptor: Arc<TxDescriptor>,
    owner_handle: txmem::owner::OwnerHandle,
    token: OwnerToken,
    valid_ts: u64,
    /// Read log: (lock index, observed version).
    read_log: Vec<(LockIndex, u64)>,
    /// Buffered writes keyed by word address.
    write_map: HashMap<u64, u64>,
    /// Write locks acquired by this transaction (unique).
    acquired: Vec<LockIndex>,
    /// Local operation counters, flushed into the shared stats at the end.
    local_reads: u64,
    local_writes: u64,
}

impl<'rt> Transaction<'rt> {
    /// Starts a new transaction attempt on behalf of `thread_id`.
    pub(crate) fn new(runtime: &'rt SwisstmRuntime, thread_id: u32, priority: u64) -> Self {
        let substrate = runtime.substrate();
        let descriptor = Arc::new(TxDescriptor::new(thread_id, priority));
        let owner_handle: txmem::owner::OwnerHandle = Arc::clone(&descriptor) as _;
        Transaction {
            heap: &substrate.heap,
            locks: &substrate.locks,
            clock: &substrate.clock,
            stats: substrate.stats.shard(thread_id),
            cm: runtime.cm(),
            descriptor,
            owner_handle,
            token: OwnerToken::from_id(thread_id),
            valid_ts: substrate.clock.now(),
            read_log: Vec::new(),
            write_map: HashMap::new(),
            acquired: Vec::new(),
            local_reads: 0,
            local_writes: 0,
        }
    }

    /// The transaction's current validity timestamp.
    pub fn valid_ts(&self) -> u64 {
        self.valid_ts
    }

    /// `true` if this transaction has not written anything (read-only so far).
    pub fn is_read_only(&self) -> bool {
        self.write_map.is_empty()
    }

    /// Number of distinct write locks held.
    pub fn locks_held(&self) -> usize {
        self.acquired.len()
    }

    /// The descriptor other threads use to signal this transaction.
    pub fn descriptor(&self) -> &Arc<TxDescriptor> {
        &self.descriptor
    }

    fn check_abort_signal(&self) -> Result<(), Abort> {
        if self.descriptor.abort_requested() {
            Err(Abort::new(AbortReason::TransactionAbortSignal))
        } else {
            Ok(())
        }
    }

    /// Validates every read-log entry against the current lock-table state.
    ///
    /// `locked_by_me` supplies the pre-lock versions of r-locks this
    /// transaction itself locked during commit, so that its own commit-time
    /// locking does not invalidate its reads.
    fn validate(&self, locked_by_me: Option<&HashMap<LockIndex, u64>>) -> bool {
        for &(idx, observed) in &self.read_log {
            let entry = self.locks.entry(idx);
            let current = entry.version();
            if current == observed {
                continue;
            }
            if current == LOCKED {
                if let Some(mine) = locked_by_me {
                    if mine.get(&idx) == Some(&observed) {
                        continue;
                    }
                }
                return false;
            }
            return false;
        }
        true
    }

    /// Attempts to extend `valid-ts` to the current commit timestamp by
    /// re-validating the read log (`extend` in the paper).
    fn extend(&mut self) -> Result<(), Abort> {
        let target = self.clock.now();
        self.stats.bump(&self.stats.validations);
        if self.validate(None) {
            self.valid_ts = target;
            self.stats.bump(&self.stats.extensions);
            Ok(())
        } else {
            Err(Abort::new(AbortReason::ReadValidation))
        }
    }

    /// Reads the committed value of `addr` consistently with respect to the
    /// location's r-lock, extending `valid-ts` if the version is too new.
    ///
    /// The extension happens *before* the value is used: a version newer than
    /// `valid-ts` first forces a successful read-log extension and then the
    /// read is retried under the new timestamp, which is what preserves
    /// opacity (a stale value must never be returned alongside newer ones).
    fn read_committed(&mut self, addr: WordAddr) -> Result<u64, Abort> {
        let (idx, entry) = self.locks.lookup(addr);
        let mut spin = 0u32;
        loop {
            let v1 = entry.version();
            if v1 == LOCKED {
                // A committing transaction is writing this location back;
                // stay responsive to abort signals while waiting.
                self.check_abort_signal()?;
                contention_pause(spin);
                spin = spin.wrapping_add(1);
                continue;
            }
            if v1 > self.valid_ts {
                // The location was committed after our snapshot: try to move
                // the snapshot forward, then re-read the version.
                self.extend()?;
                continue;
            }
            let value = self.heap.load_committed(addr);
            let v2 = entry.version();
            if v1 != v2 {
                contention_pause(spin);
                spin = spin.wrapping_add(1);
                continue;
            }
            self.read_log.push((idx, v1));
            return Ok(value);
        }
    }

    /// Commits the transaction: locks the written locations' r-locks, draws a
    /// commit timestamp, validates the read log and writes the buffered
    /// values back.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if validation fails or an abort was signalled; the
    /// caller must then roll the transaction back and retry.
    pub(crate) fn commit(&mut self) -> Result<(), Abort> {
        self.check_abort_signal()?;
        self.descriptor.set_finishing();
        if self.write_map.is_empty() {
            // Read-only transactions are already consistent at `valid-ts`.
            return Ok(());
        }
        // Lock the r-locks of every written location, remembering the
        // previous versions so they can be restored if validation fails.
        let mut old_versions: HashMap<LockIndex, u64> = HashMap::with_capacity(self.acquired.len());
        for &idx in &self.acquired {
            let entry = self.locks.entry(idx);
            let prev = entry.lock_version();
            old_versions.insert(idx, prev);
        }
        let ts = self.clock.tick();
        self.stats.bump(&self.stats.validations);
        if !self.validate(Some(&old_versions)) {
            for (&idx, &prev) in &old_versions {
                self.locks.entry(idx).set_version(prev);
            }
            return Err(Abort::new(AbortReason::ReadValidation));
        }
        // Write back and release.
        for (&addr, &value) in &self.write_map {
            self.heap.store_committed(WordAddr::new(addr), value);
        }
        for &idx in &self.acquired {
            let entry = self.locks.entry(idx);
            entry.chain().clear();
            entry.set_version(ts);
            entry.release_writer();
        }
        Ok(())
    }

    /// Rolls the transaction back: releases all acquired write locks and
    /// clears the speculative state.
    pub(crate) fn rollback(&mut self, reason: AbortReason) {
        for &idx in &self.acquired {
            let entry = self.locks.entry(idx);
            entry.chain().clear();
            entry.release_writer_if(self.token);
        }
        self.acquired.clear();
        self.write_map.clear();
        self.read_log.clear();
        self.stats.record_abort_reason(reason);
    }

    /// Flushes the per-transaction operation counters into this thread's
    /// statistics shard.
    pub(crate) fn flush_op_counters(&mut self) {
        if self.local_reads > 0 {
            self.stats.add(&self.stats.reads, self.local_reads);
            self.local_reads = 0;
        }
        if self.local_writes > 0 {
            self.stats.add(&self.stats.writes, self.local_writes);
            self.local_writes = 0;
        }
    }
}

impl TxMem for Transaction<'_> {
    fn read(&mut self, addr: WordAddr) -> Result<u64, Abort> {
        self.local_reads += 1;
        let entry = self.locks.entry_for(addr);
        if entry.writer_token() == self.token {
            // Locked by this transaction: serve the read from the write log
            // if this exact address was written, otherwise fall through to
            // the committed value (same lock, different word).
            if let Some(&value) = self.write_map.get(&addr.index()) {
                return Ok(value);
            }
        }
        self.read_committed(addr)
    }

    fn write(&mut self, addr: WordAddr, value: u64) -> Result<(), Abort> {
        self.local_writes += 1;
        let (idx, entry) = self.locks.lookup(addr);
        if entry.writer_token() == self.token {
            self.write_map.insert(addr.index(), value);
            return Ok(());
        }
        let mut spin = 0u32;
        loop {
            self.check_abort_signal()?;
            match entry.try_acquire_writer(self.token) {
                Ok(()) => {
                    // Record this transaction as the owner in the lock's
                    // chain so contenders can reach the descriptor.
                    entry.chain().record_write(
                        self.descriptor.thread_id(),
                        0,
                        0,
                        &self.owner_handle,
                        addr,
                        value,
                    );
                    self.acquired.push(idx);
                    self.write_map.insert(addr.index(), value);
                    break;
                }
                Err(_other) => {
                    let decision = {
                        let chain = entry.chain();
                        match chain.newest() {
                            // Owner released between the failed CAS and the
                            // chain inspection: just try again.
                            None => CmDecision::Wait,
                            Some(spec) => {
                                let decision = self
                                    .cm
                                    .resolve(self.descriptor.priority(), spec.owner.as_ref());
                                if decision == CmDecision::AbortOwner {
                                    spec.owner.signal_abort();
                                    self.stats.bump(&self.stats.cm_owner_aborts);
                                }
                                decision
                            }
                        }
                    };
                    match decision {
                        CmDecision::AbortSelf => {
                            self.stats.bump(&self.stats.cm_self_aborts);
                            return Err(Abort::new(AbortReason::InterThreadWriteConflict));
                        }
                        CmDecision::AbortOwner | CmDecision::Wait => {
                            contention_pause(spin);
                            spin = spin.wrapping_add(1);
                            continue;
                        }
                    }
                }
            }
        }
        // Opacity check inherited from SwissTM (Algorithm 2, line 52): if the
        // location has a version newer than valid-ts the read set must still
        // be extendable, otherwise the transaction is doomed.
        if entry.version() != LOCKED && entry.version() > self.valid_ts {
            self.extend()?;
        }
        Ok(())
    }

    fn alloc(&mut self, words: u64) -> Result<WordAddr, Abort> {
        self.heap
            .alloc(words)
            .map_err(|_| Abort::new(AbortReason::OutOfMemory))
    }
}
