//! The reusable per-thread transaction context.
//!
//! A [`TxContext`] owns every piece of speculative state a SwissTM
//! transaction needs — the read log, the log-structured write set, the
//! acquired-locks log and the shared [`TxDescriptor`] — and is **recycled
//! across attempts and transactions** of its thread. [`SwisstmThread`]
//! (see [`crate::runtime`]) creates one context at registration time and
//! threads a `&mut` borrow of it through every [`Transaction`] it runs, so
//! steady-state transactions build their state entirely inside retained
//! capacity and perform **zero heap allocations** on the read, write, commit
//! and rollback paths.
//!
//! [`SwisstmThread`]: crate::runtime::SwisstmThread
//! [`Transaction`]: crate::transaction::Transaction
//! [`TxDescriptor`]: crate::descriptor::TxDescriptor

use std::sync::Arc;

use txmem::{LockIndex, OwnerHandle, WriteSet};

use crate::descriptor::TxDescriptor;

/// Recyclable speculative state of one thread's transactions.
///
/// All vectors and the write set retain their capacity across
/// `reset_for_attempt`; the descriptor is a single long-lived allocation
/// shared with contending threads through the runtime's owner registry.
#[derive(Debug)]
pub struct TxContext {
    /// The thread's long-lived descriptor (re-armed per attempt, never
    /// reallocated).
    pub(crate) descriptor: Arc<TxDescriptor>,
    /// The same descriptor, type-erased for the owner registry.
    pub(crate) owner_handle: OwnerHandle,
    /// Read log: (lock index, observed version).
    pub(crate) read_log: Vec<(LockIndex, u64)>,
    /// Log-structured buffered writes.
    pub(crate) write_set: WriteSet,
    /// Write locks acquired by the current transaction, paired with the
    /// r-lock version observed when commit locked them (filled at commit
    /// time; replaces the former `old_versions` hash map).
    pub(crate) acquired: Vec<(LockIndex, u64)>,
}

impl TxContext {
    /// Creates the context for a newly registered thread.
    pub(crate) fn new(thread_id: u32) -> Self {
        let descriptor = Arc::new(TxDescriptor::timid(thread_id));
        let owner_handle: OwnerHandle = Arc::clone(&descriptor) as _;
        TxContext {
            descriptor,
            owner_handle,
            read_log: Vec::new(),
            write_set: WriteSet::new(),
            acquired: Vec::new(),
        }
    }

    /// Empties all speculative state (keeping capacity) and re-arms the
    /// descriptor for an attempt running at `priority`.
    pub(crate) fn reset_for_attempt(&mut self, priority: u64) {
        self.read_log.clear();
        self.write_set.clear();
        self.acquired.clear();
        self.descriptor.reset_for_attempt(priority);
    }

    /// `true` if the context carries no speculative state — what a freshly
    /// created context looks like, and what a recycled context must look like
    /// after a commit plus reset or a rollback plus reset (used by the
    /// context-reuse tests).
    pub fn is_clean(&self) -> bool {
        self.read_log.is_empty()
            && self.write_set.is_empty()
            && self.acquired.is_empty()
            && !self.descriptor.abort_requested()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::{LockOwner, WordAddr};

    #[test]
    fn reset_scrubs_all_speculative_state() {
        let mut ctx = TxContext::new(3);
        assert!(ctx.is_clean());
        ctx.read_log.push((LockIndex(1), 7));
        ctx.write_set.insert_new(WordAddr::new(9), 1, LockIndex(1));
        ctx.acquired.push((LockIndex(1), 0));
        ctx.descriptor.signal_abort();
        assert!(!ctx.is_clean());
        ctx.reset_for_attempt(42);
        assert!(ctx.is_clean());
        assert_eq!(ctx.descriptor.priority(), 42);
    }

    #[test]
    fn reset_retains_capacity() {
        let mut ctx = TxContext::new(0);
        for i in 0..64 {
            ctx.read_log.push((LockIndex(i), 0));
            ctx.acquired.push((LockIndex(i), 0));
        }
        let read_cap = ctx.read_log.capacity();
        let acq_cap = ctx.acquired.capacity();
        ctx.reset_for_attempt(0);
        assert_eq!(ctx.read_log.capacity(), read_cap);
        assert_eq!(ctx.acquired.capacity(), acq_cap);
    }
}
