//! The two-phase greedy contention manager.
//!
//! SwissTM resolves write/write conflicts with a *two-phase greedy* scheme:
//!
//! 1. **Timid phase** — a transaction starts without a ticket. On its first
//!    conflicts it simply aborts itself: it has done little work, so the abort
//!    is cheap and avoids any waiting.
//! 2. **Greedy phase** — after a transaction has been aborted a configurable
//!    number of times it draws a globally unique, monotonically increasing
//!    ticket. From then on it behaves greedily: on conflict, the transaction
//!    with the *older* (smaller) ticket wins; the loser either aborts itself
//!    (if it is the requester) or is signalled to abort (if it owns the lock),
//!    in which case the requester waits for the lock to be released.
//!
//! TLSTM reuses this manager as the tie-break when the task-aware rule (§3.2
//! of the paper) finds both user-transactions equally speculative.

use std::sync::atomic::{AtomicU64, Ordering};

use txmem::{CmDecision, LockOwner};

/// Priority value meaning "still in the timid phase".
pub const TIMID: u64 = u64::MAX;

/// Global source of greedy tickets.
#[derive(Debug, Default)]
pub struct GreedyTicket {
    next: AtomicU64,
}

impl GreedyTicket {
    /// Creates a ticket source.
    pub fn new() -> Self {
        GreedyTicket {
            next: AtomicU64::new(0),
        }
    }

    /// Draws the next ticket (smaller = older = stronger).
    pub fn draw(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

/// The two-phase greedy contention-manager policy.
///
/// The policy itself is stateless; per-transaction state (the priority and the
/// abort counter) lives in the transaction descriptors. This type exists so
/// the decision rule can be unit-tested and reused by TLSTM.
#[derive(Debug, Clone, Copy)]
pub struct GreedyCm {
    /// Number of consecutive aborts before a transaction turns greedy.
    pub greedy_after_aborts: u32,
}

impl Default for GreedyCm {
    fn default() -> Self {
        GreedyCm {
            greedy_after_aborts: 2,
        }
    }
}

impl GreedyCm {
    /// Returns `true` if a transaction that has aborted `aborts` consecutive
    /// times should draw a greedy ticket.
    pub fn should_turn_greedy(&self, aborts: u32) -> bool {
        aborts >= self.greedy_after_aborts
    }

    /// Resolves a write/write conflict between a requesting transaction
    /// (priority `requester_priority`) and the owner of the lock.
    ///
    /// The decision only consults priorities; the *task-aware* progress rule
    /// of TLSTM is applied by the caller before falling back to this
    /// tie-break.
    pub fn resolve(&self, requester_priority: u64, owner: &dyn LockOwner) -> CmDecision {
        if owner.is_finishing() {
            // The owner is already committing or aborting: the lock will be
            // released shortly, so just wait.
            return CmDecision::Wait;
        }
        let owner_priority = owner.cm_priority();
        if requester_priority < owner_priority {
            CmDecision::AbortOwner
        } else {
            // Equal priorities only happen while both sides are timid; the
            // requester politely aborts itself (it is cheaper to restart the
            // side that has not yet acquired the lock).
            CmDecision::AbortSelf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[derive(Debug)]
    struct FakeOwner {
        priority: u64,
        finishing: bool,
        aborted: AtomicBool,
    }

    impl FakeOwner {
        fn new(priority: u64, finishing: bool) -> Self {
            FakeOwner {
                priority,
                finishing,
                aborted: AtomicBool::new(false),
            }
        }
    }

    impl LockOwner for FakeOwner {
        fn signal_abort(&self) {
            self.aborted.store(true, Ordering::Relaxed);
        }
        fn is_finishing(&self) -> bool {
            self.finishing
        }
        fn completed_progress(&self) -> u64 {
            0
        }
        fn cm_priority(&self) -> u64 {
            self.priority
        }
        fn owner_id(&self) -> u32 {
            0
        }
    }

    #[test]
    fn tickets_are_unique_and_increasing() {
        let t = GreedyTicket::new();
        let a = t.draw();
        let b = t.draw();
        assert!(b > a);
    }

    #[test]
    fn timid_requester_aborts_itself() {
        let cm = GreedyCm::default();
        let owner = FakeOwner::new(TIMID, false);
        assert_eq!(cm.resolve(TIMID, &owner), CmDecision::AbortSelf);
    }

    #[test]
    fn greedy_beats_timid_owner() {
        let cm = GreedyCm::default();
        let owner = FakeOwner::new(TIMID, false);
        assert_eq!(cm.resolve(3, &owner), CmDecision::AbortOwner);
    }

    #[test]
    fn older_greedy_beats_younger_greedy() {
        let cm = GreedyCm::default();
        let owner = FakeOwner::new(10, false);
        assert_eq!(cm.resolve(5, &owner), CmDecision::AbortOwner);
        assert_eq!(cm.resolve(20, &owner), CmDecision::AbortSelf);
    }

    #[test]
    fn finishing_owner_means_wait() {
        let cm = GreedyCm::default();
        let owner = FakeOwner::new(TIMID, true);
        assert_eq!(cm.resolve(0, &owner), CmDecision::Wait);
    }

    #[test]
    fn greedy_threshold_respected() {
        let cm = GreedyCm {
            greedy_after_aborts: 3,
        };
        assert!(!cm.should_turn_greedy(0));
        assert!(!cm.should_turn_greedy(2));
        assert!(cm.should_turn_greedy(3));
        assert!(cm.should_turn_greedy(10));
    }
}
