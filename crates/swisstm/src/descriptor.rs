//! Per-transaction descriptors.
//!
//! A [`TxDescriptor`] is the shared handle other threads see when they hit one
//! of this transaction's write locks. It carries the abort-request flag and
//! the contention-manager priority. Contenders reach it (type-erased as a
//! [`txmem::LockOwner`]) through the runtime's owner registry, keyed by the
//! thread id encoded in the write lock's owner token.
//!
//! Descriptors are **allocated once per thread and recycled** across every
//! attempt and every transaction of that thread (SwissTM's reused-descriptor
//! design): [`TxDescriptor::reset_for_attempt`] re-arms the flags instead of
//! allocating a fresh descriptor. A contender that races with the reset can at
//! worst deliver one stale abort signal to the thread's *next* attempt, which
//! then retries — the same spurious-abort tolerance the original SwissTM
//! accepts in exchange for an allocation-free hot path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use txmem::LockOwner;

use crate::cm::TIMID;

/// Shared state of one running SwissTM transaction.
#[derive(Debug)]
pub struct TxDescriptor {
    /// Identifier of the thread running the transaction.
    thread_id: u32,
    /// Set by the contention manager when another thread decides this
    /// transaction must abort.
    abort_requested: AtomicBool,
    /// Two-phase greedy priority ([`TIMID`] until the transaction turns
    /// greedy; smaller = stronger).
    priority: AtomicU64,
    /// Set once the transaction has entered its commit or abort sequence; at
    /// that point contenders should simply wait for the locks to be released.
    finishing: AtomicBool,
}

impl TxDescriptor {
    /// Creates a descriptor for a transaction run by `thread_id` with the
    /// given contention-manager priority.
    pub fn new(thread_id: u32, priority: u64) -> Self {
        TxDescriptor {
            thread_id,
            abort_requested: AtomicBool::new(false),
            priority: AtomicU64::new(priority),
            finishing: AtomicBool::new(false),
        }
    }

    /// Creates a descriptor still in the timid phase.
    pub fn timid(thread_id: u32) -> Self {
        Self::new(thread_id, TIMID)
    }

    /// Re-arms this (recycled) descriptor for a new transaction attempt:
    /// clears the abort-request and finishing flags and installs the
    /// attempt's contention-manager priority.
    pub fn reset_for_attempt(&self, priority: u64) {
        self.priority.store(priority, Ordering::Relaxed);
        self.finishing.store(false, Ordering::Release);
        self.abort_requested.store(false, Ordering::Release);
    }

    /// `true` if another thread asked this transaction to abort.
    pub fn abort_requested(&self) -> bool {
        self.abort_requested.load(Ordering::Acquire)
    }

    /// Marks the transaction as entering commit/abort; contenders will wait
    /// instead of repeatedly signalling it.
    pub fn set_finishing(&self) {
        self.finishing.store(true, Ordering::Release);
    }

    /// Current contention-manager priority.
    pub fn priority(&self) -> u64 {
        self.priority.load(Ordering::Relaxed)
    }

    /// Thread that runs this transaction.
    pub fn thread_id(&self) -> u32 {
        self.thread_id
    }
}

impl LockOwner for TxDescriptor {
    fn signal_abort(&self) {
        self.abort_requested.store(true, Ordering::Release);
    }

    fn is_finishing(&self) -> bool {
        self.finishing.load(Ordering::Acquire) || self.abort_requested()
    }

    fn completed_progress(&self) -> u64 {
        // A SwissTM transaction is a single implicit task; it never has
        // completed sub-tasks. This makes plain transactions the "most
        // speculative" party under TLSTM's task-aware rule.
        0
    }

    fn cm_priority(&self) -> u64 {
        self.priority()
    }

    fn owner_id(&self) -> u32 {
        self.thread_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_signal_round_trip() {
        let d = TxDescriptor::timid(3);
        assert!(!d.abort_requested());
        assert!(!d.is_finishing());
        d.signal_abort();
        assert!(d.abort_requested());
        assert!(d.is_finishing());
        assert_eq!(d.owner_id(), 3);
    }

    #[test]
    fn finishing_flag_independent_of_abort() {
        let d = TxDescriptor::timid(0);
        d.set_finishing();
        assert!(d.is_finishing());
        assert!(!d.abort_requested());
    }

    #[test]
    fn reset_rearms_a_recycled_descriptor() {
        let d = TxDescriptor::timid(5);
        d.signal_abort();
        d.set_finishing();
        d.reset_for_attempt(17);
        assert!(!d.abort_requested());
        assert!(!d.is_finishing());
        assert_eq!(d.priority(), 17);
        assert_eq!(d.thread_id(), 5, "identity survives the reset");
    }

    #[test]
    fn priority_reported_to_cm() {
        let d = TxDescriptor::new(1, 42);
        assert_eq!(d.cm_priority(), 42);
        assert_eq!(TxDescriptor::timid(1).cm_priority(), TIMID);
        assert_eq!(d.completed_progress(), 0);
    }
}
