//! # swisstm — the baseline word-based STM
//!
//! A from-scratch Rust reimplementation of **SwissTM** (Dragojević, Guerraoui,
//! Kapałka — *Stretching Transactional Memory*, PLDI 2009), which is the
//! baseline system that the TLSTM paper (Barreto et al., Middleware 2012)
//! extends and compares against.
//!
//! The algorithm, as described in §3.1 of the TLSTM paper:
//!
//! * a global commit counter `commit-ts` ([`txmem::GlobalClock`]);
//! * a global lock table mapping each location to an (r-lock, w-lock) pair
//!   ([`txmem::LockTable`]);
//! * **eager write/write conflict detection**: a transaction wishing to write
//!   first acquires the location's w-lock; conflicts are resolved by a
//!   two-phase greedy contention manager;
//! * **lazy (counter-based) read validation**: each transaction keeps a
//!   `valid-ts`; reading a location with a newer version triggers a read-log
//!   extension, which re-validates every read so far at the new timestamp;
//! * writes are buffered in a private write log and applied at commit, while
//!   the written locations' r-locks are held.
//!
//! ## Example
//!
//! ```rust
//! use swisstm::SwisstmRuntime;
//! use txmem::{TxConfig, TxMem};
//!
//! let runtime = SwisstmRuntime::new(TxConfig::small());
//! // Allocate one shared counter word, non-transactionally.
//! let counter = runtime.heap().alloc(1)?;
//!
//! let mut thread = runtime.register_thread();
//! let value = thread.atomic(|tx| {
//!     let v = tx.read(counter)?;
//!     tx.write(counter, v + 1)?;
//!     Ok(v + 1)
//! });
//! assert_eq!(value, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cm;
pub mod context;
pub mod descriptor;
pub mod runtime;
pub mod transaction;

pub use cm::{GreedyCm, GreedyTicket};
pub use context::TxContext;
pub use descriptor::TxDescriptor;
pub use runtime::{SwisstmRuntime, SwisstmThread};
pub use transaction::Transaction;

// Re-export the substrate types users need to interact with the API.
pub use txmem::{Abort, AbortReason, StatsSnapshot, TxConfig, TxMem, WordAddr};
