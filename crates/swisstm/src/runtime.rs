//! The SwissTM runtime and per-thread handles.

use std::sync::Arc;

use parking_lot::RwLock;
use txmem::{
    Abort, DirectMem, OwnerHandle, OwnerToken, StatsSnapshot, TaskBody, ThreadIdAllocator,
    TxConfig, TxHeap, TxRuntime, TxSession, TxSubstrate,
};

use crate::cm::{GreedyCm, GreedyTicket, TIMID};
use crate::context::TxContext;
use crate::transaction::{contention_pause, Transaction};

/// Registry of the long-lived per-thread descriptors, indexed by thread id.
///
/// A transaction that loses a `try_acquire_writer` race recovers the owner's
/// thread id from the observed [`OwnerToken`] and resolves the descriptor
/// here, instead of dereferencing state stored in the lock table. This is
/// what lets SwissTM leave the lock entries' write chains untouched (and
/// unallocated): the only per-lock state it uses are the two atomic words.
///
/// Lookups happen exclusively on the conflict path, so an `RwLock` around the
/// slot vector is plenty; registration happens once per thread.
#[derive(Debug, Default)]
struct OwnerRegistry {
    slots: RwLock<Vec<Option<OwnerHandle>>>,
}

impl OwnerRegistry {
    fn register(&self, id: u32, handle: OwnerHandle) {
        let mut slots = self.slots.write();
        if slots.len() <= id as usize {
            slots.resize(id as usize + 1, None);
        }
        slots[id as usize] = Some(handle);
    }

    fn unregister(&self, id: u32) {
        let mut slots = self.slots.write();
        if let Some(slot) = slots.get_mut(id as usize) {
            *slot = None;
        }
    }

    fn get(&self, id: u32) -> Option<OwnerHandle> {
        self.slots.read().get(id as usize).cloned().flatten()
    }
}

/// The SwissTM runtime: owns (a reference to) the shared substrate and hands
/// out per-thread handles.
#[derive(Debug)]
pub struct SwisstmRuntime {
    substrate: Arc<TxSubstrate>,
    thread_ids: ThreadIdAllocator,
    tickets: GreedyTicket,
    cm: GreedyCm,
    owners: OwnerRegistry,
}

impl SwisstmRuntime {
    /// Creates a runtime with a fresh substrate built from `config`.
    pub fn new(config: TxConfig) -> Arc<Self> {
        Self::with_substrate(Arc::new(TxSubstrate::new(config)))
    }

    /// Creates a runtime over an existing substrate (shared with other
    /// runtimes or with non-transactional initialisation code).
    pub fn with_substrate(substrate: Arc<TxSubstrate>) -> Arc<Self> {
        Arc::new(SwisstmRuntime {
            substrate,
            thread_ids: ThreadIdAllocator::new(),
            tickets: GreedyTicket::new(),
            cm: GreedyCm::default(),
            owners: OwnerRegistry::default(),
        })
    }

    /// The shared substrate.
    pub fn substrate(&self) -> &Arc<TxSubstrate> {
        &self.substrate
    }

    /// The transactional heap (for non-transactional setup of benchmark data).
    pub fn heap(&self) -> &TxHeap {
        &self.substrate.heap
    }

    /// A [`DirectMem`] handle for non-transactional initialisation.
    pub fn direct(&self) -> DirectMem<'_> {
        DirectMem::new(&self.substrate.heap)
    }

    /// Snapshot of the global statistics counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.substrate.stats.snapshot()
    }

    /// Per-shard statistics snapshots: entry `i` aggregates the activity of
    /// the registered threads whose id is `i` modulo the shard count.
    pub fn stats_per_shard(&self) -> Vec<StatsSnapshot> {
        self.substrate.stats.shard_snapshots()
    }

    /// Resets the global statistics counters.
    pub fn reset_stats(&self) {
        self.substrate.stats.reset();
    }

    /// The contention-manager policy in force.
    pub(crate) fn cm(&self) -> GreedyCm {
        self.cm
    }

    /// Draws a greedy contention-manager ticket.
    pub(crate) fn draw_ticket(&self) -> u64 {
        self.tickets.draw()
    }

    /// Resolves the descriptor of the thread owning `token`, if it is a
    /// registered thread of this runtime.
    pub(crate) fn owner_for(&self, token: OwnerToken) -> Option<OwnerHandle> {
        self.owners.get(token.id()?)
    }

    /// Registers a new application thread and returns its handle.
    ///
    /// The handle owns the thread's recycled [`TxContext`] (descriptor, read
    /// log, write set, acquired-locks log); its descriptor is published in
    /// the runtime's owner registry so contenders can reach it.
    pub fn register_thread(self: &Arc<Self>) -> SwisstmThread {
        let id = self.thread_ids.allocate();
        let ctx = TxContext::new(id);
        self.owners.register(id, ctx.owner_handle.clone());
        SwisstmThread {
            runtime: Arc::clone(self),
            id,
            consecutive_aborts: 0,
            greedy_priority: None,
            ctx,
        }
    }
}

/// Per-application-thread handle used to run transactions.
///
/// Owns the thread's recycled [`TxContext`]: every transaction (and every
/// retry) this handle runs borrows the same read log, write set,
/// acquired-locks log and descriptor, so steady-state transactions allocate
/// nothing.
///
/// Not `Sync`: each OS thread registers its own handle.
#[derive(Debug)]
pub struct SwisstmThread {
    runtime: Arc<SwisstmRuntime>,
    id: u32,
    consecutive_aborts: u32,
    greedy_priority: Option<u64>,
    ctx: TxContext,
}

impl SwisstmThread {
    /// The dense identifier assigned to this thread.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The runtime this thread belongs to.
    pub fn runtime(&self) -> &Arc<SwisstmRuntime> {
        &self.runtime
    }

    /// Runs `body` as an atomic transaction, retrying until it commits, and
    /// returns the body's result.
    ///
    /// The body must access shared state exclusively through the transaction
    /// handle it receives; it may be re-executed an arbitrary number of times.
    pub fn atomic<T>(
        &mut self,
        mut body: impl FnMut(&mut Transaction<'_>) -> Result<T, Abort>,
    ) -> T {
        let stats = self.runtime.substrate().stats.shard(self.id);
        stats.bump(&stats.tx_starts);
        loop {
            txobs::tx_begin();
            let priority = self.greedy_priority.unwrap_or(TIMID);
            let mut tx = Transaction::new(&self.runtime, &mut self.ctx, self.id, priority);
            let outcome = body(&mut tx).and_then(|value| tx.commit().map(|()| value));
            match outcome {
                Ok(value) => {
                    tx.flush_op_counters();
                    stats.bump(&stats.tx_commits);
                    txobs::tx_commit();
                    self.consecutive_aborts = 0;
                    self.greedy_priority = None;
                    return value;
                }
                Err(abort) => {
                    tx.rollback(abort.reason);
                    tx.flush_op_counters();
                    stats.bump(&stats.tx_aborts);
                    txobs::tx_abort(abort.reason.trace_cause());
                    self.consecutive_aborts += 1;
                    if self.greedy_priority.is_none()
                        && self
                            .runtime
                            .cm()
                            .should_turn_greedy(self.consecutive_aborts)
                    {
                        self.greedy_priority = Some(self.runtime.draw_ticket());
                    }
                    // Brief randomised-ish backoff proportional to the abort
                    // streak, to break symmetric livelocks.
                    let pause = self.consecutive_aborts.min(16);
                    for i in 0..pause * 8 {
                        contention_pause(i);
                    }
                }
            }
        }
    }

    /// The thread's recycled transaction context (tests and diagnostics).
    pub fn context(&self) -> &TxContext {
        &self.ctx
    }
}

impl Drop for SwisstmThread {
    fn drop(&mut self) {
        // Retire this thread's descriptor from the owner registry; late
        // contenders then simply wait for (already released) locks.
        self.runtime.owners.unregister(self.id);
    }
}

impl TxRuntime for SwisstmRuntime {
    type Session = SwisstmThread;

    const LABEL: &'static str = "swisstm";
    const SPECULATIVE: bool = false;

    fn new(config: TxConfig) -> Arc<Self> {
        SwisstmRuntime::new(config)
    }

    fn with_substrate(substrate: Arc<TxSubstrate>) -> Arc<Self> {
        SwisstmRuntime::with_substrate(substrate)
    }

    fn substrate(&self) -> &Arc<TxSubstrate> {
        SwisstmRuntime::substrate(self)
    }

    fn session(self: &Arc<Self>) -> SwisstmThread {
        self.register_thread()
    }
}

impl TxSession for SwisstmThread {
    type Mem<'t> = Transaction<'t>;

    fn run<T, F>(&mut self, body: F) -> T
    where
        T: Send,
        F: for<'t> Fn(&mut Transaction<'t>) -> Result<T, Abort> + Send + Sync,
    {
        self.atomic(|tx| body(tx))
    }

    /// Executes the ordered bodies sequentially inside *one* transaction —
    /// SwissTM has no task decomposition, so a task group degenerates to a
    /// single transaction applying the bodies in program order.
    fn run_tasks(&mut self, tasks: &mut [TaskBody<'_>]) {
        if tasks.is_empty() {
            return;
        }
        self.atomic(|tx| {
            for body in tasks.iter_mut() {
                body(tx)?;
            }
            Ok(())
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use txmem::{TxMem, WordAddr};

    fn runtime() -> Arc<SwisstmRuntime> {
        SwisstmRuntime::new(TxConfig::small())
    }

    #[test]
    fn single_thread_counter_increments() {
        let rt = runtime();
        let counter = rt.heap().alloc(1).unwrap();
        let mut thread = rt.register_thread();
        for _ in 0..100 {
            thread.atomic(|tx| {
                let v = tx.read(counter)?;
                tx.write(counter, v + 1)?;
                Ok(())
            });
        }
        assert_eq!(rt.heap().load_committed(counter), 100);
        let stats = rt.stats();
        assert_eq!(stats.tx_commits, 100);
        assert_eq!(stats.tx_aborts, 0);
    }

    #[test]
    fn read_your_own_writes() {
        let rt = runtime();
        let a = rt.heap().alloc(2).unwrap();
        let mut thread = rt.register_thread();
        let observed = thread.atomic(|tx| {
            tx.write(a, 7)?;
            tx.write(a.offset(1), 9)?;
            Ok((tx.read(a)?, tx.read(a.offset(1))?))
        });
        assert_eq!(observed, (7, 9));
    }

    #[test]
    fn aborted_body_is_retried_and_commits() {
        let rt = runtime();
        let a = rt.heap().alloc(1).unwrap();
        let mut thread = rt.register_thread();
        let failed_once = AtomicBool::new(false);
        thread.atomic(|tx| {
            tx.write(a, 1)?;
            if !failed_once.swap(true, Ordering::Relaxed) {
                return Err(Abort::user_retry());
            }
            tx.write(a, 2)?;
            Ok(())
        });
        assert_eq!(rt.heap().load_committed(a), 2);
        let stats = rt.stats();
        assert_eq!(stats.tx_commits, 1);
        assert_eq!(stats.tx_aborts, 1);
        assert_eq!(stats.aborts_user_retry, 1);
    }

    #[test]
    fn writes_of_aborted_attempts_are_not_visible() {
        let rt = runtime();
        let a = rt.heap().alloc(1).unwrap();
        let mut thread = rt.register_thread();
        let mut first = true;
        thread.atomic(|tx| {
            if first {
                first = false;
                tx.write(a, 99)?;
                return Err(Abort::user_retry());
            }
            Ok(())
        });
        assert_eq!(rt.heap().load_committed(a), 0, "aborted write leaked");
    }

    #[test]
    fn read_only_transactions_commit_without_clock_ticks() {
        let rt = runtime();
        let a = rt.heap().alloc(1).unwrap();
        rt.heap().store_committed(a, 5);
        let mut thread = rt.register_thread();
        let before = rt.substrate().clock.now();
        let v = thread.atomic(|tx| tx.read(a));
        assert_eq!(v, 5);
        assert_eq!(rt.substrate().clock.now(), before);
    }

    #[test]
    fn concurrent_counter_is_linearizable() {
        let rt = runtime();
        let counter = rt.heap().alloc(1).unwrap();
        let threads = 4;
        let increments = 500;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let rt = Arc::clone(&rt);
            handles.push(std::thread::spawn(move || {
                let mut thread = rt.register_thread();
                for _ in 0..increments {
                    thread.atomic(|tx| {
                        let v = tx.read(counter)?;
                        tx.write(counter, v + 1)?;
                        Ok(())
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            rt.heap().load_committed(counter),
            (threads * increments) as u64
        );
        let stats = rt.stats();
        assert_eq!(stats.tx_commits, (threads * increments) as u64);
    }

    #[test]
    fn disjoint_writers_do_not_conflict() {
        let rt = runtime();
        // Allocate two words far apart so they hash to different locks.
        let a = rt.heap().alloc(64).unwrap();
        let b = rt.heap().alloc(64).unwrap();
        let mut handles = Vec::new();
        for (i, addr) in [a, b].into_iter().enumerate() {
            let rt = Arc::clone(&rt);
            handles.push(std::thread::spawn(move || {
                let mut thread = rt.register_thread();
                for n in 0..200u64 {
                    thread.atomic(|tx| tx.write(addr, n * (i as u64 + 1)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rt.heap().load_committed(a), 199);
        assert_eq!(rt.heap().load_committed(b), 398);
    }

    #[test]
    fn money_transfer_preserves_total() {
        // Classic bank-account invariant test: concurrent transfers between
        // accounts never create or destroy money.
        let rt = runtime();
        let n_accounts = 16u64;
        let accounts = rt.heap().alloc(n_accounts).unwrap();
        for i in 0..n_accounts {
            rt.heap().store_committed(accounts.offset(i), 100);
        }
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let rt = Arc::clone(&rt);
            handles.push(std::thread::spawn(move || {
                let mut thread = rt.register_thread();
                let mut x = t * 7 + 1;
                for _ in 0..500 {
                    // xorshift for deterministic pseudo-random account pairs
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let from = x % n_accounts;
                    let to = (x >> 8) % n_accounts;
                    thread.atomic(|tx| {
                        let f = tx.read(accounts.offset(from))?;
                        let t = tx.read(accounts.offset(to))?;
                        if f > 0 && from != to {
                            tx.write(accounts.offset(from), f - 1)?;
                            tx.write(accounts.offset(to), t + 1)?;
                        }
                        Ok(())
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..n_accounts)
            .map(|i| rt.heap().load_committed(accounts.offset(i)))
            .sum();
        assert_eq!(total, n_accounts * 100);
    }

    #[test]
    fn readers_never_observe_torn_pairs() {
        // A writer keeps the invariant word0 == word1; readers must never see
        // them differ (opacity / atomicity of write-back).
        let rt = runtime();
        let pair = rt.heap().alloc(2).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let rt = Arc::clone(&rt);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut thread = rt.register_thread();
                let mut v = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    v += 1;
                    thread.atomic(|tx| {
                        tx.write(pair, v)?;
                        tx.write(pair.offset(1), v)?;
                        Ok(())
                    });
                }
            })
        };
        let mut readers = Vec::new();
        for _ in 0..2 {
            let rt = Arc::clone(&rt);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut thread = rt.register_thread();
                let mut observed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (a, b) = thread.atomic(|tx| Ok((tx.read(pair)?, tx.read(pair.offset(1))?)));
                    assert_eq!(a, b, "torn read observed");
                    observed += 1;
                }
                observed
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    }

    #[test]
    fn stats_track_reads_and_writes() {
        let rt = runtime();
        let a = rt.heap().alloc(1).unwrap();
        let mut thread = rt.register_thread();
        thread.atomic(|tx| {
            let _ = tx.read(a)?;
            tx.write(a, 3)?;
            Ok(())
        });
        let stats = rt.stats();
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 1);
    }

    #[test]
    fn per_shard_stats_attribute_commits_to_threads() {
        let rt = runtime();
        let a = rt.heap().alloc(2).unwrap();
        let mut handles = Vec::new();
        for (i, commits) in [(0u64, 10u64), (1, 20)] {
            let rt = Arc::clone(&rt);
            handles.push(std::thread::spawn(move || {
                let mut thread = rt.register_thread();
                let shard = thread.id();
                for _ in 0..commits {
                    thread.atomic(|tx| tx.write(a.offset(i), 1));
                }
                (shard, commits)
            }));
        }
        let n_shards = rt.substrate().stats.num_shards();
        let mut expected = vec![0u64; n_shards];
        for h in handles {
            let (shard, commits) = h.join().unwrap();
            expected[shard as usize % n_shards] += commits;
        }
        let per_shard = rt.stats_per_shard();
        for (i, snap) in per_shard.iter().enumerate() {
            assert_eq!(
                snap.tx_commits, expected[i],
                "shard {i} misattributed commits"
            );
        }
        assert_eq!(rt.stats().tx_commits, 30, "aggregate is the shard sum");
    }

    #[test]
    fn commit_write_back_is_deterministic_last_write_wins() {
        // Regression for the former HashMap-ordered write-back: writes must
        // be applied from the log in program order, so the committed value of
        // every word is its last write — including when several words share
        // one lock entry (w, w+1 with words_per_lock = 4) and when distinct
        // regions collide on the same entry through table wrap-around
        // (TxConfig::small: 256 entries x 4 words = 1024 words apart).
        let rt = runtime();
        let block = rt.heap().alloc(2048).unwrap();
        // Align the base to a lock-entry boundary (4 words) so word 0 and
        // word 1 provably share an entry.
        let region = block.offset((4 - block.index() % 4) % 4);
        let mut thread = rt.register_thread();
        for round in 0..50u64 {
            thread.atomic(|tx| {
                tx.write(region, round)?; // word 0
                tx.write(region.offset(1), round + 1)?; // same lock as word 0
                tx.write(region.offset(1024), round + 2)?; // collides with word 0
                tx.write(region, round + 3)?; // overwrite word 0
                tx.write(region.offset(1025), round + 4)?; // collides with word 1
                tx.write(region.offset(1), round + 5)?; // overwrite word 1
                tx.write(region.offset(1024), round + 6)?; // overwrite collider
                Ok(())
            });
            assert_eq!(rt.heap().load_committed(region), round + 3);
            assert_eq!(rt.heap().load_committed(region.offset(1)), round + 5);
            assert_eq!(rt.heap().load_committed(region.offset(1024)), round + 6);
            assert_eq!(rt.heap().load_committed(region.offset(1025)), round + 4);
        }
        // The colliding words share a single lock entry, so this really
        // exercised multi-word write-back under one lock.
        let locks = &rt.substrate().locks;
        assert_eq!(
            locks.index_for(region),
            locks.index_for(region.offset(1024))
        );
        assert_eq!(locks.index_for(region), locks.index_for(region.offset(1)));
    }

    #[test]
    fn alloc_inside_transaction_survives() {
        let rt = runtime();
        let root = rt.heap().alloc(1).unwrap();
        let mut thread = rt.register_thread();
        thread.atomic(|tx| {
            let node = tx.alloc(2)?;
            tx.write(node, 11)?;
            tx.write_ref(root, Some(node))?;
            Ok(())
        });
        let node = rt.heap().load_committed(root);
        assert_ne!(node, txmem::NULL_ADDR);
        assert_eq!(rt.heap().load_committed(WordAddr::new(node)), 11);
    }
}
