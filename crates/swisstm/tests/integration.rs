//! Integration and property-based tests of the SwissTM baseline: the runtime
//! must behave exactly like a global lock around the same operations
//! (linearisability of committed effects), for arbitrary operation streams
//! and thread interleavings.

use std::sync::Arc;

use proptest::prelude::*;
use swisstm::SwisstmRuntime;
use tlstm_testutil::with_default_watchdog;
use txcollections::TxRbTree;
use txmem::{TxConfig, TxMem};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Transfer { from: u64, to: u64, amount: u64 },
}

fn ops_strategy(len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..40u64, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0..40u64).prop_map(Op::Remove),
            (0..8u64, 0..8u64, 1..5u64).prop_map(|(from, to, amount)| Op::Transfer {
                from,
                to,
                amount
            }),
        ],
        1..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequential execution through SwissTM matches the plain reference model.
    #[test]
    fn sequential_swisstm_matches_reference(ops in ops_strategy(120)) {
        let rt = SwisstmRuntime::new(TxConfig::small());
        let tree = TxRbTree::create(&mut rt.direct()).unwrap();
        let accounts = rt.heap().alloc(8).unwrap();
        for i in 0..8 {
            rt.heap().store_committed(accounts.offset(i), 100);
        }
        let mut model_map = std::collections::BTreeMap::new();
        let mut model_accounts = [100u64; 8];
        let mut thread = rt.register_thread();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    thread.atomic(|tx| tree.insert(tx, k, v).map(|_| ()));
                    model_map.insert(k, v);
                }
                Op::Remove(k) => {
                    thread.atomic(|tx| tree.remove(tx, k).map(|_| ()));
                    model_map.remove(&k);
                }
                Op::Transfer { from, to, amount } => {
                    thread.atomic(|tx| {
                        let f = tx.read(accounts.offset(from))?;
                        if f >= amount && from != to {
                            let t = tx.read(accounts.offset(to))?;
                            tx.write(accounts.offset(from), f - amount)?;
                            tx.write(accounts.offset(to), t + amount)?;
                        }
                        Ok(())
                    });
                    if model_accounts[from as usize] >= amount && from != to {
                        model_accounts[from as usize] -= amount;
                        model_accounts[to as usize] += amount;
                    }
                }
            }
        }
        let mut mem = rt.direct();
        let contents = tree.to_vec(&mut mem).unwrap();
        let expected: Vec<(u64, u64)> = model_map.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(contents, expected);
        for i in 0..8u64 {
            prop_assert_eq!(rt.heap().load_committed(accounts.offset(i)), model_accounts[i as usize]);
        }
        prop_assert_eq!(rt.stats().tx_aborts, 0, "single-threaded runs never abort");
    }

    /// Concurrent transfers preserve the conservation invariant for arbitrary
    /// partitions of the operation stream across threads.
    #[test]
    fn concurrent_transfers_conserve_money(seed in any::<u64>(), per_thread in 50usize..150) {
        with_default_watchdog(move || {
        let rt = SwisstmRuntime::new(TxConfig::small());
        let accounts = rt.heap().alloc(16).unwrap();
        for i in 0..16 {
            rt.heap().store_committed(accounts.offset(i), 1000);
        }
        std::thread::scope(|scope| {
            for t in 0..3u64 {
                let rt = Arc::clone(&rt);
                scope.spawn(move || {
                    let mut thread = rt.register_thread();
                    let mut x = seed ^ (t + 1);
                    for _ in 0..per_thread {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let from = x % 16;
                        let to = (x >> 8) % 16;
                        let amount = 1 + (x >> 16) % 7;
                        thread.atomic(|tx| {
                            let f = tx.read(accounts.offset(from))?;
                            if f >= amount && from != to {
                                let bal = tx.read(accounts.offset(to))?;
                                tx.write(accounts.offset(from), f - amount)?;
                                tx.write(accounts.offset(to), bal + amount)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        let total: u64 = (0..16).map(|i| rt.heap().load_committed(accounts.offset(i))).sum();
        prop_assert_eq!(total, 16 * 1000);
        });
    }
}

/// Committed counts equal attempted increments even under heavy inter-thread
/// contention on one rb-tree node (deterministic, non-proptest stress test).
#[test]
fn contended_rbtree_updates_are_exact() {
    with_default_watchdog(|| {
        let rt = SwisstmRuntime::new(TxConfig::small());
        let tree = TxRbTree::create(&mut rt.direct()).unwrap();
        {
            let mut mem = rt.direct();
            for k in 0..8u64 {
                tree.insert(&mut mem, k, 0).unwrap();
            }
        }
        let per_thread = 300u64;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let rt = Arc::clone(&rt);
                scope.spawn(move || {
                    let mut thread = rt.register_thread();
                    for i in 0..per_thread {
                        let key = (t + i) % 8;
                        thread.atomic(|tx| {
                            let v = tree.get(tx, key)?.unwrap_or(0);
                            tree.insert(tx, key, v + 1)?;
                            Ok(())
                        });
                    }
                });
            }
        });
        let mut mem = rt.direct();
        let sum: u64 = tree
            .to_vec(&mut mem)
            .unwrap()
            .into_iter()
            .map(|(_, v)| v)
            .sum();
        assert_eq!(sum, 4 * per_thread);
        tree.check_invariants(&mut mem).unwrap();
    });
}
