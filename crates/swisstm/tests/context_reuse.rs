//! Property: a recycled [`swisstm::TxContext`] that has been through commits
//! *and* a populated rollback is observationally indistinguishable from a
//! fresh one — no stale read-log, write-set or descriptor state may leak into
//! the next transaction.
//!
//! For arbitrary operation sequences the test runs, on runtime A, one thread
//! through: a committing *warm* transaction, an *aborted* transaction (whose
//! first attempt applies writes and then rolls back), and a final
//! transaction. On runtime B it replays only the warm transaction and then
//! runs the final transaction on a **brand-new thread** (fresh context). The
//! final transaction's observed reads and the entire committed region must be
//! identical — and the aborted writes must be visible in neither.

use proptest::prelude::*;
use swisstm::{SwisstmRuntime, SwisstmThread};
use txmem::{Abort, TxConfig, TxMem, WordAddr};

const WORDS: u64 = 64;

#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64),
    Write(u64, u64),
}

fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..WORDS).prop_map(Op::Read),
            // Writes draw from a narrow value domain so leaked stale values
            // would be plausible-looking, not obviously corrupt.
            (0..WORDS, 0..1000u64).prop_map(|(w, v)| Op::Write(w, v)),
        ],
        0..max_len,
    )
}

/// Applies `ops` inside a transaction, returning every read's result.
fn apply(
    tx: &mut swisstm::Transaction<'_>,
    region: WordAddr,
    ops: &[Op],
) -> Result<Vec<u64>, Abort> {
    let mut observed = Vec::with_capacity(ops.len());
    for &op in ops {
        match op {
            Op::Read(w) => observed.push(tx.read(region.offset(w))?),
            Op::Write(w, v) => tx.write(region.offset(w), v)?,
        }
    }
    Ok(observed)
}

fn committed_region(rt: &SwisstmRuntime, region: WordAddr) -> Vec<u64> {
    (0..WORDS)
        .map(|w| rt.heap().load_committed(region.offset(w)))
        .collect()
}

fn run_committing_txn(thread: &mut SwisstmThread, region: WordAddr, ops: &[Op]) -> Vec<u64> {
    thread.atomic(|tx| apply(tx, region, ops))
}

/// Runs a transaction whose first attempt applies `ops` and then aborts; the
/// retry commits empty. Net effect on committed state: none.
fn run_aborted_txn(thread: &mut SwisstmThread, region: WordAddr, ops: &[Op]) {
    let mut first_attempt = true;
    thread.atomic(|tx| {
        if first_attempt {
            first_attempt = false;
            apply(tx, region, ops)?;
            return Err(Abort::user_retry());
        }
        Ok(())
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reused_context_after_rollback_matches_fresh_context(
        warm_ops in ops_strategy(40),
        aborted_ops in ops_strategy(40),
        final_ops in ops_strategy(40),
    ) {
        // Runtime A: one thread, one recycled context, through all phases.
        let rt_a = SwisstmRuntime::new(TxConfig::small());
        let region_a = rt_a.heap().alloc(WORDS).unwrap();
        let mut thread_a = rt_a.register_thread();
        run_committing_txn(&mut thread_a, region_a, &warm_ops);
        run_aborted_txn(&mut thread_a, region_a, &aborted_ops);
        let observed_reused = run_committing_txn(&mut thread_a, region_a, &final_ops);

        // Runtime B: warm state replayed, final transaction on a fresh
        // thread whose context has no history at all.
        let rt_b = SwisstmRuntime::new(TxConfig::small());
        let region_b = rt_b.heap().alloc(WORDS).unwrap();
        let mut warm_thread = rt_b.register_thread();
        run_committing_txn(&mut warm_thread, region_b, &warm_ops);
        drop(warm_thread);
        let mut fresh_thread = rt_b.register_thread();
        let observed_fresh = run_committing_txn(&mut fresh_thread, region_b, &final_ops);

        prop_assert_eq!(
            observed_reused,
            observed_fresh,
            "a recycled context returned different reads than a fresh one"
        );
        prop_assert_eq!(
            committed_region(&rt_a, region_a),
            committed_region(&rt_b, region_b),
            "recycled-context execution left different committed state"
        );
        // Aborted transactions committed nothing and retried exactly once.
        prop_assert_eq!(rt_a.stats().aborts_user_retry, 1);
        prop_assert_eq!(rt_a.stats().tx_commits, 3);
    }
}
