//! Counting-allocator proof of the zero-allocation hot path.
//!
//! Registers a global allocator that counts every `alloc`/`realloc` and then
//! drives a recycled [`swisstm::SwisstmThread`] through read-only,
//! write-heavy and aborting transactions: after a warm-up phase (which grows
//! the context's logs, the write-set index and the heap segments to their
//! steady-state footprint), the measured phase must perform **zero**
//! allocations — across the read, write, commit and rollback paths.
//!
//! This file deliberately contains a single `#[test]` so no concurrent test
//! pollutes the global counter.

use swisstm::SwisstmRuntime;
use tlstm_testutil::{allocation_count as allocations, CountingAlloc};
use txmem::{Abort, TxConfig, TxMem, WordAddr};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const REGION_WORDS: u64 = 256;

/// One deterministic mixed transaction: `reads` reads and `writes` writes
/// scattered over the region (with repeated writes to the same words, words
/// sharing a lock entry, and — because the region spans more than the small
/// lock table covers — colliding entries).
fn mixed_txn(
    tx: &mut swisstm::Transaction<'_>,
    region: WordAddr,
    round: u64,
    reads: u64,
    writes: u64,
) -> Result<u64, Abort> {
    let mut acc = 0u64;
    for i in 0..reads {
        acc = acc.wrapping_add(tx.read(region.offset((round * 31 + i * 7) % REGION_WORDS))?);
    }
    for i in 0..writes {
        let w = (round * 13 + i * 5) % REGION_WORDS;
        tx.write(region.offset(w), round ^ i)?;
        if i % 3 == 0 {
            // Repeated write to the same word exercises the in-place update.
            tx.write(region.offset(w), round ^ i ^ 1)?;
        }
    }
    Ok(acc)
}

/// Runs the full workload shape once: a mixed transaction, a read-only
/// transaction, and a transaction whose first attempt aborts (rollback path).
fn drive(thread: &mut swisstm::SwisstmThread, region: WordAddr, round: u64) {
    thread.atomic(|tx| mixed_txn(tx, region, round, 24, 16));
    thread.atomic(|tx| mixed_txn(tx, region, round, 32, 0));
    let mut first = true;
    thread.atomic(|tx| {
        mixed_txn(tx, region, round.wrapping_add(1), 8, 12)?;
        if first {
            first = false;
            return Err(Abort::user_retry());
        }
        Ok(())
    });
}

#[test]
fn steady_state_transactions_allocate_nothing() {
    let rt = SwisstmRuntime::new(TxConfig::small());
    let region = rt.heap().alloc(REGION_WORDS).unwrap();
    let mut thread = rt.register_thread();

    // Warm-up: materialise heap segments and grow the recycled context (read
    // log, write set + index, acquired list) to the workload's footprint.
    for round in 0..64 {
        drive(&mut thread, region, round);
    }

    let before = allocations();
    for round in 64..192 {
        drive(&mut thread, region, round);
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "steady-state SwissTM transactions (read, write, commit and rollback \
         paths) must not allocate"
    );

    // Sanity: the workload actually exercised the paths it claims to.
    let stats = rt.stats();
    assert!(stats.tx_commits >= 3 * 192);
    assert!(stats.aborts_user_retry >= 192);
    assert!(stats.reads > 0 && stats.writes > 0);
}
