//! Proves the trace and metrics probe paths are allocation-free once a
//! thread's ring is registered — the property that lets the runtimes keep
//! probes in their commit paths.

use tlstm_testutil::CountingAlloc;
use txobs::trace::{self, EventKind};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn probe_paths_do_not_allocate_with_tracing_enabled() {
    txobs::set_tracing(true);
    // Warm-up: the first event registers this thread's ring (one-time
    // allocation by design); metrics statics never allocate.
    txobs::tx_begin();
    trace::trace(EventKind::WalEnqueue, 1);
    let wal = txobs::metrics::wal();
    wal.append_ns.record_ns(1);

    let before = tlstm_testutil::allocation_count();
    for i in 0..4096u64 {
        txobs::tx_begin();
        txobs::tx_commit();
        txobs::tx_abort(trace::cause::INTER_WW);
        trace::trace(EventKind::WalEnqueue, i);
        trace::trace(EventKind::WalAppendStart, i);
        trace::trace(EventKind::WalAppendDone, i * 24);
        trace::trace(EventKind::WalFsyncStart, 0);
        trace::trace(EventKind::WalFsyncDone, i);
        trace::trace(EventKind::WalWatermark, i);
        wal.enqueued.inc();
        wal.queue_depth.set(i);
        wal.append_ns.record_ns(i);
        wal.fsync_ns.record_ns(i * 3);
        txobs::metrics::kv().health.set(trace::health::HEALTHY);
    }
    let after = tlstm_testutil::allocation_count();
    txobs::set_tracing(false);
    assert_eq!(
        after - before,
        0,
        "trace/metrics probes must not allocate (saw {} allocations)",
        after - before
    );

    // The loop wrapped the ring several times; accounting stays exact.
    let (emitted, dropped) = trace::current_thread_stats();
    let expected = 2 + 4096 * 9;
    assert_eq!(emitted, expected);
    assert_eq!(dropped, expected - trace::RING_CAPACITY as u64);
}
