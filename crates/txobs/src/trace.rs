//! Per-thread lock-free trace rings with a Chrome-trace-event exporter.
//!
//! Every instrumented thread owns one fixed-capacity ring of timestamped
//! events. Emitting an event is wait-free: one relaxed load of the global
//! enable flag (the only cost when tracing is disabled), one relaxed
//! `fetch_add` on the ring head, and three relaxed stores into the slot —
//! no locks, and no allocation after the thread's ring has been registered
//! (registration happens on the thread's first event or on
//! [`label_current_thread`]).
//!
//! Rings deliberately overwrite their oldest events when full: a trace is a
//! flight recorder, not a log. The number of overwritten events is exact —
//! the head counts every emission ever made, so
//! `dropped = head.saturating_sub(capacity)`.
//!
//! [`write_chrome_trace`] merges all rings into Chrome trace-event JSON that
//! loads directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`; [`dump_to_stderr`] renders the same events as text for
//! post-mortems (the test watchdog calls it when a test hangs).

use std::cell::OnceCell;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Capacity of one thread's trace ring, in events. With ~32 bytes per slot
/// this is ~256 KiB per instrumented thread — large enough to hold several
/// milliseconds of a contended run, small enough to leave resident.
pub const RING_CAPACITY: usize = 8192;

/// Everything the stack can trace. Discriminants are stable: they appear in
/// exported traces and in the watchdog's stderr dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A transaction attempt started (one event per attempt, including
    /// retries).
    TxBegin = 0,
    /// A transaction committed.
    TxCommit = 1,
    /// A transaction attempt aborted; the argument is the abort-cause code
    /// (see [`cause`]).
    TxAbort = 2,
    /// A commit batch was handed to the WAL append stage; the argument is the
    /// batch's LSN.
    WalEnqueue = 3,
    /// The WAL append stage started writing a batch; the argument is the
    /// number of records in the batch.
    WalAppendStart = 4,
    /// The WAL append stage finished writing a batch; the argument is the
    /// number of bytes written.
    WalAppendDone = 5,
    /// The WAL sync stage started an fsync.
    WalFsyncStart = 6,
    /// The WAL sync stage finished an fsync; the argument is the durable
    /// watermark it published.
    WalFsyncDone = 7,
    /// The durable watermark advanced; the argument is the new watermark LSN.
    WalWatermark = 8,
    /// The WAL rotated to a fresh segment; the argument is the rotation
    /// count.
    WalRotate = 9,
    /// The durable KV store's health changed; the argument is the health code
    /// (see [`health`]).
    KvHealth = 10,
    /// The durable KV store re-armed a fresh WAL after degradation; the
    /// argument is the snapshot LSN the new log starts at.
    KvRearm = 11,
    /// A serving thread decoded one network request frame; the argument is
    /// the request's payload length in bytes.
    NetRead = 12,
    /// A serving thread coalesced its readable connections' requests into one
    /// store batch; the argument is the number of requests coalesced.
    NetBatch = 13,
    /// A serving thread wrote one reply frame back to a connection; the
    /// argument is the reply's payload length in bytes.
    NetWrite = 14,
}

impl EventKind {
    fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            0 => EventKind::TxBegin,
            1 => EventKind::TxCommit,
            2 => EventKind::TxAbort,
            3 => EventKind::WalEnqueue,
            4 => EventKind::WalAppendStart,
            5 => EventKind::WalAppendDone,
            6 => EventKind::WalFsyncStart,
            7 => EventKind::WalFsyncDone,
            8 => EventKind::WalWatermark,
            9 => EventKind::WalRotate,
            10 => EventKind::KvHealth,
            11 => EventKind::KvRearm,
            12 => EventKind::NetRead,
            13 => EventKind::NetBatch,
            14 => EventKind::NetWrite,
            _ => return None,
        })
    }

    /// The event's name in exported traces.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TxBegin => "tx-begin",
            EventKind::TxCommit => "tx-commit",
            EventKind::TxAbort => "tx-abort",
            EventKind::WalEnqueue => "wal-enqueue",
            EventKind::WalAppendStart | EventKind::WalAppendDone => "wal-append",
            EventKind::WalFsyncStart | EventKind::WalFsyncDone => "wal-fsync",
            EventKind::WalWatermark => "wal-watermark",
            EventKind::WalRotate => "wal-rotate",
            EventKind::KvHealth => "kv-health",
            EventKind::KvRearm => "kv-rearm",
            EventKind::NetRead => "net-read",
            EventKind::NetBatch => "net-batch",
            EventKind::NetWrite => "net-write",
        }
    }
}

/// Abort-cause codes carried by [`EventKind::TxAbort`] events. The mapping
/// from runtime abort reasons lives with the runtimes; these constants fix
/// the wire values.
pub mod cause {
    /// Commit-time read-set validation failure.
    pub const READ_VALIDATION: u64 = 0;
    /// Inter-thread write-write conflict.
    pub const INTER_WW: u64 = 1;
    /// Intra-thread write-after-read between tasks.
    pub const INTRA_WAR: u64 = 2;
    /// Intra-thread write-after-write between tasks.
    pub const INTRA_WAW: u64 = 3;
    /// Whole-transaction abort signal.
    pub const TX_SIGNAL: u64 = 4;
    /// Single-task abort signal.
    pub const TASK_SIGNAL: u64 = 5;
    /// Explicit user retry.
    pub const USER_RETRY: u64 = 6;
    /// Transactional allocator exhaustion.
    pub const OOM: u64 = 7;

    /// Human-readable label of a cause code.
    pub fn label(code: u64) -> &'static str {
        match code {
            READ_VALIDATION => "read-validation",
            INTER_WW => "inter-ww",
            INTRA_WAR => "intra-war",
            INTRA_WAW => "intra-waw",
            TX_SIGNAL => "tx-signal",
            TASK_SIGNAL => "task-signal",
            USER_RETRY => "user-retry",
            OOM => "oom",
            _ => "unknown",
        }
    }
}

/// Health codes carried by [`EventKind::KvHealth`] events and the
/// `txobs_kv_health` gauge.
pub mod health {
    /// The WAL is accepting and acknowledging batches.
    pub const HEALTHY: u64 = 1;
    /// The WAL failed; the store serves reads and refuses writes.
    pub const DEGRADED: u64 = 2;
    /// The store is permanently failed.
    pub const FAILED: u64 = 3;

    /// Human-readable label of a health code.
    pub fn label(code: u64) -> &'static str {
        match code {
            HEALTHY => "healthy",
            DEGRADED => "degraded",
            FAILED => "failed",
            _ => "unknown",
        }
    }
}

struct Slot {
    ts_ns: AtomicU64,
    kind: AtomicU64,
    arg: AtomicU64,
}

/// One thread's trace ring. Written only by the owning thread; read by the
/// exporter and the watchdog dump (reads of a live ring may observe an event
/// mid-write — acceptable for a diagnostic flight recorder).
struct Ring {
    /// Stable export identifier (assigned at registration, dense from 1).
    tid: u64,
    label: Mutex<String>,
    /// Total events ever emitted; the next write goes to
    /// `slots[head % RING_CAPACITY]`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(tid: u64, label: String) -> Ring {
        let slots = (0..RING_CAPACITY)
            .map(|_| Slot {
                ts_ns: AtomicU64::new(0),
                kind: AtomicU64::new(0),
                arg: AtomicU64::new(0),
            })
            .collect();
        Ring {
            tid,
            label: Mutex::new(label),
            head: AtomicU64::new(0),
            slots,
        }
    }

    #[inline]
    fn emit(&self, ts_ns: u64, kind: EventKind, arg: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % RING_CAPACITY as u64) as usize];
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
    }

    fn emitted(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    fn dropped(&self) -> u64 {
        self.emitted().saturating_sub(RING_CAPACITY as u64)
    }

    /// The retained events, oldest first.
    fn snapshot(&self) -> Vec<(u64, EventKind, u64)> {
        let head = self.emitted();
        let len = head.min(RING_CAPACITY as u64);
        let start = head - len;
        (start..head)
            .filter_map(|seq| {
                let slot = &self.slots[(seq % RING_CAPACITY as u64) as usize];
                let kind = EventKind::from_code(slot.kind.load(Ordering::Relaxed))?;
                Some((
                    slot.ts_ns.load(Ordering::Relaxed),
                    kind,
                    slot.arg.load(Ordering::Relaxed),
                ))
            })
            .collect()
    }
}

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

thread_local! {
    static RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

fn register_current_thread() -> Arc<Ring> {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let label = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let ring = Arc::new(Ring::new(tid, label));
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&ring));
    ring
}

fn with_ring(f: impl FnOnce(&Ring)) {
    // `try_with` so late events during thread teardown are silently dropped
    // instead of panicking in a destructor.
    let _ = RING.try_with(|cell| f(cell.get_or_init(register_current_thread)));
}

/// Globally enables or disables tracing. Disabled (the default), every probe
/// is a single relaxed atomic load.
pub fn set_tracing(enabled: bool) {
    // Initialise the epoch before the first event so timestamps are small
    // positive offsets from enablement, not from an arbitrary first probe.
    let _ = epoch();
    TRACE_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether tracing is currently enabled.
pub fn tracing_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Emits one event into the calling thread's ring. A no-op (one relaxed
/// load) when tracing is disabled.
#[inline]
pub fn trace(kind: EventKind, arg: u64) {
    if !TRACE_ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let ts = now_ns();
    with_ring(|ring| ring.emit(ts, kind, arg));
}

/// Registers the calling thread's ring (if it has none yet) and names it in
/// exported traces. Threads that never call this are labelled with their OS
/// thread name, or `thread-N`.
pub fn label_current_thread(label: &str) {
    with_ring(|ring| {
        *ring.label.lock().unwrap_or_else(|e| e.into_inner()) = label.to_owned();
    });
}

/// Exact number of events overwritten across all rings since the process
/// started (each ring keeps its newest [`RING_CAPACITY`] events).
pub fn dropped_events() -> u64 {
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|ring| ring.dropped())
        .sum()
}

/// `(emitted, dropped)` of the calling thread's ring — zero if the thread
/// has not traced anything yet. Exact even after wrap-around.
pub fn current_thread_stats() -> (u64, u64) {
    let mut stats = (0, 0);
    with_ring(|ring| stats = (ring.emitted(), ring.dropped()));
    stats
}

/// Clears every ring (head reset, registrations kept) and re-enables exact
/// dropped accounting from zero. Intended for tests and for tools that trace
/// several runs from one process.
pub fn clear() {
    for ring in registry().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        ring.head.store(0, Ordering::Relaxed);
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Writes all rings as Chrome trace-event JSON (the `traceEvents` array
/// format), loadable in Perfetto or `chrome://tracing`.
///
/// WAL append and fsync stages become duration (`B`/`E`) pairs; every other
/// event is an instant. Timestamps are microseconds since the trace epoch.
pub fn write_chrome_trace(w: &mut dyn Write) -> io::Result<()> {
    let rings: Vec<Arc<Ring>> = registry().lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut body = String::new();
    let mut first = true;
    let mut push = |line: String, body: &mut String| {
        if !std::mem::take(&mut first) {
            body.push_str(",\n");
        }
        body.push_str(&line);
    };
    for ring in &rings {
        let tid = ring.tid;
        let label = ring.label.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut escaped = String::new();
        escape_json(&label, &mut escaped);
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{escaped}\"}}}}"
            ),
            &mut body,
        );
        // Depth per duration name so an `E` whose `B` was overwritten by the
        // ring (or dropped) never reaches the output unmatched.
        let mut append_depth = 0u32;
        let mut fsync_depth = 0u32;
        for (ts_ns, kind, arg) in ring.snapshot() {
            let ts_us = ts_ns as f64 / 1_000.0;
            let name = kind.name();
            let line = match kind {
                EventKind::WalAppendStart | EventKind::WalFsyncStart => {
                    match kind {
                        EventKind::WalAppendStart => append_depth += 1,
                        _ => fsync_depth += 1,
                    }
                    format!(
                        "{{\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3},\
                         \"name\":\"{name}\",\"args\":{{\"arg\":{arg}}}}}"
                    )
                }
                EventKind::WalAppendDone | EventKind::WalFsyncDone => {
                    let depth = match kind {
                        EventKind::WalAppendDone => &mut append_depth,
                        _ => &mut fsync_depth,
                    };
                    if *depth == 0 {
                        continue;
                    }
                    *depth -= 1;
                    format!(
                        "{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3},\
                         \"name\":\"{name}\",\"args\":{{\"arg\":{arg}}}}}"
                    )
                }
                EventKind::TxAbort => format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3},\"s\":\"t\",\
                     \"name\":\"{name}\",\"args\":{{\"cause\":\"{}\"}}}}",
                    cause::label(arg)
                ),
                EventKind::KvHealth => format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3},\"s\":\"t\",\
                     \"name\":\"{name}\",\"args\":{{\"health\":\"{}\"}}}}",
                    health::label(arg)
                ),
                _ => format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3},\"s\":\"t\",\
                     \"name\":\"{name}\",\"args\":{{\"arg\":{arg}}}}}"
                ),
            };
            push(line, &mut body);
        }
        // Close stage spans left open by the snapshot boundary so the JSON
        // stays well-nested.
        let end_ts = now_ns() as f64 / 1_000.0;
        for name in std::iter::repeat_n("wal-append", append_depth as usize)
            .chain(std::iter::repeat_n("wal-fsync", fsync_depth as usize))
        {
            push(
                format!(
                    "{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{end_ts:.3},\
                     \"name\":\"{name}\",\"args\":{{}}}}"
                ),
                &mut body,
            );
        }
    }
    writeln!(
        w,
        "{{\"displayTimeUnit\":\"ns\",\"otherData\":{{\"droppedEvents\":{}}},\
         \"traceEvents\":[\n{}\n]}}",
        dropped_events(),
        body
    )
}

/// Renders every ring to `w` as plain text, one event per line, for
/// post-mortem inspection (the test watchdog dumps this on timeout).
pub fn dump_text(w: &mut dyn Write) -> io::Result<()> {
    let rings: Vec<Arc<Ring>> = registry().lock().unwrap_or_else(|e| e.into_inner()).clone();
    if rings.is_empty() {
        return writeln!(w, "txobs: no trace rings registered");
    }
    for ring in &rings {
        let label = ring.label.lock().unwrap_or_else(|e| e.into_inner()).clone();
        writeln!(
            w,
            "txobs ring tid={} label={:?} emitted={} dropped={}",
            ring.tid,
            label,
            ring.emitted(),
            ring.dropped()
        )?;
        for (ts_ns, kind, arg) in ring.snapshot() {
            let detail = match kind {
                EventKind::TxAbort => cause::label(arg),
                EventKind::KvHealth => health::label(arg),
                _ => "",
            };
            writeln!(
                w,
                "  {:>14} ns  {:<14} arg={} {}",
                ts_ns,
                kind.name(),
                arg,
                detail
            )?;
        }
    }
    Ok(())
}

/// [`dump_text`] to stderr, ignoring write errors (safe to call from a
/// panicking watchdog).
pub fn dump_to_stderr() {
    let stderr = io::stderr();
    let mut lock = stderr.lock();
    let _ = dump_text(&mut lock);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; serialise the tests that toggle it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_emits_nothing() {
        let _guard = lock();
        set_tracing(false);
        std::thread::spawn(|| {
            trace(EventKind::TxBegin, 0);
            trace(EventKind::TxCommit, 0);
            assert_eq!(current_thread_stats(), (0, 0));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn wraparound_drops_are_counted_exactly() {
        let _guard = lock();
        set_tracing(true);
        let overflow = 1234u64;
        let emitted = RING_CAPACITY as u64 + overflow;
        std::thread::spawn(move || {
            for i in 0..emitted {
                trace(EventKind::WalEnqueue, i);
            }
            let (seen, dropped) = current_thread_stats();
            assert_eq!(seen, emitted);
            assert_eq!(dropped, overflow, "exact dropped-event accounting");
            // The ring retains exactly the newest RING_CAPACITY events, in
            // order.
            let snapshot = {
                let regs = registry().lock().unwrap();
                let ring = regs.iter().find(|r| r.dropped() == overflow).unwrap();
                ring.snapshot()
            };
            assert_eq!(snapshot.len(), RING_CAPACITY);
            assert_eq!(snapshot.first().unwrap().2, overflow);
            assert_eq!(snapshot.last().unwrap().2, emitted - 1);
        })
        .join()
        .unwrap();
        set_tracing(false);
    }

    #[test]
    fn chrome_trace_contains_labels_and_events() {
        let _guard = lock();
        set_tracing(true);
        std::thread::Builder::new()
            .name("chrome-test".into())
            .spawn(|| {
                label_current_thread("chrome-test-labelled");
                trace(EventKind::TxBegin, 0);
                trace(EventKind::TxAbort, cause::INTER_WW);
                trace(EventKind::WalAppendStart, 3);
                trace(EventKind::WalAppendDone, 96);
                trace(EventKind::WalFsyncStart, 0);
                trace(EventKind::WalFsyncDone, 7);
                trace(EventKind::KvHealth, health::DEGRADED);
            })
            .unwrap()
            .join()
            .unwrap();
        set_tracing(false);
        let mut out = Vec::new();
        write_chrome_trace(&mut out).unwrap();
        let json = String::from_utf8(out).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("chrome-test-labelled"));
        assert!(json.contains("\"name\":\"tx-begin\""));
        assert!(json.contains("\"cause\":\"inter-ww\""));
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"wal-fsync\""));
        assert!(json.contains("\"health\":\"degraded\""));
        // Quotes and braces must balance for any JSON parser to accept it.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn dump_text_renders_every_ring() {
        let _guard = lock();
        set_tracing(true);
        std::thread::Builder::new()
            .name("dump-test".into())
            .spawn(|| {
                trace(EventKind::WalRotate, 2);
            })
            .unwrap()
            .join()
            .unwrap();
        set_tracing(false);
        let mut out = Vec::new();
        dump_text(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("dump-test"));
        assert!(text.contains("wal-rotate"));
    }

    #[test]
    fn cause_and_health_labels_cover_their_codes() {
        for code in 0..8 {
            assert_ne!(cause::label(code), "unknown", "cause {code}");
        }
        assert_eq!(cause::label(99), "unknown");
        for code in [health::HEALTHY, health::DEGRADED, health::FAILED] {
            assert_ne!(health::label(code), "unknown");
        }
        assert_eq!(health::label(0), "unknown");
    }
}
