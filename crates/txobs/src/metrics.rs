//! Always-on metrics: counters, gauges and log₂ histograms with a
//! dependency-free Prometheus-style text exposition.
//!
//! The hot-path instruments ([`Counter`], [`Gauge`], [`AtomicHistogram`]) are
//! plain relaxed atomics reachable through `&'static` structs — no registry
//! lookup, no locking, no allocation on the update path. The WAL writer and
//! the durable KV store update [`wal()`] and [`kv()`]; anything else (e.g.
//! per-scenario transaction counters from the bench harness) can be
//! [`publish`]ed as dynamic gauges at exposition time.
//!
//! [`metrics_text()`] renders everything in the Prometheus text format;
//! [`parse_exposition`] is the matching minimal parser, used by tests and CI
//! to prove the exposition round-trips.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::histogram::{LatencyHistogram, LATENCY_BUCKETS};

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A last-write-wins gauge.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `n` (for gauges tracking a population across threads).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// A thread-safe log₂ histogram sharing [`LatencyHistogram`]'s bucketing.
/// Recording is a handful of relaxed atomic operations; [`snapshot`] folds
/// the live counters into an owned [`LatencyHistogram`] for querying.
///
/// [`snapshot`]: AtomicHistogram::snapshot
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one sample in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let bucket = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// An owned snapshot of the current contents. Concurrent recording may
    /// leave the fields off by in-flight samples relative to each other;
    /// `count` is recomputed from the bucket view so the snapshot's quantiles
    /// are always self-consistent.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        let mut count = 0u64;
        for (slot, out) in self.buckets.iter().zip(buckets.iter_mut()) {
            *out = slot.load(Ordering::Relaxed);
            count += *out;
        }
        LatencyHistogram::from_parts(
            buckets,
            count,
            self.total_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
        )
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

/// Hot-path metrics of the two-stage WAL writer.
#[derive(Debug, Default)]
pub struct WalMetrics {
    /// Commit batches handed to the append stage.
    pub enqueued: Counter,
    /// Batches not yet acknowledged durable (enqueue minus watermark).
    pub queue_depth: Gauge,
    /// Physical write batches issued by the append stage.
    pub batches: Counter,
    /// Log records coalesced across all write batches.
    pub batch_records: Counter,
    /// Bytes written across all write batches.
    pub batch_bytes: Counter,
    /// Latency of each physical batch write.
    pub append_ns: AtomicHistogram,
    /// Fsyncs issued by the sync stage.
    pub fsyncs: Counter,
    /// Latency of each fsync.
    pub fsync_ns: AtomicHistogram,
    /// LSNs written but not yet durable (append watermark minus durable
    /// watermark).
    pub watermark_lag: Gauge,
    /// Transient write errors retried by the append stage.
    pub retries: Counter,
    /// Terminal WAL faults (the writer died).
    pub faults: Counter,
    /// Segment rotations.
    pub rotations: Counter,
}

/// Point-in-time copy of [`WalMetrics`], subtractable across a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalSnapshot {
    /// See [`WalMetrics::enqueued`].
    pub enqueued: u64,
    /// See [`WalMetrics::batches`].
    pub batches: u64,
    /// See [`WalMetrics::batch_records`].
    pub batch_records: u64,
    /// See [`WalMetrics::batch_bytes`].
    pub batch_bytes: u64,
    /// See [`WalMetrics::fsyncs`].
    pub fsyncs: u64,
    /// See [`WalMetrics::retries`].
    pub retries: u64,
    /// See [`WalMetrics::faults`].
    pub faults: u64,
    /// See [`WalMetrics::rotations`].
    pub rotations: u64,
    /// See [`WalMetrics::append_ns`].
    pub append_ns: LatencyHistogram,
    /// See [`WalMetrics::fsync_ns`].
    pub fsync_ns: LatencyHistogram,
}

impl WalSnapshot {
    /// Mean records per physical write batch (0.0 before the first batch).
    pub fn mean_batch_records(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_records as f64 / self.batches as f64
        }
    }

    /// The activity since `earlier` (an older snapshot of the same process).
    pub fn delta_since(&self, earlier: &WalSnapshot) -> WalSnapshot {
        WalSnapshot {
            enqueued: self.enqueued.saturating_sub(earlier.enqueued),
            batches: self.batches.saturating_sub(earlier.batches),
            batch_records: self.batch_records.saturating_sub(earlier.batch_records),
            batch_bytes: self.batch_bytes.saturating_sub(earlier.batch_bytes),
            fsyncs: self.fsyncs.saturating_sub(earlier.fsyncs),
            retries: self.retries.saturating_sub(earlier.retries),
            faults: self.faults.saturating_sub(earlier.faults),
            rotations: self.rotations.saturating_sub(earlier.rotations),
            append_ns: self.append_ns.delta_since(&earlier.append_ns),
            fsync_ns: self.fsync_ns.delta_since(&earlier.fsync_ns),
        }
    }

    /// Folds another snapshot into this one (summing counters and merging
    /// histograms) — used when averaging bench repetitions.
    pub fn merge(&mut self, other: &WalSnapshot) {
        self.enqueued += other.enqueued;
        self.batches += other.batches;
        self.batch_records += other.batch_records;
        self.batch_bytes += other.batch_bytes;
        self.fsyncs += other.fsyncs;
        self.retries += other.retries;
        self.faults += other.faults;
        self.rotations += other.rotations;
        self.append_ns.merge(&other.append_ns);
        self.fsync_ns.merge(&other.fsync_ns);
    }
}

impl WalMetrics {
    /// Snapshots every counter and histogram.
    pub fn snapshot(&self) -> WalSnapshot {
        WalSnapshot {
            enqueued: self.enqueued.get(),
            batches: self.batches.get(),
            batch_records: self.batch_records.get(),
            batch_bytes: self.batch_bytes.get(),
            fsyncs: self.fsyncs.get(),
            retries: self.retries.get(),
            faults: self.faults.get(),
            rotations: self.rotations.get(),
            append_ns: self.append_ns.snapshot(),
            fsync_ns: self.fsync_ns.snapshot(),
        }
    }
}

/// Metrics of the durable KV store lifecycle.
#[derive(Debug, Default)]
pub struct KvMetrics {
    /// Current health (see [`crate::trace::health`]; 0 = no durable store
    /// booted yet).
    pub health: Gauge,
    /// Successful WAL re-arms after degradation.
    pub rearms: Counter,
}

/// Hot-path metrics of the network serving front-end.
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Request frames decoded across all serving threads.
    pub requests: Counter,
    /// Reply frames written back across all serving threads.
    pub replies: Counter,
    /// Request bytes read off all connections (frame headers included).
    pub bytes_in: Counter,
    /// Reply bytes written to all connections (frame headers included).
    pub bytes_out: Counter,
    /// Coalesced store batches executed (one per serving-thread drain that
    /// found at least one request).
    pub coalesced_batches: Counter,
    /// Requests folded into those coalesced batches; divided by
    /// `coalesced_batches` this is the server-side coalescing factor.
    pub coalesced_requests: Counter,
    /// Request frames rejected with a typed protocol error.
    pub protocol_errors: Counter,
    /// Currently connected clients.
    pub connections: Gauge,
}

/// Point-in-time copy of the [`NetMetrics`] counters, subtractable across a
/// benchmark run (the `connections` gauge is instantaneous and therefore not
/// part of the snapshot).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// See [`NetMetrics::requests`].
    pub requests: u64,
    /// See [`NetMetrics::replies`].
    pub replies: u64,
    /// See [`NetMetrics::bytes_in`].
    pub bytes_in: u64,
    /// See [`NetMetrics::bytes_out`].
    pub bytes_out: u64,
    /// See [`NetMetrics::coalesced_batches`].
    pub coalesced_batches: u64,
    /// See [`NetMetrics::coalesced_requests`].
    pub coalesced_requests: u64,
    /// See [`NetMetrics::protocol_errors`].
    pub protocol_errors: u64,
}

impl NetSnapshot {
    /// Mean requests folded into one coalesced store batch — the server-side
    /// coalescing factor (0.0 before the first batch, never `NaN`).
    pub fn mean_coalesced_requests(&self) -> f64 {
        if self.coalesced_batches == 0 {
            0.0
        } else {
            self.coalesced_requests as f64 / self.coalesced_batches as f64
        }
    }

    /// The activity since `earlier` (an older snapshot of the same process).
    pub fn delta_since(&self, earlier: &NetSnapshot) -> NetSnapshot {
        NetSnapshot {
            requests: self.requests.saturating_sub(earlier.requests),
            replies: self.replies.saturating_sub(earlier.replies),
            bytes_in: self.bytes_in.saturating_sub(earlier.bytes_in),
            bytes_out: self.bytes_out.saturating_sub(earlier.bytes_out),
            coalesced_batches: self
                .coalesced_batches
                .saturating_sub(earlier.coalesced_batches),
            coalesced_requests: self
                .coalesced_requests
                .saturating_sub(earlier.coalesced_requests),
            protocol_errors: self.protocol_errors.saturating_sub(earlier.protocol_errors),
        }
    }

    /// Folds another snapshot into this one — used when averaging bench
    /// repetitions.
    pub fn merge(&mut self, other: &NetSnapshot) {
        self.requests += other.requests;
        self.replies += other.replies;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.coalesced_batches += other.coalesced_batches;
        self.coalesced_requests += other.coalesced_requests;
        self.protocol_errors += other.protocol_errors;
    }
}

impl NetMetrics {
    /// Snapshots every counter.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            requests: self.requests.get(),
            replies: self.replies.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            coalesced_batches: self.coalesced_batches.get(),
            coalesced_requests: self.coalesced_requests.get(),
            protocol_errors: self.protocol_errors.get(),
        }
    }
}

static WAL: WalMetrics = WalMetrics {
    enqueued: Counter::new(),
    queue_depth: Gauge::new(),
    batches: Counter::new(),
    batch_records: Counter::new(),
    batch_bytes: Counter::new(),
    append_ns: AtomicHistogram::new(),
    fsyncs: Counter::new(),
    fsync_ns: AtomicHistogram::new(),
    watermark_lag: Gauge::new(),
    retries: Counter::new(),
    faults: Counter::new(),
    rotations: Counter::new(),
};

static KV: KvMetrics = KvMetrics {
    health: Gauge::new(),
    rearms: Counter::new(),
};

static NET: NetMetrics = NetMetrics {
    requests: Counter::new(),
    replies: Counter::new(),
    bytes_in: Counter::new(),
    bytes_out: Counter::new(),
    coalesced_batches: Counter::new(),
    coalesced_requests: Counter::new(),
    protocol_errors: Counter::new(),
    connections: Gauge::new(),
};

/// The process-wide WAL writer metrics.
pub fn wal() -> &'static WalMetrics {
    &WAL
}

/// The process-wide durable KV metrics.
pub fn kv() -> &'static KvMetrics {
    &KV
}

/// The process-wide network front-end metrics.
pub fn net() -> &'static NetMetrics {
    &NET
}

fn published() -> &'static Mutex<BTreeMap<String, f64>> {
    static PUBLISHED: OnceLock<Mutex<BTreeMap<String, f64>>> = OnceLock::new();
    PUBLISHED.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Publishes (or overwrites) a dynamic gauge sample rendered verbatim into
/// [`metrics_text`]. `labels` become the Prometheus label set. Not a hot
/// path: intended for end-of-run publication of snapshots (e.g. per-scenario
/// transaction counters).
pub fn publish(name: &str, labels: &[(&str, &str)], value: f64) {
    let mut key = String::from(name);
    if !labels.is_empty() {
        key.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                key.push(',');
            }
            let _ = write!(
                key,
                "{k}=\"{}\"",
                v.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        key.push('}');
    }
    published()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, value);
}

/// Clears all [`publish`]ed dynamic samples (static hot-path metrics are
/// process-cumulative and are not reset).
pub fn clear_published() {
    published()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

fn render_histogram(out: &mut String, name: &str, hist: &LatencyHistogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    let mut last_nonzero = 0usize;
    for (i, &n) in hist.buckets().iter().enumerate() {
        if n > 0 {
            last_nonzero = i;
        }
    }
    for (i, &n) in hist.buckets().iter().enumerate().take(last_nonzero + 1) {
        cumulative += n;
        let upper = if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        };
        let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
    let _ = writeln!(out, "{name}_sum {}", hist.total_ns());
    let _ = writeln!(out, "{name}_count {}", hist.count());
}

/// Renders every metric — the static WAL and KV instruments plus all
/// [`publish`]ed samples — in the Prometheus text exposition format.
pub fn metrics_text() -> String {
    let mut out = String::new();
    let wal = wal();
    for (name, counter) in [
        ("txobs_wal_enqueued_total", &wal.enqueued),
        ("txobs_wal_batches_total", &wal.batches),
        ("txobs_wal_batch_records_total", &wal.batch_records),
        ("txobs_wal_batch_bytes_total", &wal.batch_bytes),
        ("txobs_wal_fsyncs_total", &wal.fsyncs),
        ("txobs_wal_retries_total", &wal.retries),
        ("txobs_wal_faults_total", &wal.faults),
        ("txobs_wal_rotations_total", &wal.rotations),
        ("txobs_kv_rearms_total", &kv().rearms),
        ("txobs_net_requests_total", &net().requests),
        ("txobs_net_replies_total", &net().replies),
        ("txobs_net_bytes_in_total", &net().bytes_in),
        ("txobs_net_bytes_out_total", &net().bytes_out),
        (
            "txobs_net_coalesced_batches_total",
            &net().coalesced_batches,
        ),
        (
            "txobs_net_coalesced_requests_total",
            &net().coalesced_requests,
        ),
        ("txobs_net_protocol_errors_total", &net().protocol_errors),
    ] {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", counter.get());
    }
    for (name, gauge) in [
        ("txobs_wal_queue_depth", &wal.queue_depth),
        ("txobs_wal_watermark_lag", &wal.watermark_lag),
        ("txobs_kv_health", &kv().health),
        ("txobs_net_connections", &net().connections),
    ] {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", gauge.get());
    }
    render_histogram(&mut out, "txobs_wal_append_ns", &wal.append_ns.snapshot());
    render_histogram(&mut out, "txobs_wal_fsync_ns", &wal.fsync_ns.snapshot());
    let dynamic = published().lock().unwrap_or_else(|e| e.into_inner());
    if !dynamic.is_empty() {
        let _ = writeln!(out, "# published snapshots");
        for (key, value) in dynamic.iter() {
            let _ = writeln!(out, "{key} {value}");
        }
    }
    out
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (before any `{`).
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Parses the Prometheus text exposition format produced by
/// [`metrics_text`]. Comments (`#`) and blank lines are skipped; every other
/// line must be `name[{labels}] value`. Returns the samples or the first
/// offending line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
        let (series, value_str) = line
            .rsplit_once(|c: char| c.is_ascii_whitespace())
            .ok_or_else(|| err("expected `name value`"))?;
        let value: f64 = value_str
            .parse()
            .map_err(|_| err("unparseable sample value"))?;
        let (name, labels) = match series.split_once('{') {
            None => (series.trim().to_owned(), Vec::new()),
            Some((name, rest)) => {
                let inner = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label set"))?;
                let mut labels = Vec::new();
                for pair in inner.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| err("label without `=`"))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err("unquoted label value"))?;
                    labels.push((
                        k.trim().to_owned(),
                        v.replace("\\\"", "\"").replace("\\\\", "\\"),
                    ));
                }
                (name.trim().to_owned(), labels)
            }
        };
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err("invalid metric name"));
        }
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_update() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(42);
        g.set(17);
        assert_eq!(g.get(), 17);
        let h = AtomicHistogram::new();
        h.record_ns(0);
        h.record_ns(1000);
        h.record_ns(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert!(snap.quantile_ns(1.0) >= 512 * 1024);
    }

    #[test]
    fn atomic_histogram_snapshot_buckets_match_direct_recording() {
        let h = AtomicHistogram::new();
        let mut direct = LatencyHistogram::new();
        for ns in [1u64, 2, 3, 700, 700, 65_000] {
            h.record_ns(ns);
            direct.record_ns(ns);
        }
        // Bucket occupancy (the quantile resolution) is identical even
        // though within-bucket totals may differ.
        let snap = h.snapshot();
        for (a, b) in snap.buckets().iter().zip(direct.buckets().iter()) {
            assert_eq!(a, b);
        }
        assert_eq!(snap.quantile_ns(0.5), direct.quantile_ns(0.5));
    }

    #[test]
    fn wal_snapshot_delta_and_merge() {
        let a = WalSnapshot {
            enqueued: 10,
            batches: 4,
            batch_records: 10,
            batch_bytes: 4096,
            fsyncs: 4,
            ..WalSnapshot::default()
        };
        let mut later = a.clone();
        later.enqueued = 25;
        later.batches = 9;
        later.batch_records = 25;
        let d = later.delta_since(&a);
        assert_eq!(d.enqueued, 15);
        assert_eq!(d.batches, 5);
        assert!((d.mean_batch_records() - 3.0).abs() < 1e-9);
        let mut merged = d.clone();
        merged.merge(&d);
        assert_eq!(merged.enqueued, 30);
        assert!((merged.mean_batch_records() - 3.0).abs() < 1e-9);
        assert_eq!(WalSnapshot::default().mean_batch_records(), 0.0);
    }

    #[test]
    fn net_snapshot_delta_merge_and_zero_guard() {
        let a = NetSnapshot {
            requests: 10,
            replies: 10,
            bytes_in: 500,
            bytes_out: 400,
            coalesced_batches: 2,
            coalesced_requests: 10,
            protocol_errors: 1,
        };
        let mut later = a.clone();
        later.requests = 40;
        later.coalesced_batches = 5;
        later.coalesced_requests = 40;
        let d = later.delta_since(&a);
        assert_eq!(d.requests, 30);
        assert_eq!(d.coalesced_batches, 3);
        assert!((d.mean_coalesced_requests() - 10.0).abs() < 1e-9);
        let mut merged = d.clone();
        merged.merge(&d);
        assert_eq!(merged.requests, 60);
        // A window with no coalesced batches reports 0.0, never NaN.
        assert_eq!(NetSnapshot::default().mean_coalesced_requests(), 0.0);
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        wal().fsync_ns.record_ns(123_456);
        kv().health.set(crate::trace::health::HEALTHY);
        publish(
            "tmbench_tx_commits",
            &[("scenario", "kv-a-c8"), ("runtime", "swisstm")],
            991.0,
        );
        let text = metrics_text();
        let samples = parse_exposition(&text).expect("own exposition must parse");
        let find = |name: &str| samples.iter().find(|s| s.name == name);
        assert!(find("txobs_wal_fsyncs_total").is_some());
        let health = find("txobs_kv_health").expect("health gauge present");
        assert_eq!(health.value, crate::trace::health::HEALTHY as f64);
        // The fsync histogram exposes buckets, sum and count.
        assert!(samples
            .iter()
            .any(|s| s.name == "txobs_wal_fsync_ns_bucket"
                && s.labels.iter().any(|(k, _)| k == "le")));
        assert!(find("txobs_wal_fsync_ns_sum").is_some());
        assert!(find("txobs_wal_fsync_ns_count").is_some());
        let dynamic = find("tmbench_tx_commits").expect("published sample present");
        assert_eq!(dynamic.value, 991.0);
        assert!(dynamic
            .labels
            .iter()
            .any(|(k, v)| k == "scenario" && v == "kv-a-c8"));
        clear_published();
        assert!(parse_exposition(&metrics_text())
            .unwrap()
            .iter()
            .all(|s| s.name != "tmbench_tx_commits"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("just_a_name").is_err());
        assert!(parse_exposition("name not_a_number").is_err());
        assert!(parse_exposition("name{le=\"1\" 3").is_err());
        assert!(parse_exposition("name{le=1} 3").is_err());
        assert!(parse_exposition("bad-name 3").is_err());
        assert!(parse_exposition("# a comment\n\nok_name 3").is_ok());
    }
}
