//! The log₂-bucketed latency histogram shared by the workload harness, the
//! metrics registry and the bench reporter.
//!
//! Promoted here from `workloads::harness` so every layer of the stack (WAL
//! writer, bench harness, metrics exposition) aggregates latencies the same
//! way instead of growing private copies.

use std::time::Duration;

/// Number of power-of-two buckets in a [`LatencyHistogram`] (covers the full
/// `u64` nanosecond range).
pub const LATENCY_BUCKETS: usize = 64;

/// A log₂-bucketed histogram of latencies in nanoseconds.
///
/// Bucket `i` counts samples whose latency `ns` satisfies
/// `floor(log2(ns)) == i` (with `ns == 0` landing in bucket 0), so the full
/// nanosecond-to-centuries range fits in 64 counters. Each measurement thread
/// owns its histogram (no shared cache lines on the record path); histograms
/// are [`merged`](Self::merge) when the run ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }

    /// Rebuilds a histogram from raw parts (used by the atomic variant's
    /// snapshotting; `total_ns`/`max_ns` must describe the buckets).
    pub(crate) fn from_parts(
        buckets: [u64; LATENCY_BUCKETS],
        count: u64,
        total_ns: u64,
        max_ns: u64,
    ) -> Self {
        LatencyHistogram {
            buckets,
            count,
            total_ns,
            max_ns,
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one latency sample given in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        let bucket = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The samples recorded since `earlier` (a previous snapshot of the same
    /// monotonically-growing histogram). The observed maximum cannot be
    /// un-merged, so the delta keeps this histogram's maximum as an upper
    /// bound.
    pub fn delta_since(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut delta = LatencyHistogram::new();
        for (i, (now, then)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            delta.buckets[i] = now.saturating_sub(*then);
        }
        delta.count = self.count.saturating_sub(earlier.count);
        delta.total_ns = self.total_ns.saturating_sub(earlier.total_ns);
        delta.max_ns = if delta.count == 0 { 0 } else { self.max_ns };
        delta
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples, in nanoseconds (saturating).
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Largest recorded sample, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Raw bucket counts (bucket `i` holds samples with
    /// `floor(log2(ns)) == i`).
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Mean latency in nanoseconds (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// The latency below which `quantile` (in `[0, 1]`) of the samples fall,
    /// in nanoseconds. Resolution is one power-of-two bucket: the reported
    /// value is the bucket's upper bound, clamped to the observed maximum.
    /// Returns 0 when the histogram is empty.
    pub fn quantile_ns(&self, quantile: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((quantile.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket `i` is 2^(i+1) - 1.
                let upper = if bucket >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (bucket + 1)) - 1
                };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_histogram_records_and_summarises() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0.0);
        for ns in [0u64, 1, 100, 1000, 1000, 1000, 1_000_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_ns(), 1_000_000);
        let expected_mean = (1.0 + 100.0 + 3000.0 + 1_000_000.0) / 7.0;
        assert!((h.mean_ns() - expected_mean).abs() < 1e-9);
        // The median sample is 1000 ns, which lands in bucket [512, 1023];
        // the reported quantile is that bucket's upper bound.
        assert_eq!(h.quantile_ns(0.5), 1023);
        // p100 is the max sample exactly.
        assert_eq!(h.quantile_ns(1.0), 1_000_000);
        assert!(h.quantile_ns(0.99) <= 1_000_000);
    }

    #[test]
    fn latency_histogram_merge_is_a_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for ns in [10u64, 20, 30] {
            a.record_ns(ns);
        }
        for ns in [40u64, 50] {
            b.record_ns(ns);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut direct = LatencyHistogram::new();
        for ns in [10u64, 20, 30, 40, 50] {
            direct.record_ns(ns);
        }
        assert_eq!(merged, direct);
        assert_eq!(merged.count(), 5);
    }

    #[test]
    fn delta_since_subtracts_an_earlier_snapshot() {
        let mut h = LatencyHistogram::new();
        h.record_ns(100);
        h.record_ns(5000);
        let before = h.clone();
        h.record_ns(100);
        h.record_ns(200_000);
        let delta = h.delta_since(&before);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.total_ns(), 200_100);
        let mut expected = LatencyHistogram::new();
        expected.record_ns(100);
        expected.record_ns(200_000);
        assert_eq!(delta.buckets(), expected.buckets());
        // An empty delta is all-zero even though the base saw samples.
        let empty = h.delta_since(&h);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.max_ns(), 0);
    }
}
