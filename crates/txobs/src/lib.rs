//! `txobs` — the observability layer of the transactional-memory stack.
//!
//! The paper's evaluation (and ours, in `tmbench`) reports end-of-run
//! aggregates. This crate makes the *interior* of a run visible without
//! perturbing it:
//!
//! * [`trace`] — per-thread lock-free flight-recorder rings of timestamped
//!   events (transaction begin/commit/abort-with-cause, the WAL pipeline's
//!   stages, durable-KV health transitions), exported as Chrome trace-event
//!   JSON for Perfetto. Disabled (the default), every probe costs one
//!   relaxed atomic load; enabled, probes stay allocation-free.
//! * [`metrics`] — always-on counters, gauges and log₂ histograms with a
//!   dependency-free Prometheus-style text exposition.
//! * [`LatencyHistogram`] — the log₂ histogram shared by the harness, the
//!   metrics registry and the bench reporter (promoted here from
//!   `workloads::harness`).
//!
//! `txobs` sits at the bottom of the workspace dependency graph: it depends
//! on nothing so that every other crate — runtimes, WAL, durable KV, the
//! test harness — can emit into it.

#![warn(missing_docs)]

mod histogram;
pub mod metrics;
pub mod trace;

pub use histogram::{LatencyHistogram, LATENCY_BUCKETS};
pub use trace::{
    dropped_events, dump_to_stderr, label_current_thread, set_tracing, tracing_enabled,
    write_chrome_trace, EventKind,
};

/// Traces the start of a transaction attempt (one event per attempt,
/// retries included).
#[inline]
pub fn tx_begin() {
    trace::trace(EventKind::TxBegin, 0);
}

/// Traces a transaction commit.
#[inline]
pub fn tx_commit() {
    trace::trace(EventKind::TxCommit, 0);
}

/// Traces a transaction abort with its cause code (see [`trace::cause`]).
#[inline]
pub fn tx_abort(cause: u64) {
    trace::trace(EventKind::TxAbort, cause);
}
