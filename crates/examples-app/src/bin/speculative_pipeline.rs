//! Speculative pipelining of *future* transactions.
//!
//! TLSTM can start executing the tasks of a user-thread's next transactions
//! while the current one is still active (§1 of the paper). This example
//! submits a whole batch of dependent transactions at once — each appends to a
//! transactional log — and shows that (a) program order is preserved exactly
//! and (b) the batch completes faster than strictly serial submission when the
//! transactions contain exploitable parallelism.
//!
//! The serial half runs through the portable [`TxSession`] API; the pipelined
//! half uses TLSTM's inherent batch-submission interface, which is the one
//! capability that deliberately stays *outside* the runtime-agnostic trait
//! (cross-transaction speculation has no meaning on non-speculative runtimes).
//!
//! ```text
//! cargo run -p tlstm-examples --release --bin speculative_pipeline
//! ```

use std::time::Instant;

use tlstm::{task, TaskCtx, TlstmRuntime, TxnSpec};
use txmem::{Abort, TxConfig, TxMem, TxRuntime, TxSession};

const BATCH: u64 = 200;
const WORK_PER_TASK: u64 = 400;

fn busy_reads<M: TxMem + ?Sized>(mem: &mut M, base: txmem::WordAddr, n: u64) -> Result<u64, Abort> {
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_add(mem.read(base.offset(i % 64))?);
    }
    Ok(acc)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runtime = TlstmRuntime::new(TxConfig {
        spec_depth: 2,
        ..TxConfig::default()
    });
    let log = runtime.heap().alloc(BATCH)?;
    let cursor = runtime.heap().alloc(1)?;
    let scratch = runtime.heap().alloc(64)?;

    // Serial submission through the portable session API: one transaction at
    // a time (no pipelining across transactions — the speculative depth still
    // parallelises the two tasks *inside* each transaction).
    let mut session = runtime.session();
    let started = Instant::now();
    for id in 0..BATCH {
        // Task 1: CPU/read-heavy prologue (independent work, parallelisable).
        let mut prologue =
            |mem: &mut dyn TxMem| busy_reads(mem, scratch, WORK_PER_TASK).map(|_| ());
        // Task 2: appends the transaction id to the log (carries the true
        // data dependency between transactions).
        let mut append = |mem: &mut dyn TxMem| -> Result<(), Abort> {
            let pos = mem.read(cursor)?;
            mem.write(log.offset(pos), id)?;
            mem.write(cursor, pos + 1)?;
            Ok(())
        };
        session.run_tasks(&mut [&mut prologue, &mut append]);
    }
    let serial = started.elapsed();
    drop(session);
    runtime.heap().store_committed(cursor, 0);

    // Pipelined submission: the whole batch is handed to the runtime at once
    // via TLSTM's inherent interface, so tasks of future transactions run
    // speculatively while earlier transactions are still committing.
    let make_txn = |id: u64| {
        let prologue =
            task(move |ctx: &mut TaskCtx<'_>| busy_reads(ctx, scratch, WORK_PER_TASK).map(|_| ()));
        let append = task(move |ctx: &mut TaskCtx<'_>| {
            let pos = ctx.read(cursor)?;
            ctx.write(log.offset(pos), id)?;
            ctx.write(cursor, pos + 1)?;
            Ok(())
        });
        TxnSpec::new(vec![prologue, append])
    };
    let uthread = runtime.register_uthread(4);
    let started = Instant::now();
    let batch: Vec<TxnSpec> = (0..BATCH).map(make_txn).collect();
    uthread.execute(batch);
    let pipelined = started.elapsed();

    // Program order is preserved: the log lists the ids in submission order.
    for i in 0..BATCH {
        assert_eq!(runtime.heap().load_committed(log.offset(i)), i);
    }
    println!("transactions                  : {BATCH}");
    println!(
        "serial submission             : {:>8.1} ms",
        serial.as_secs_f64() * 1e3
    );
    println!(
        "pipelined (speculative) batch : {:>8.1} ms",
        pipelined.as_secs_f64() * 1e3
    );
    println!(
        "pipelining speed-up           : {:>8.2}x",
        serial.as_secs_f64() / pipelined.as_secs_f64()
    );
    println!("--- runtime statistics ---\n{}", runtime.stats());
    Ok(())
}
