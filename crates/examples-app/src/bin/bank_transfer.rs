//! Concurrent bank-account transfers on both runtimes.
//!
//! Several user-threads transfer money between random accounts; the total
//! balance must be conserved no matter how many conflicts and rollbacks
//! happen. The example prints throughput and the abort breakdown for the
//! SwissTM baseline and for TLSTM with 2-task transactions (each transfer is
//! split into a withdraw task and a deposit task that communicates through a
//! speculatively-written scratch word).
//!
//! ```text
//! cargo run -p tlstm-examples --release --bin bank_transfer
//! ```

use std::sync::Arc;
use std::time::Instant;

use swisstm::SwisstmRuntime;
use tlstm::{task, TaskCtx, TlstmRuntime, TxnSpec};
use txmem::{TxConfig, TxMem, WordAddr};

const ACCOUNTS: u64 = 64;
const INITIAL_BALANCE: u64 = 1_000;
const TRANSFERS_PER_THREAD: u64 = 2_000;
const THREADS: usize = 4;

fn pick_accounts(seed: &mut u64) -> (u64, u64) {
    // xorshift* — deterministic and cheap.
    let mut next = || {
        *seed ^= *seed >> 12;
        *seed ^= *seed << 25;
        *seed ^= *seed >> 27;
        seed.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let from = next() % ACCOUNTS;
    let mut to = next() % ACCOUNTS;
    if to == from {
        to = (to + 1) % ACCOUNTS;
    }
    (from, to)
}

fn total(heap: &txmem::TxHeap, base: WordAddr) -> u64 {
    (0..ACCOUNTS)
        .map(|i| heap.load_committed(base.offset(i)))
        .sum()
}

fn report(label: &str, transfers: u64, elapsed: std::time::Duration, grand_total: u64) {
    println!("== {label} ==");
    println!(
        "{transfers} transfers in {:.1} ms ({:.0} transfers/s)",
        elapsed.as_secs_f64() * 1e3,
        transfers as f64 / elapsed.as_secs_f64()
    );
    println!(
        "total balance: {grand_total} (expected {})",
        ACCOUNTS * INITIAL_BALANCE
    );
    assert_eq!(grand_total, ACCOUNTS * INITIAL_BALANCE);
}

fn run_swisstm() {
    let runtime = SwisstmRuntime::new(TxConfig::default());
    let accounts = runtime.heap().alloc(ACCOUNTS).unwrap();
    for i in 0..ACCOUNTS {
        runtime
            .heap()
            .store_committed(accounts.offset(i), INITIAL_BALANCE);
    }
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let runtime = Arc::clone(&runtime);
            scope.spawn(move || {
                let mut thread = runtime.register_thread();
                let mut seed = 0x1234_5678 + t as u64;
                for _ in 0..TRANSFERS_PER_THREAD {
                    let (from, to) = pick_accounts(&mut seed);
                    thread.atomic(|tx| {
                        let f = tx.read(accounts.offset(from))?;
                        if f > 0 {
                            let amount = 1 + f % 10;
                            let bal = tx.read(accounts.offset(to))?;
                            tx.write(accounts.offset(from), f - amount)?;
                            tx.write(accounts.offset(to), bal + amount)?;
                        }
                        Ok(())
                    });
                }
            });
        }
    });
    report(
        "SwissTM",
        THREADS as u64 * TRANSFERS_PER_THREAD,
        started.elapsed(),
        total(runtime.heap(), accounts),
    );
    println!("{}\n", runtime.stats());
}

fn run_tlstm() {
    let runtime = TlstmRuntime::new(TxConfig::default());
    let accounts = runtime.heap().alloc(ACCOUNTS).unwrap();
    for i in 0..ACCOUNTS {
        runtime
            .heap()
            .store_committed(accounts.offset(i), INITIAL_BALANCE);
    }
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let runtime = Arc::clone(&runtime);
            scope.spawn(move || {
                let uthread = runtime.register_uthread(2);
                let mut seed = 0x1234_5678 + t as u64;
                // A scratch word per user-thread carries the withdrawn amount
                // from the first task to the second, speculatively.
                let scratch = runtime.heap().alloc(1).unwrap();
                for _ in 0..TRANSFERS_PER_THREAD {
                    let (from, to) = pick_accounts(&mut seed);
                    let withdraw = task(move |ctx: &mut TaskCtx<'_>| {
                        let f = ctx.read(accounts.offset(from))?;
                        let amount = if f > 0 { 1 + f % 10 } else { 0 };
                        ctx.write(accounts.offset(from), f - amount)?;
                        ctx.write(scratch, amount)?;
                        Ok(())
                    });
                    let deposit = task(move |ctx: &mut TaskCtx<'_>| {
                        // Reads the speculative value written by the withdraw
                        // task of the same user-transaction.
                        let amount = ctx.read(scratch)?;
                        let bal = ctx.read(accounts.offset(to))?;
                        ctx.write(accounts.offset(to), bal + amount)?;
                        Ok(())
                    });
                    uthread.execute(vec![TxnSpec::new(vec![withdraw, deposit])]);
                }
            });
        }
    });
    report(
        "TLSTM (2 tasks per transfer)",
        THREADS as u64 * TRANSFERS_PER_THREAD,
        started.elapsed(),
        total(runtime.heap(), accounts),
    );
    println!("{}", runtime.stats());
}

fn main() {
    run_swisstm();
    run_tlstm();
}
