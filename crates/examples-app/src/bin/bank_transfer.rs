//! Concurrent bank-account transfers on every registered runtime.
//!
//! Several user-threads transfer money between random accounts; the total
//! balance must be conserved no matter how many conflicts and rollbacks
//! happen. One generic driver runs unchanged on the SwissTM baseline, on
//! TLSTM (where each transfer is split into a withdraw task and a deposit
//! task that communicate through a speculatively-written scratch word), and
//! on the sequential `seqref` reference runtime.
//!
//! ```text
//! cargo run -p tlstm-examples --release --bin bank_transfer
//! ```

use std::sync::Arc;
use std::time::Instant;

use swisstm::SwisstmRuntime;
use tlstm::TlstmRuntime;
use txmem::{Abort, SeqRefRuntime, TxConfig, TxMem, TxRuntime, TxSession, WordAddr};

const ACCOUNTS: u64 = 64;
const INITIAL_BALANCE: u64 = 1_000;
const TRANSFERS_PER_THREAD: u64 = 2_000;
const THREADS: usize = 4;

fn pick_accounts(seed: &mut u64) -> (u64, u64) {
    // xorshift* — deterministic and cheap.
    let mut next = || {
        *seed ^= *seed >> 12;
        *seed ^= *seed << 25;
        *seed ^= *seed >> 27;
        seed.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let from = next() % ACCOUNTS;
    let mut to = next() % ACCOUNTS;
    if to == from {
        to = (to + 1) % ACCOUNTS;
    }
    (from, to)
}

fn total(heap: &txmem::TxHeap, base: WordAddr) -> u64 {
    (0..ACCOUNTS)
        .map(|i| heap.load_committed(base.offset(i)))
        .sum()
}

fn report(label: &str, transfers: u64, elapsed: std::time::Duration, grand_total: u64) {
    println!("== {label} ==");
    println!(
        "{transfers} transfers in {:.1} ms ({:.0} transfers/s)",
        elapsed.as_secs_f64() * 1e3,
        transfers as f64 / elapsed.as_secs_f64()
    );
    println!(
        "total balance: {grand_total} (expected {})",
        ACCOUNTS * INITIAL_BALANCE
    );
    assert_eq!(grand_total, ACCOUNTS * INITIAL_BALANCE);
}

/// One transfer as a 2-task speculative user-transaction: the withdraw task
/// parks the amount in a per-thread scratch word, the deposit task reads it
/// back speculatively.
fn transfer_tasks<S: TxSession>(
    session: &mut S,
    accounts: WordAddr,
    scratch: WordAddr,
    from: u64,
    to: u64,
) {
    let mut withdraw = |mem: &mut dyn TxMem| -> Result<(), Abort> {
        let f = mem.read(accounts.offset(from))?;
        let amount = if f > 0 { 1 + f % 10 } else { 0 };
        mem.write(accounts.offset(from), f - amount)?;
        mem.write(scratch, amount)?;
        Ok(())
    };
    let mut deposit = |mem: &mut dyn TxMem| -> Result<(), Abort> {
        // Reads the speculative value written by the withdraw task of the
        // same user-transaction.
        let amount = mem.read(scratch)?;
        let bal = mem.read(accounts.offset(to))?;
        mem.write(accounts.offset(to), bal + amount)?;
        Ok(())
    };
    session.run_tasks(&mut [&mut withdraw, &mut deposit]);
}

/// One transfer as a single flat transaction (non-speculative runtimes).
fn transfer_flat<S: TxSession>(session: &mut S, accounts: WordAddr, from: u64, to: u64) {
    session.run(|mem| {
        let f = mem.read(accounts.offset(from))?;
        if f > 0 {
            let amount = 1 + f % 10;
            let bal = mem.read(accounts.offset(to))?;
            mem.write(accounts.offset(from), f - amount)?;
            mem.write(accounts.offset(to), bal + amount)?;
        }
        Ok(())
    });
}

/// The whole benchmark, generic over the runtime: the same driver code runs
/// on SwissTM, TLSTM and the sequential reference.
fn run<R: TxRuntime>() {
    let runtime = R::new(TxConfig {
        spec_depth: 2,
        ..TxConfig::default()
    });
    let accounts = runtime.heap().alloc(ACCOUNTS).unwrap();
    for i in 0..ACCOUNTS {
        runtime
            .heap()
            .store_committed(accounts.offset(i), INITIAL_BALANCE);
    }
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let runtime = Arc::clone(&runtime);
            scope.spawn(move || {
                let mut session = runtime.session();
                let mut seed = 0x1234_5678 + t as u64;
                // A scratch word per user-thread carries the withdrawn amount
                // from the first task to the second on speculative runtimes.
                let scratch = runtime.heap().alloc(1).unwrap();
                for _ in 0..TRANSFERS_PER_THREAD {
                    let (from, to) = pick_accounts(&mut seed);
                    if R::SPECULATIVE {
                        transfer_tasks(&mut session, accounts, scratch, from, to);
                    } else {
                        transfer_flat(&mut session, accounts, from, to);
                    }
                }
            });
        }
    });
    let label = if R::SPECULATIVE {
        format!("{} (2 tasks per transfer)", R::LABEL)
    } else {
        R::LABEL.to_string()
    };
    report(
        &label,
        THREADS as u64 * TRANSFERS_PER_THREAD,
        started.elapsed(),
        total(runtime.heap(), accounts),
    );
    println!("{}\n", runtime.stats());
}

fn main() {
    run::<SwisstmRuntime>();
    run::<TlstmRuntime>();
    run::<SeqRefRuntime>();
}
