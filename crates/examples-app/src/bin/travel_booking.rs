//! Travel booking demo: drives the Vacation reservation system (the
//! application behind Figure 1b of the paper) with speculatively decomposed
//! client transactions and prints the resulting system state and runtime
//! statistics.
//!
//! ```text
//! cargo run -p tlstm-examples --release --bin travel_booking
//! ```

use std::sync::Arc;

use tlstm::TlstmRuntime;
use tlstm_workloads::harness::{chunk_ranges, DetRng};
use tlstm_workloads::vacation::{execute_ops, generate_txn, Manager, VacationParams};
use txmem::{run_boxed_tasks, BoxedTaskBody, TxMem, TxRuntime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = VacationParams::low_contention();
    let runtime = TlstmRuntime::new(txmem::TxConfig {
        spec_depth: params.tasks_per_txn,
        ..txmem::TxConfig::default()
    });
    let manager = Manager::populate(&mut runtime.direct(), &params)
        .expect("populating the reservation system cannot abort");

    // Three concurrent "application servers" (user-threads), each serving a
    // stream of clients; every client transaction bundles 8 reservation
    // operations and is split into two speculative tasks of 4 operations.
    let clients_per_server = 200;
    std::thread::scope(|scope| {
        for server in 0..3u64 {
            let runtime = Arc::clone(&runtime);
            let params = params.clone();
            scope.spawn(move || {
                let mut session = runtime.session();
                let mut rng = DetRng::new(0xB00C + server);
                for _ in 0..clients_per_server {
                    let ops = generate_txn(&mut rng, &params);
                    let mut bodies: Vec<BoxedTaskBody<'_>> =
                        chunk_ranges(ops.len(), params.tasks_per_txn)
                            .into_iter()
                            .map(|(lo, hi)| {
                                let ops = &ops[lo..hi];
                                let manager = &manager;
                                Box::new(move |mem: &mut dyn TxMem| execute_ops(mem, manager, ops))
                                    as BoxedTaskBody<'_>
                            })
                            .collect();
                    run_boxed_tasks(&mut session, &mut bodies);
                }
            });
        }
    });

    let mut mem = runtime.direct();
    let used = manager
        .total_used(&mut mem)
        .expect("direct reads cannot abort");
    let held = manager
        .total_reservations(&mut mem)
        .expect("direct reads cannot abort");
    println!("reserved units across all tables : {used}");
    println!("reservations held by customers   : {held}");
    assert_eq!(used, held, "reservation book-keeping must balance");
    println!("--- runtime statistics ---\n{}", runtime.stats());
    Ok(())
}
