//! Travel booking demo: drives the Vacation reservation system (the
//! application behind Figure 1b of the paper) with speculatively decomposed
//! client transactions and prints the resulting system state and runtime
//! statistics.
//!
//! ```text
//! cargo run -p tlstm-examples --release --bin travel_booking
//! ```

use std::sync::Arc;

use tlstm::{task, TaskCtx, TlstmRuntime, TxnSpec};
use tlstm_workloads::harness::DetRng;
use tlstm_workloads::vacation::{execute_ops, generate_txn, Manager, VacationParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = VacationParams::low_contention();
    let runtime = TlstmRuntime::new(txmem::TxConfig::default());
    let manager = Manager::populate(&mut runtime.direct(), &params)
        .expect("populating the reservation system cannot abort");

    // Three concurrent "application servers" (user-threads), each serving a
    // stream of clients; every client transaction bundles 8 reservation
    // operations and is split into two speculative tasks of 4 operations.
    let clients_per_server = 200;
    std::thread::scope(|scope| {
        for server in 0..3u64 {
            let runtime = Arc::clone(&runtime);
            let params = params.clone();
            scope.spawn(move || {
                let uthread = runtime.register_uthread(params.tasks_per_txn);
                let mut rng = DetRng::new(0xB00C + server);
                for _ in 0..clients_per_server {
                    let ops = Arc::new(generate_txn(&mut rng, &params));
                    let tasks = params.tasks_per_txn;
                    let chunk = ops.len().div_ceil(tasks);
                    let bodies = (0..tasks)
                        .map(|t| {
                            let ops = Arc::clone(&ops);
                            let lo = (t * chunk).min(ops.len());
                            let hi = ((t + 1) * chunk).min(ops.len());
                            task(move |ctx: &mut TaskCtx<'_>| {
                                execute_ops(ctx, &manager, &ops[lo..hi])
                            })
                        })
                        .collect();
                    uthread.execute(vec![TxnSpec::new(bodies)]);
                }
            });
        }
    });

    let mut mem = runtime.direct();
    let used = manager
        .total_used(&mut mem)
        .expect("direct reads cannot abort");
    let held = manager
        .total_reservations(&mut mem)
        .expect("direct reads cannot abort");
    println!("reserved units across all tables : {used}");
    println!("reservations held by customers   : {held}");
    assert_eq!(used, held, "reservation book-keeping must balance");
    println!("--- runtime statistics ---\n{}", runtime.stats());
    Ok(())
}
