//! Quickstart: one user-thread, one user-transaction, two speculative tasks.
//!
//! ```text
//! cargo run -p tlstm-examples --release --bin quickstart
//! ```

use tlstm::{task, TaskCtx, TlstmRuntime, TxnSpec};
use txmem::{TxConfig, TxMem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A runtime owns the transactional heap, the global lock table and the
    // commit clock.
    let runtime = TlstmRuntime::new(TxConfig::default());

    // Allocate two shared words non-transactionally (setup phase).
    let account_a = runtime.heap().alloc(1)?;
    let account_b = runtime.heap().alloc(1)?;
    runtime.heap().store_committed(account_a, 100);
    runtime.heap().store_committed(account_b, 0);

    // One user-thread with speculative depth 2: up to two of its tasks run in
    // parallel, yet behave exactly as if they ran one after the other.
    let uthread = runtime.register_uthread(2);

    // A user-transaction decomposed into two tasks: the first withdraws from
    // account A, the second deposits into account B *reading the speculative
    // state left by the first*.
    let withdraw = task(move |ctx: &mut TaskCtx<'_>| {
        let a = ctx.read(account_a)?;
        ctx.write(account_a, a - 40)?;
        Ok(())
    });
    let deposit = task(move |ctx: &mut TaskCtx<'_>| {
        let a = ctx.read(account_a)?; // sees 60, the speculative value
        let b = ctx.read(account_b)?;
        ctx.write(account_b, b + (100 - a))?;
        Ok(())
    });
    let outcome = uthread.execute(vec![TxnSpec::new(vec![withdraw, deposit])]);

    println!("transaction committed: {:?}", outcome[0]);
    println!(
        "account A = {}, account B = {}",
        runtime.heap().load_committed(account_a),
        runtime.heap().load_committed(account_b)
    );
    println!("--- runtime statistics ---\n{}", runtime.stats());
    assert_eq!(runtime.heap().load_committed(account_a), 60);
    assert_eq!(runtime.heap().load_committed(account_b), 40);
    Ok(())
}
