//! Quickstart: one user-thread, one user-transaction, two speculative tasks —
//! written against the runtime-agnostic [`TxRuntime`]/[`TxSession`] API.
//!
//! ```text
//! cargo run -p tlstm-examples --release --bin quickstart
//! ```

use tlstm::TlstmRuntime;
use txmem::{Abort, TxConfig, TxMem, TxRuntime, TxSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A runtime owns the transactional heap, the global lock table and the
    // commit clock. `spec_depth` bounds how many tasks of one user-thread
    // may run speculatively in parallel.
    let runtime = TlstmRuntime::new(TxConfig {
        spec_depth: 2,
        ..TxConfig::default()
    });

    // Allocate two shared words non-transactionally (setup phase).
    let account_a = runtime.heap().alloc(1)?;
    let account_b = runtime.heap().alloc(1)?;
    runtime.heap().store_committed(account_a, 100);
    runtime.heap().store_committed(account_b, 0);

    // A per-thread session is the handle transactions run through. On TLSTM
    // it registers a user-thread; other runtimes (SwissTM, seqref) hand out
    // sessions from the same method — the code below runs on any of them.
    let mut session = runtime.session();

    // A user-transaction decomposed into two tasks: the first withdraws from
    // account A, the second deposits into account B *reading the speculative
    // state left by the first*. On sequential runtimes the same bodies run
    // in order inside one transaction.
    let mut withdraw = |mem: &mut dyn TxMem| -> Result<(), Abort> {
        let a = mem.read(account_a)?;
        mem.write(account_a, a - 40)?;
        Ok(())
    };
    let mut deposit = |mem: &mut dyn TxMem| -> Result<(), Abort> {
        let a = mem.read(account_a)?; // sees 60, the speculative value
        let b = mem.read(account_b)?;
        mem.write(account_b, b + (100 - a))?;
        Ok(())
    };
    session.run_tasks(&mut [&mut withdraw, &mut deposit]);

    println!(
        "account A = {}, account B = {}",
        runtime.heap().load_committed(account_a),
        runtime.heap().load_committed(account_b)
    );
    println!("--- runtime statistics ---\n{}", runtime.stats());
    assert_eq!(runtime.heap().load_committed(account_a), 60);
    assert_eq!(runtime.heap().load_committed(account_b), 40);
    Ok(())
}
