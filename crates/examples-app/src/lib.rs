//! Runnable example applications for the TLSTM reproduction.
//!
//! The examples are ordinary binaries (see `src/bin/`):
//!
//! * `quickstart` — the smallest possible TLSTM program: one user-thread, one
//!   user-transaction split into two speculative tasks.
//! * `bank_transfer` — concurrent money transfers on both runtimes, checking
//!   the conservation-of-money invariant and reporting abort statistics.
//! * `travel_booking` — drives the Vacation reservation system (the paper's
//!   Figure 1b application) with speculatively decomposed client transactions.
//! * `speculative_pipeline` — demonstrates speculative execution of *future*
//!   transactions within one user-thread and the program-order guarantee.
//!
//! Run them with `cargo run -p tlstm-examples --release --bin <name>`.
