//! # txnet — the network serving front-end
//!
//! Turns the in-process [`txkv`] store into a middleware something can call
//! over a wire: a pipelined, length-prefixed binary protocol served by a
//! hand-rolled thread-per-core nonblocking TCP server, generic over any
//! [`txmem::TxRuntime`].
//!
//! ```text
//!   clients ──TCP──▶ serving thread ──┐
//!   clients ──TCP──▶ serving thread ──┤   coalesced drain:
//!                      poll loop      │   one KvSession::batch
//!                      (accept/read/  ├─▶ (durable: one LSN, one
//!                       decode/flush) │    WAL ticket) per iteration
//!   clients ──TCP──▶ serving thread ──┘
//! ```
//!
//! Three pieces:
//!
//! * [`frame`] — the wire framing: `magic "TXNT" | len | request-id | crc |
//!   payload`, reusing [`txlog::frame`]'s CRC idiom (the CRC covers
//!   `len | request-id | payload` via the shared [`txlog::crc32_parts`]), so
//!   torn and bit-flipped frames are detected exactly like torn WAL tails.
//! * [`proto`] — request/reply payload codecs mirroring [`txkv::ops`]
//!   one-to-one; decoders never panic on arbitrary bytes and classify every
//!   violation as frame-level (close) or payload-level (typed error reply on
//!   the live connection) via [`ProtocolError::is_frame_level`].
//! * [`server`] / [`client`] — the nonblocking poll-loop server whose
//!   serving threads **coalesce** every request decoded in one poll
//!   iteration (across all of the thread's connections) into a single
//!   [`txkv::KvSession::batch_with_replies`] call — N clients share one STM
//!   commit and, on the durable path, one group-commit fsync ticket — and
//!   the blocking pipelined client the open-loop load generator drives.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod error;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::NetClient;
pub use error::{NetError, ProtocolError, RemoteError};
pub use frame::{
    decode_frame, encode_frame, encode_frame_into, FrameDecode, DEFAULT_MAX_FRAME_LEN,
    FRAME_HEADER_LEN, FRAME_MAGIC,
};
pub use proto::{
    decode_reply, decode_request, encode_err_reply, encode_ok_reply, encode_request, ERR_WAL,
    PROTO_VERSION,
};
pub use server::{NetServer, NetServerConfig};
