//! Request and reply payload codecs.
//!
//! A request payload is one client batch — a list of [`KvOp`]s executed as
//! one atomic transaction — and a reply payload is either the matching
//! [`KvReply`] list or a typed error. The operation vocabulary mirrors
//! [`txkv::ops`] one-to-one, so the protocol adds framing and nothing else;
//! the encoding style (version byte, tag bytes, `u32`-prefixed word lists,
//! the defensive [`Cursor`]) follows the redo-record codec in
//! `txkv::durable`.
//!
//! Decoders never panic on arbitrary bytes: every structural violation is a
//! typed payload-level [`ProtocolError`], which the server answers on the
//! still-live connection (the frame around the payload was CRC-valid, so
//! the request-id is trustworthy).

use txkv::{KvOp, KvReply};
use txlog::codec::Cursor;

use crate::error::{ProtocolError, RemoteError};

/// Version byte leading every request and reply payload.
pub const PROTO_VERSION: u8 = 1;

/// Error-reply code for a durability (WAL) failure — the request was
/// well-formed but could not be made durable. Protocol failures use
/// [`ProtocolError::wire_code`] values (1..=7) instead.
pub const ERR_WAL: u8 = 32;

const OP_GET: u8 = 1;
const OP_PUT: u8 = 2;
const OP_DELETE: u8 = 3;
const OP_CAS: u8 = 4;
const OP_SCAN: u8 = 5;

const REPLY_VALUE: u8 = 1;
const REPLY_INSERTED: u8 = 2;
const REPLY_REMOVED: u8 = 3;
const REPLY_SWAPPED: u8 = 4;
const REPLY_SCAN: u8 = 5;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

fn put_words(out: &mut Vec<u8>, words: &[u64]) {
    out.extend_from_slice(&(words.len() as u32).to_le_bytes());
    for &word in words {
        out.extend_from_slice(&word.to_le_bytes());
    }
}

/// Encodes one request batch.
pub fn encode_request(ops: &[KvOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + ops.len() * 16);
    out.push(PROTO_VERSION);
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            KvOp::Get { key } => {
                out.push(OP_GET);
                out.extend_from_slice(&key.to_le_bytes());
            }
            KvOp::Put { key, value } => {
                out.push(OP_PUT);
                out.extend_from_slice(&key.to_le_bytes());
                put_words(&mut out, value);
            }
            KvOp::Delete { key } => {
                out.push(OP_DELETE);
                out.extend_from_slice(&key.to_le_bytes());
            }
            KvOp::Cas { key, expected, new } => {
                out.push(OP_CAS);
                out.extend_from_slice(&key.to_le_bytes());
                put_words(&mut out, expected);
                put_words(&mut out, new);
            }
            KvOp::Scan { lo, hi, limit } => {
                out.push(OP_SCAN);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
                out.extend_from_slice(&limit.to_le_bytes());
            }
        }
    }
    out
}

/// Decodes one request batch.
///
/// # Errors
///
/// All returned errors are payload-level (the connection stays live).
pub fn decode_request(payload: &[u8]) -> Result<Vec<KvOp>, ProtocolError> {
    let mut cur = Cursor::new(payload);
    match cur.u8() {
        Some(PROTO_VERSION) => {}
        Some(other) => return Err(ProtocolError::BadVersion(other)),
        None => return Err(ProtocolError::Malformed),
    }
    let n_ops = cur.u32().ok_or(ProtocolError::Malformed)? as usize;
    if n_ops > payload.len() {
        return Err(ProtocolError::Malformed);
    }
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let op = match cur.u8().ok_or(ProtocolError::Malformed)? {
            OP_GET => KvOp::Get {
                key: cur.u64().ok_or(ProtocolError::Malformed)?,
            },
            OP_PUT => KvOp::Put {
                key: cur.u64().ok_or(ProtocolError::Malformed)?,
                value: cur.words().ok_or(ProtocolError::Malformed)?,
            },
            OP_DELETE => KvOp::Delete {
                key: cur.u64().ok_or(ProtocolError::Malformed)?,
            },
            OP_CAS => KvOp::Cas {
                key: cur.u64().ok_or(ProtocolError::Malformed)?,
                expected: cur.words().ok_or(ProtocolError::Malformed)?,
                new: cur.words().ok_or(ProtocolError::Malformed)?,
            },
            OP_SCAN => KvOp::Scan {
                lo: cur.u64().ok_or(ProtocolError::Malformed)?,
                hi: cur.u64().ok_or(ProtocolError::Malformed)?,
                limit: cur.u64().ok_or(ProtocolError::Malformed)?,
            },
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        ops.push(op);
    }
    if !cur.done() {
        return Err(ProtocolError::Malformed);
    }
    Ok(ops)
}

/// Encodes a success reply: one [`KvReply`] per request operation.
pub fn encode_ok_reply(replies: &[KvReply]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + replies.len() * 8);
    out.push(PROTO_VERSION);
    out.push(STATUS_OK);
    out.extend_from_slice(&(replies.len() as u32).to_le_bytes());
    for reply in replies {
        match reply {
            KvReply::Value(value) => {
                out.push(REPLY_VALUE);
                match value {
                    None => out.push(0),
                    Some(words) => {
                        out.push(1);
                        put_words(&mut out, words);
                    }
                }
            }
            KvReply::Inserted(fresh) => {
                out.push(REPLY_INSERTED);
                out.push(u8::from(*fresh));
            }
            KvReply::Removed(existed) => {
                out.push(REPLY_REMOVED);
                out.push(u8::from(*existed));
            }
            KvReply::Swapped(swapped) => {
                out.push(REPLY_SWAPPED);
                out.push(u8::from(*swapped));
            }
            KvReply::Scan(hits) => {
                out.push(REPLY_SCAN);
                out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
                for (key, checksum) in hits {
                    out.extend_from_slice(&key.to_le_bytes());
                    out.extend_from_slice(&checksum.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Encodes an error reply carrying `code` and a human-readable message.
pub fn encode_err_reply(code: u8, message: &str) -> Vec<u8> {
    let bytes = message.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    let mut out = Vec::with_capacity(5 + len);
    out.push(PROTO_VERSION);
    out.push(STATUS_ERR);
    out.push(code);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
    out
}

/// Decodes a reply payload into either the reply list or the server's typed
/// error.
///
/// # Errors
///
/// [`ProtocolError`] when the payload itself violates the wire format.
pub fn decode_reply(payload: &[u8]) -> Result<Result<Vec<KvReply>, RemoteError>, ProtocolError> {
    let mut cur = Cursor::new(payload);
    match cur.u8() {
        Some(PROTO_VERSION) => {}
        Some(other) => return Err(ProtocolError::BadVersion(other)),
        None => return Err(ProtocolError::Malformed),
    }
    match cur.u8().ok_or(ProtocolError::Malformed)? {
        STATUS_OK => {}
        STATUS_ERR => {
            let code = cur.u8().ok_or(ProtocolError::Malformed)?;
            let len_bytes = cur.take(2).ok_or(ProtocolError::Malformed)?;
            let len = u16::from_le_bytes(len_bytes.try_into().expect("2-byte slice"));
            let bytes = cur.take(len as usize).ok_or(ProtocolError::Malformed)?;
            if !cur.done() {
                return Err(ProtocolError::Malformed);
            }
            let message = String::from_utf8_lossy(bytes).into_owned();
            return Ok(Err(RemoteError { code, message }));
        }
        other => return Err(ProtocolError::UnknownTag(other)),
    }
    let n_replies = cur.u32().ok_or(ProtocolError::Malformed)? as usize;
    if n_replies > payload.len() {
        return Err(ProtocolError::Malformed);
    }
    let mut replies = Vec::with_capacity(n_replies);
    for _ in 0..n_replies {
        let reply = match cur.u8().ok_or(ProtocolError::Malformed)? {
            REPLY_VALUE => match cur.u8().ok_or(ProtocolError::Malformed)? {
                0 => KvReply::Value(None),
                1 => KvReply::Value(Some(cur.words().ok_or(ProtocolError::Malformed)?)),
                other => return Err(ProtocolError::UnknownTag(other)),
            },
            REPLY_INSERTED => KvReply::Inserted(cur.u8().ok_or(ProtocolError::Malformed)? != 0),
            REPLY_REMOVED => KvReply::Removed(cur.u8().ok_or(ProtocolError::Malformed)? != 0),
            REPLY_SWAPPED => KvReply::Swapped(cur.u8().ok_or(ProtocolError::Malformed)? != 0),
            REPLY_SCAN => {
                let n_hits = cur.u32().ok_or(ProtocolError::Malformed)? as usize;
                if n_hits > payload.len() {
                    return Err(ProtocolError::Malformed);
                }
                let mut hits = Vec::with_capacity(n_hits);
                for _ in 0..n_hits {
                    let key = cur.u64().ok_or(ProtocolError::Malformed)?;
                    let checksum = cur.u64().ok_or(ProtocolError::Malformed)?;
                    hits.push((key, checksum));
                }
                KvReply::Scan(hits)
            }
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        replies.push(reply);
    }
    if !cur.done() {
        return Err(ProtocolError::Malformed);
    }
    Ok(Ok(replies))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<KvOp> {
        vec![
            KvOp::Get { key: 7 },
            KvOp::Put {
                key: 9,
                value: vec![1, 2, 3],
            },
            KvOp::Delete { key: 11 },
            KvOp::Cas {
                key: 13,
                expected: vec![],
                new: vec![u64::MAX],
            },
            KvOp::Scan {
                lo: 0,
                hi: 100,
                limit: 8,
            },
        ]
    }

    fn sample_replies() -> Vec<KvReply> {
        vec![
            KvReply::Value(None),
            KvReply::Value(Some(vec![4, 5])),
            KvReply::Inserted(true),
            KvReply::Removed(false),
            KvReply::Swapped(true),
            KvReply::Scan(vec![(1, 111), (2, 222)]),
        ]
    }

    #[test]
    fn requests_round_trip() {
        let ops = sample_ops();
        assert_eq!(decode_request(&encode_request(&ops)), Ok(ops));
        assert_eq!(decode_request(&encode_request(&[])), Ok(Vec::new()));
    }

    #[test]
    fn replies_round_trip() {
        let replies = sample_replies();
        assert_eq!(
            decode_reply(&encode_ok_reply(&replies)),
            Ok(Ok(replies.clone()))
        );
        assert_eq!(
            decode_reply(&encode_err_reply(ERR_WAL, "log crashed")),
            Ok(Err(RemoteError {
                code: ERR_WAL,
                message: "log crashed".into(),
            }))
        );
    }

    #[test]
    fn every_truncation_of_a_request_is_a_typed_error() {
        let payload = encode_request(&sample_ops());
        for cut in 0..payload.len() {
            let got = decode_request(&payload[..cut]);
            assert!(got.is_err(), "cut at {cut} decoded as {got:?}");
            assert!(!got.unwrap_err().is_frame_level(), "cut at {cut}");
        }
    }

    #[test]
    fn every_truncation_of_a_reply_is_a_typed_error() {
        for payload in [
            encode_ok_reply(&sample_replies()),
            encode_err_reply(3, "boom"),
        ] {
            for cut in 0..payload.len() {
                assert!(
                    decode_reply(&payload[..cut]).is_err(),
                    "cut at {cut} of {payload:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_and_bad_tags_are_rejected() {
        let mut padded = encode_request(&sample_ops());
        padded.push(0);
        assert_eq!(decode_request(&padded), Err(ProtocolError::Malformed));

        let mut wrong_version = encode_request(&sample_ops());
        wrong_version[0] = 9;
        assert_eq!(
            decode_request(&wrong_version),
            Err(ProtocolError::BadVersion(9))
        );

        let mut bad_tag = encode_request(&[KvOp::Get { key: 1 }]);
        bad_tag[5] = 200;
        assert_eq!(
            decode_request(&bad_tag),
            Err(ProtocolError::UnknownTag(200))
        );
    }

    #[test]
    fn corrupt_counts_do_not_allocate_wildly() {
        // A request claiming u32::MAX ops must fail fast, not reserve.
        let mut payload = vec![PROTO_VERSION];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&payload), Err(ProtocolError::Malformed));

        let mut reply = vec![PROTO_VERSION, STATUS_OK];
        reply.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_reply(&reply), Err(ProtocolError::Malformed));
    }

    #[test]
    fn error_messages_are_length_capped() {
        let long = "x".repeat(100_000);
        let payload = encode_err_reply(1, &long);
        let Ok(Err(remote)) = decode_reply(&payload) else {
            panic!("error reply must decode");
        };
        assert_eq!(remote.message.len(), u16::MAX as usize);
    }
}
