//! The typed error vocabulary of the network protocol.
//!
//! Two layers of failure, with different blast radii:
//!
//! * [`ProtocolError`] — a violation of the wire format. Frame-level
//!   violations ([`ProtocolError::is_frame_level`]) mean the byte stream
//!   itself can no longer be trusted (a flipped magic byte leaves no way to
//!   find the next frame boundary), so the server closes the connection
//!   cleanly. Payload-level violations are scoped to one CRC-valid frame:
//!   the request-id is known, so the server answers it with a typed error
//!   reply and the connection stays live.
//! * [`NetError`] — everything a client call can fail with: transport I/O,
//!   a protocol violation it detected locally, or a typed error reply the
//!   server sent back ([`NetError::Remote`]).

use std::fmt;
use std::io;

/// A violation of the wire protocol, detected by either side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The four magic bytes at a frame boundary were wrong — the stream is
    /// desynced beyond recovery.
    BadMagic([u8; 4]),
    /// A frame header claimed a payload longer than the configured maximum
    /// (a corrupt length would otherwise stall the stream waiting for bytes
    /// that never come).
    Oversized(u32),
    /// The frame's CRC did not match its contents.
    BadCrc {
        /// The request-id the corrupt frame claimed (untrustworthy — for
        /// diagnostics only, never for routing a reply).
        claimed_request: u64,
    },
    /// A CRC-valid payload did not decode: wrong protocol version.
    BadVersion(u8),
    /// A CRC-valid payload did not decode: unknown operation or reply tag.
    UnknownTag(u8),
    /// A CRC-valid payload did not decode: it ended mid-field or carried
    /// trailing bytes.
    Malformed,
    /// A reply referenced a request-id this connection never sent (client
    /// side only — the pipelining invariant broke).
    UnexpectedReply(u64),
}

impl ProtocolError {
    /// `true` if the violation invalidates the byte stream itself (the
    /// server must close the connection); `false` if it is scoped to one
    /// well-framed request (the server replies with a typed error and keeps
    /// serving the connection).
    pub fn is_frame_level(&self) -> bool {
        matches!(
            self,
            ProtocolError::BadMagic(_) | ProtocolError::Oversized(_) | ProtocolError::BadCrc { .. }
        )
    }

    /// The wire code carried by error replies (see [`crate::proto`]).
    pub fn wire_code(&self) -> u8 {
        match self {
            ProtocolError::BadMagic(_) => 1,
            ProtocolError::Oversized(_) => 2,
            ProtocolError::BadCrc { .. } => 3,
            ProtocolError::BadVersion(_) => 4,
            ProtocolError::UnknownTag(_) => 5,
            ProtocolError::Malformed => 6,
            ProtocolError::UnexpectedReply(_) => 7,
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic(found) => write!(f, "bad frame magic {found:02X?}"),
            ProtocolError::Oversized(len) => write!(f, "frame payload length {len} over limit"),
            ProtocolError::BadCrc { claimed_request } => {
                write!(f, "frame CRC mismatch (claimed request {claimed_request})")
            }
            ProtocolError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtocolError::UnknownTag(tag) => write!(f, "unknown wire tag {tag}"),
            ProtocolError::Malformed => write!(f, "malformed payload"),
            ProtocolError::UnexpectedReply(id) => write!(f, "reply for unknown request {id}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// An error reply the server sent back for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteError {
    /// The server-assigned error code: [`ProtocolError::wire_code`] values
    /// for request decoding failures, [`crate::proto::ERR_WAL`] for a
    /// durability failure.
    pub code: u8,
    /// Human-readable description from the server.
    pub message: String,
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server error {}: {}", self.code, self.message)
    }
}

impl std::error::Error for RemoteError {}

/// Everything a client-side call can fail with.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (includes the server closing the connection).
    Io(io::Error),
    /// The client detected a protocol violation in the server's stream.
    Protocol(ProtocolError),
    /// The server answered the request with a typed error reply.
    Remote(RemoteError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
            NetError::Remote(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        NetError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_level_violations_are_distinguished_from_payload_level() {
        assert!(ProtocolError::BadMagic(*b"XXXX").is_frame_level());
        assert!(ProtocolError::Oversized(u32::MAX).is_frame_level());
        assert!(ProtocolError::BadCrc { claimed_request: 1 }.is_frame_level());
        assert!(!ProtocolError::BadVersion(9).is_frame_level());
        assert!(!ProtocolError::UnknownTag(200).is_frame_level());
        assert!(!ProtocolError::Malformed.is_frame_level());
    }

    #[test]
    fn wire_codes_are_distinct() {
        let codes = [
            ProtocolError::BadMagic(*b"XXXX").wire_code(),
            ProtocolError::Oversized(0).wire_code(),
            ProtocolError::BadCrc { claimed_request: 0 }.wire_code(),
            ProtocolError::BadVersion(0).wire_code(),
            ProtocolError::UnknownTag(0).wire_code(),
            ProtocolError::Malformed.wire_code(),
            ProtocolError::UnexpectedReply(0).wire_code(),
        ];
        let mut unique = codes.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len());
    }
}
