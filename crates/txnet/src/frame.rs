//! The wire framing: `txlog`'s CRC frame idiom adapted to a byte stream.
//!
//! ```text
//! ┌─────────┬─────────┬──────────┬─────────┬──────────────────┐
//! │ magic   │ len     │ req-id   │ crc32   │ payload          │
//! │ "TXNT"  │ u32 LE  │ u64 LE   │ u32 LE  │ len bytes        │
//! │ 4 bytes │ 4 bytes │ 8 bytes  │ 4 bytes │                  │
//! └─────────┴─────────┴──────────┴─────────┴──────────────────┘
//! ```
//!
//! Identical layout to [`txlog::frame`] with the LSN slot carrying the
//! request-id, and the same validation rule: the CRC covers
//! `len | req-id | payload` (computed with the shared [`txlog::crc32_parts`]
//! streaming fold), so a bit flip anywhere in a frame fails validation, and
//! the magic catches desynced streams before the CRC is even computed.
//!
//! One rule differs from the on-disk scan, because a socket is not a file:
//! an *incomplete* frame is not an error — the decoder reports
//! [`FrameDecode::Incomplete`] and the caller reads more bytes. Only frames
//! that are demonstrably corrupt (bad magic, oversized length claim, CRC
//! mismatch) are [`ProtocolError`]s, and all of them are frame-level: after
//! any of them the stream boundary is untrustworthy and the connection must
//! be closed.

use crate::error::ProtocolError;

/// Frame magic: marks the start of every protocol frame.
pub const FRAME_MAGIC: [u8; 4] = *b"TXNT";

/// Size of the fixed frame header (magic + len + req-id + crc).
pub const FRAME_HEADER_LEN: usize = 20;

/// Default upper bound on a frame's payload length. A corrupt length claim
/// above the limit is rejected immediately instead of stalling the stream
/// waiting for bytes that will never arrive.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;

/// The CRC a frame with this request-id and payload must carry.
fn frame_crc(req_id: u64, payload: &[u8]) -> u32 {
    let len = (payload.len() as u32).to_le_bytes();
    let id = req_id.to_le_bytes();
    txlog::crc32_parts(&[&len, &id, payload])
}

/// Appends one encoded frame for `(req_id, payload)` to `out`.
pub fn encode_frame_into(out: &mut Vec<u8>, req_id: u64, payload: &[u8]) {
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(&frame_crc(req_id, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One encoded frame (convenience over [`encode_frame_into`]).
pub fn encode_frame(req_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    encode_frame_into(&mut out, req_id, payload);
    out
}

/// The outcome of attempting to decode one frame from a stream buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDecode {
    /// A complete, CRC-valid frame. The caller must drop the first
    /// `consumed` bytes of its buffer before the next attempt.
    Frame {
        /// The request-id the frame carries.
        req_id: u64,
        /// The validated payload.
        payload: Vec<u8>,
        /// Total frame size in the buffer (header + payload).
        consumed: usize,
    },
    /// The buffer holds only a prefix of a frame — read more bytes.
    Incomplete,
}

/// Attempts to decode the frame at the start of `buf`.
///
/// Never panics on arbitrary input. Corruption (bad magic, length claim
/// above `max_frame_len`, CRC mismatch) is an error; a mere prefix is
/// [`FrameDecode::Incomplete`].
///
/// # Errors
///
/// All returned [`ProtocolError`]s are frame-level: the stream can no longer
/// be trusted and the connection should be closed.
pub fn decode_frame(buf: &[u8], max_frame_len: u32) -> Result<FrameDecode, ProtocolError> {
    if buf.len() < FRAME_HEADER_LEN {
        // The magic prefix present so far must still match: catching a
        // desync at the first wrong byte beats waiting for a full header
        // that will never parse.
        let seen = buf.len().min(4);
        if buf[..seen] != FRAME_MAGIC[..seen] {
            let mut found = [0u8; 4];
            found[..seen].copy_from_slice(&buf[..seen]);
            return Err(ProtocolError::BadMagic(found));
        }
        return Ok(FrameDecode::Incomplete);
    }
    if buf[..4] != FRAME_MAGIC {
        return Err(ProtocolError::BadMagic(buf[..4].try_into().unwrap()));
    }
    let len = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if len > max_frame_len {
        return Err(ProtocolError::Oversized(len));
    }
    let req_id = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let crc = u32::from_le_bytes(buf[16..20].try_into().unwrap());
    let total = FRAME_HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(FrameDecode::Incomplete);
    }
    let payload = &buf[FRAME_HEADER_LEN..total];
    if frame_crc(req_id, payload) != crc {
        return Err(ProtocolError::BadCrc {
            claimed_request: req_id,
        });
    }
    Ok(FrameDecode::Frame {
        req_id,
        payload: payload.to_vec(),
        consumed: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for (id, payload) in [(0u64, &b""[..]), (7, b"x"), (u64::MAX, b"hello frame")] {
            let buf = encode_frame(id, payload);
            assert_eq!(
                decode_frame(&buf, DEFAULT_MAX_FRAME_LEN),
                Ok(FrameDecode::Frame {
                    req_id: id,
                    payload: payload.to_vec(),
                    consumed: buf.len(),
                })
            );
        }
    }

    #[test]
    fn prefixes_are_incomplete_not_errors() {
        let buf = encode_frame(42, b"some payload");
        for cut in 0..buf.len() {
            assert_eq!(
                decode_frame(&buf[..cut], DEFAULT_MAX_FRAME_LEN),
                Ok(FrameDecode::Incomplete),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected_or_reshapes_the_frame() {
        let frame = encode_frame(3, b"payload!");
        for i in 0..frame.len() {
            for bit in 0..8u8 {
                let mut corrupt = frame.clone();
                corrupt[i] ^= 1 << bit;
                match decode_frame(&corrupt, DEFAULT_MAX_FRAME_LEN) {
                    // Magic / CRC / length violations: typed error.
                    Err(e) => assert!(e.is_frame_level(), "flip {i}.{bit}: {e:?}"),
                    // A flip that *grows* the length claim makes the frame
                    // incomplete — the stream then stalls or the CRC fails
                    // once the claimed bytes arrive; never silent success.
                    Ok(FrameDecode::Incomplete) => {
                        let claimed = u32::from_le_bytes(corrupt[4..8].try_into().unwrap());
                        assert!((4..8).contains(&i), "flip {i}.{bit} claimed {claimed}");
                        assert!(claimed as usize > frame.len() - FRAME_HEADER_LEN);
                    }
                    // A flip that *shrinks* the length claim re-frames the
                    // buffer; the CRC must still catch it.
                    Ok(FrameDecode::Frame { .. }) => {
                        panic!("flip {i}.{bit} produced a valid frame")
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_length_claims_fail_fast() {
        let mut buf = encode_frame(1, b"ok");
        buf[4..8].copy_from_slice(&(DEFAULT_MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(
            decode_frame(&buf, DEFAULT_MAX_FRAME_LEN),
            Err(ProtocolError::Oversized(DEFAULT_MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn desync_is_caught_before_a_full_header_arrives() {
        assert_eq!(
            decode_frame(b"JUNK", DEFAULT_MAX_FRAME_LEN),
            Err(ProtocolError::BadMagic(*b"JUNK"))
        );
        // Even a single wrong byte is enough.
        assert!(matches!(
            decode_frame(b"X", DEFAULT_MAX_FRAME_LEN),
            Err(ProtocolError::BadMagic(_))
        ));
        // A correct partial magic is just an incomplete frame.
        assert_eq!(
            decode_frame(b"TX", DEFAULT_MAX_FRAME_LEN),
            Ok(FrameDecode::Incomplete)
        );
    }

    #[test]
    fn back_to_back_frames_decode_sequentially() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, 1, b"first");
        encode_frame_into(&mut buf, 2, b"second");
        let Ok(FrameDecode::Frame {
            req_id, consumed, ..
        }) = decode_frame(&buf, DEFAULT_MAX_FRAME_LEN)
        else {
            panic!("first frame must decode");
        };
        assert_eq!(req_id, 1);
        let Ok(FrameDecode::Frame {
            req_id, payload, ..
        }) = decode_frame(&buf[consumed..], DEFAULT_MAX_FRAME_LEN)
        else {
            panic!("second frame must decode");
        };
        assert_eq!(req_id, 2);
        assert_eq!(payload, b"second");
    }
}
