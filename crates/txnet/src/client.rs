//! The blocking client: one TCP connection, pipelined request frames.
//!
//! [`NetClient::batch`] is the simple call-and-wait form. The open-loop load
//! generator uses the split [`NetClient::send`] / [`NetClient::recv`] pair
//! instead: it issues requests on its own schedule (regardless of whether
//! earlier replies have arrived) and drains replies as they come back, which
//! is what makes offered load independent of service time — and what gives
//! the server-side coalescer multiple in-flight requests to merge.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use txkv::{KvOp, KvReply};

use crate::error::{NetError, ProtocolError, RemoteError};
use crate::frame::{decode_frame, encode_frame, FrameDecode, DEFAULT_MAX_FRAME_LEN};
use crate::proto;

/// A client connection to a [`crate::NetServer`].
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    read_buf: Vec<u8>,
    next_req: u64,
    max_frame_len: u32,
}

impl NetClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            read_buf: Vec::new(),
            next_req: 1,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        })
    }

    /// Sets a read timeout for [`NetClient::recv`] (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request batch without waiting for its reply; returns the
    /// request-id its reply will carry. Requests pipeline: any number may be
    /// in flight, and replies arrive in server-execution order.
    ///
    /// # Errors
    ///
    /// Transport failures only — nothing is decoded on this path.
    pub fn send(&mut self, ops: &[KvOp]) -> Result<u64, NetError> {
        let req_id = self.next_req;
        self.next_req += 1;
        let frame = encode_frame(req_id, &proto::encode_request(ops));
        self.stream.write_all(&frame)?;
        Ok(req_id)
    }

    /// Receives the next reply: `(request_id, result)`, where the result is
    /// the request's [`KvReply`] list or the server's typed error for it.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on transport failure or server close,
    /// [`NetError::Protocol`] if the server's stream is corrupt.
    pub fn recv(&mut self) -> Result<(u64, Result<Vec<KvReply>, RemoteError>), NetError> {
        loop {
            match decode_frame(&self.read_buf, self.max_frame_len)? {
                FrameDecode::Frame {
                    req_id,
                    payload,
                    consumed,
                } => {
                    self.read_buf.drain(..consumed);
                    return Ok((req_id, proto::decode_reply(&payload)?));
                }
                FrameDecode::Incomplete => {
                    let mut scratch = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut scratch)?;
                    if n == 0 {
                        return Err(NetError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        )));
                    }
                    self.read_buf.extend_from_slice(&scratch[..n]);
                }
            }
        }
    }

    /// Executes one batch and waits for its reply (send + recv + match).
    ///
    /// # Errors
    ///
    /// See [`NetClient::recv`]; additionally [`NetError::Remote`] when the
    /// server answered with a typed error, and
    /// [`ProtocolError::UnexpectedReply`] if the reply stream delivered a
    /// different request's reply (only possible if calls were pipelined with
    /// [`NetClient::send`] and their replies not yet drained).
    pub fn batch(&mut self, ops: &[KvOp]) -> Result<Vec<KvReply>, NetError> {
        let req_id = self.send(ops)?;
        let (got, result) = self.recv()?;
        if got != req_id {
            return Err(NetError::Protocol(ProtocolError::UnexpectedReply(got)));
        }
        result.map_err(NetError::Remote)
    }

    /// Convenience single-key read over [`NetClient::batch`].
    ///
    /// # Errors
    ///
    /// See [`NetClient::batch`].
    pub fn get(&mut self, key: u64) -> Result<Option<Vec<u64>>, NetError> {
        match self.batch(&[KvOp::Get { key }])?.pop() {
            Some(KvReply::Value(v)) => Ok(v),
            _ => Err(NetError::Protocol(ProtocolError::Malformed)),
        }
    }

    /// Convenience single-key write over [`NetClient::batch`]. Returns
    /// `true` on fresh insert.
    ///
    /// # Errors
    ///
    /// See [`NetClient::batch`].
    pub fn put(&mut self, key: u64, value: Vec<u64>) -> Result<bool, NetError> {
        match self.batch(&[KvOp::Put { key, value }])?.pop() {
            Some(KvReply::Inserted(fresh)) => Ok(fresh),
            _ => Err(NetError::Protocol(ProtocolError::Malformed)),
        }
    }

    /// Raw access to the underlying stream — test hooks (sending
    /// deliberately corrupt bytes) only.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
