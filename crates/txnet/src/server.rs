//! The serving front-end: a hand-rolled thread-per-core nonblocking TCP
//! server with **server-side batch coalescing**.
//!
//! Each serving thread owns a nonblocking clone of the listener and a private
//! set of connections, and runs a small readiness poll loop:
//!
//! 1. accept any pending connections (the kernel hands each one to exactly
//!    one accepting thread);
//! 2. drain every readable connection's bytes and decode complete request
//!    frames;
//! 3. **coalesce** all requests decoded this iteration — across all of the
//!    thread's connections — into one [`KvSession::batch_with_replies`]
//!    call (durable path: one [`DurableKvSession::batch_with_replies`],
//!    i.e. one commit sequence number, one redo record, one group-commit
//!    ticket shared by every coalesced request);
//! 4. fan the replies back out by request-id and flush writable connections.
//!
//! Step 3 is the point of the design: N clients' concurrent batches share a
//! single STM commit and a single WAL acknowledgement, which is the
//! group-commit WAL's design point — fsync cost amortises across every
//! request that arrived during the previous sync window.
//!
//! Error containment follows [`ProtocolError::is_frame_level`]: a corrupt
//! frame closes the connection cleanly (after flushing queued replies); a
//! CRC-valid but undecodable request is answered on the live connection with
//! a typed error reply. A durability failure answers every coalesced request
//! with an [`crate::proto::ERR_WAL`] error reply; connections stay open and
//! later read-only batches keep serving (mirroring the degraded-mode
//! contract of [`DurableKvSession::batch`]).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use txkv::{DurableKvSession, DurableKvStore, KvOp, KvReply, KvServer, KvSession, WalError};
use txmem::TxRuntime;

use crate::error::ProtocolError;
use crate::frame::{decode_frame, encode_frame_into, FrameDecode, DEFAULT_MAX_FRAME_LEN};
use crate::proto;

/// Configuration of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Serving threads. Defaults to one per core (`available_parallelism`) —
    /// coalescing happens *within* a thread, so fewer threads mean wider
    /// coalescing and more threads mean more parallel commits.
    pub threads: usize,
    /// Upper bound on a request frame's payload length.
    pub max_frame_len: u32,
    /// How long an idle serving thread sleeps between poll iterations.
    pub idle_sleep: Duration,
    /// Upper bound on requests coalesced into one store batch. The batch
    /// executes as a single transaction (and a single WAL ticket), so this
    /// bounds commit latency when many connections are readable at once;
    /// excess requests stay in the kernel's socket buffers — TCP
    /// backpressure — and execute in subsequent iterations, scanned from a
    /// rotating start so no connection starves.
    pub max_coalesced_requests: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            threads: std::thread::available_parallelism().map_or(1, usize::from),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            idle_sleep: Duration::from_micros(200),
            max_coalesced_requests: 64,
        }
    }
}

/// What a serving thread executes its coalesced drains against: an
/// in-memory session or a durable one. One per thread (sessions are
/// per-thread handles).
enum Backend<R: TxRuntime> {
    Mem(KvSession<R>),
    Durable(DurableKvSession<R>),
}

impl<R: TxRuntime> Backend<R> {
    fn execute(&mut self, requests: Vec<Vec<KvOp>>) -> Result<Vec<Vec<KvReply>>, WalError> {
        match self {
            Backend::Mem(session) => Ok(session.batch_with_replies(requests)),
            Backend::Durable(session) => session.batch_with_replies(requests),
        }
    }
}

/// The shared store behind all serving threads.
enum Shared<R: TxRuntime> {
    Mem(Arc<KvServer<R>>),
    Durable(Arc<DurableKvStore<R>>),
}

impl<R: TxRuntime> Clone for Shared<R> {
    fn clone(&self) -> Self {
        match self {
            Shared::Mem(s) => Shared::Mem(Arc::clone(s)),
            Shared::Durable(s) => Shared::Durable(Arc::clone(s)),
        }
    }
}

impl<R: TxRuntime> Shared<R> {
    fn backend(&self) -> Backend<R> {
        match self {
            Shared::Mem(server) => Backend::Mem(server.session()),
            Shared::Durable(store) => Backend::Durable(store.session()),
        }
    }
}

/// A running network server: serving threads plus the bound address.
/// Dropping the handle shuts the server down and joins the threads.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Serves the in-memory [`KvServer`] on `addr` (use port 0 for an
    /// ephemeral loopback port; the bound address is [`NetServer::addr`]).
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures (bind, nonblocking mode, clone).
    pub fn serve<R: TxRuntime>(
        server: Arc<KvServer<R>>,
        addr: impl ToSocketAddrs,
        config: &NetServerConfig,
    ) -> io::Result<NetServer> {
        Self::start(Shared::Mem(server), addr, config)
    }

    /// Serves the durable [`DurableKvStore`] on `addr`: every acknowledged
    /// write reply is durable per the store's fsync policy, and coalesced
    /// requests share one WAL ticket.
    ///
    /// # Errors
    ///
    /// See [`NetServer::serve`].
    pub fn serve_durable<R: TxRuntime>(
        store: Arc<DurableKvStore<R>>,
        addr: impl ToSocketAddrs,
        config: &NetServerConfig,
    ) -> io::Result<NetServer> {
        Self::start(Shared::Durable(store), addr, config)
    }

    fn start<R: TxRuntime>(
        shared: Shared<R>,
        addr: impl ToSocketAddrs,
        config: &NetServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let n_threads = config.threads.max(1);
        let mut threads = Vec::with_capacity(n_threads);
        for worker in 0..n_threads {
            let listener = listener.try_clone()?;
            let shared = shared.clone();
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("txnet-serve-{worker}"))
                    .spawn(move || serve_loop(listener, shared.backend(), &shutdown, &config))
                    .expect("spawning a serving thread failed"),
            );
        }
        Ok(NetServer {
            addr,
            shutdown,
            threads,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the serving threads to stop and joins them. Open connections
    /// are dropped; in-flight replies that were already queued are flushed
    /// by the final poll iteration before the flag is observed.
    pub fn shutdown(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// One connection's state inside a serving thread.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet decoded (at most one partial frame after a
    /// decode pass).
    read_buf: Vec<u8>,
    /// Encoded reply frames not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    written: usize,
    /// `false` once the connection is condemned (EOF, I/O error, or a
    /// frame-level protocol violation): queued replies are still flushed,
    /// then the connection is dropped.
    open: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            open: true,
        }
    }

    fn queue_reply(&mut self, req_id: u64, payload: &[u8]) {
        txobs::trace::trace(txobs::EventKind::NetWrite, payload.len() as u64);
        txobs::metrics::net().replies.inc();
        encode_frame_into(&mut self.write_buf, req_id, payload);
    }

    /// Writes as much of the queued reply bytes as the socket accepts.
    fn flush(&mut self) {
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => {
                    // The peer is gone: discard what it will never read.
                    self.open = false;
                    self.written = self.write_buf.len();
                    break;
                }
                Ok(n) => {
                    self.written += n;
                    txobs::metrics::net().bytes_out.add(n as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.open = false;
                    self.written = self.write_buf.len();
                    break;
                }
            }
        }
        if self.written == self.write_buf.len() && self.written > 0 {
            self.write_buf.clear();
            self.written = 0;
        }
    }

    fn flushed(&self) -> bool {
        self.written == self.write_buf.len()
    }
}

/// The poll loop of one serving thread.
fn serve_loop<R: TxRuntime>(
    listener: TcpListener,
    mut backend: Backend<R>,
    shutdown: &AtomicBool,
    config: &NetServerConfig,
) {
    let net = txobs::metrics::net();
    let max_coalesced = config.max_coalesced_requests.max(1);
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    // Reused across iterations: the routes (connection, request-id) and the
    // decoded request batches of one coalesced drain, index-aligned.
    let mut routes: Vec<(usize, u64)> = Vec::new();
    let mut requests: Vec<Vec<KvOp>> = Vec::new();
    // Where the read/decode scan starts, advanced every iteration: when the
    // coalescing window fills before the scan completes, the connections
    // that were skipped go first next time.
    let mut scan_start = 0usize;
    while !shutdown.load(Ordering::Acquire) {
        let mut busy = false;

        // 1. Accept.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    busy = true;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    net.connections.add(1);
                    conns.push(Conn::new(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }

        // 2. Read and decode, scanning from a rotating start.
        routes.clear();
        requests.clear();
        let n_conns = conns.len();
        scan_start = if n_conns == 0 {
            0
        } else {
            (scan_start + 1) % n_conns
        };
        for step in 0..n_conns {
            let index = (scan_start + step) % n_conns;
            let conn = &mut conns[index];
            if !conn.open {
                continue;
            }
            // The coalescing window is full: leave this connection's bytes
            // in the kernel buffer (backpressure) for a later iteration.
            if requests.len() >= max_coalesced {
                continue;
            }
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        // EOF: whatever complete frames are already buffered
                        // still get decoded, executed and answered below.
                        conn.open = false;
                        break;
                    }
                    Ok(n) => {
                        busy = true;
                        net.bytes_in.add(n as u64);
                        conn.read_buf.extend_from_slice(&scratch[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.open = false;
                        break;
                    }
                }
            }
            let mut offset = 0usize;
            loop {
                if requests.len() >= max_coalesced {
                    // Window full mid-connection: the undecoded tail stays
                    // in `read_buf` for the next iteration.
                    break;
                }
                match decode_frame(&conn.read_buf[offset..], config.max_frame_len) {
                    Ok(FrameDecode::Frame {
                        req_id,
                        payload,
                        consumed,
                    }) => {
                        offset += consumed;
                        txobs::trace::trace(txobs::EventKind::NetRead, payload.len() as u64);
                        net.requests.inc();
                        match proto::decode_request(&payload) {
                            Ok(ops) => {
                                routes.push((index, req_id));
                                requests.push(ops);
                            }
                            Err(error) => {
                                // Payload-level: typed error reply, live
                                // connection.
                                debug_assert!(!error.is_frame_level());
                                net.protocol_errors.inc();
                                conn.queue_reply(
                                    req_id,
                                    &proto::encode_err_reply(error.wire_code(), &error.to_string()),
                                );
                            }
                        }
                    }
                    Ok(FrameDecode::Incomplete) => break,
                    Err(error) => {
                        // Frame-level: the stream is desynced; close after
                        // flushing whatever replies are already queued.
                        let _: ProtocolError = error;
                        net.protocol_errors.inc();
                        conn.open = false;
                        conn.read_buf.clear();
                        offset = 0;
                        break;
                    }
                }
            }
            if offset > 0 {
                conn.read_buf.drain(..offset);
            }
        }

        // 3. Coalesce: every request decoded this iteration — across all of
        // this thread's connections — executes as ONE store batch.
        if !requests.is_empty() {
            busy = true;
            txobs::trace::trace(txobs::EventKind::NetBatch, requests.len() as u64);
            net.coalesced_batches.inc();
            net.coalesced_requests.add(requests.len() as u64);
            match backend.execute(std::mem::take(&mut requests)) {
                Ok(replies) => {
                    debug_assert_eq!(replies.len(), routes.len());
                    for (&(index, req_id), reply) in routes.iter().zip(&replies) {
                        conns[index].queue_reply(req_id, &proto::encode_ok_reply(reply));
                    }
                }
                Err(wal) => {
                    // The whole coalesced batch failed to (or was refused
                    // before) commit; answer every request with the typed
                    // durability error and keep serving.
                    let reply = proto::encode_err_reply(proto::ERR_WAL, &wal.to_string());
                    for &(index, req_id) in &routes {
                        conns[index].queue_reply(req_id, &reply);
                    }
                }
            }
        }

        // 4. Flush and reap.
        let before = conns.len();
        for conn in &mut conns {
            conn.flush();
        }
        conns.retain(|conn| conn.open || !conn.flushed());
        net.connections.sub((before - conns.len()) as u64);

        if !busy {
            std::thread::sleep(config.idle_sleep);
        }
    }
    txobs::metrics::net().connections.sub(conns.len() as u64);
}
