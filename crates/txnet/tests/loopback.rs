//! Loopback conformance: the network front-end against the `RefStore`
//! oracle, on every runtime.
//!
//! Three contracts (ISSUE 10, satellite):
//!
//! * concurrent clients' interleaved batches observe exactly the semantics
//!   of applying each batch atomically — every reply matches the oracle;
//! * pipelined requests genuinely coalesce: N requests share fewer than N
//!   STM commits;
//! * the durable path survives an injected WAL crash point with dense LSNs —
//!   every acknowledged write is recovered, degraded reads keep serving
//!   over the wire, and a recovered store serves the network again.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use swisstm::SwisstmRuntime;
use tlstm::TlstmRuntime;
use tlstm_testutil::{with_default_watchdog, TempDir, TestRng};
use txkv::{
    CrashPoints, DurableKvConfig, DurableKvStore, FsyncPolicy, KvOp, KvReply, KvServer,
    KvServerConfig, KvStoreParams, RefStore,
};
use txlog::crash_points;
use txmem::{SeqRefRuntime, TxConfig, TxRuntime};
use txnet::{
    encode_frame, encode_request, NetClient, NetError, NetServer, NetServerConfig, ERR_WAL,
};

const SHARDS: u64 = 8;
const GROUPS: usize = 4;
const CLIENTS: u64 = 4;
const BATCHES_PER_CLIENT: usize = 30;
const KEYS_PER_CLIENT: u64 = 64;
const READ_TIMEOUT: Duration = Duration::from_secs(10);

fn kv_config() -> KvServerConfig {
    KvServerConfig {
        store: KvStoreParams {
            shards: SHARDS,
            expected_keys: 512,
        },
        batch_tasks: GROUPS,
        tx: TxConfig::small(),
    }
}

fn net_config(threads: usize) -> NetServerConfig {
    NetServerConfig {
        threads,
        ..NetServerConfig::default()
    }
}

/// One random batch confined to `[base, base + KEYS_PER_CLIENT)` — client
/// key ranges are disjoint, so per-client replies are sequentially
/// consistent against a per-client oracle regardless of interleaving.
fn gen_batch(rng: &mut TestRng, base: u64, ops: usize) -> Vec<KvOp> {
    let mut batch = Vec::with_capacity(ops);
    for _ in 0..ops {
        let key = base + rng.below(KEYS_PER_CLIENT);
        let value = |rng: &mut TestRng| -> Vec<u64> { (0..2).map(|_| rng.next_u64()).collect() };
        let op = match rng.below(100) {
            0..=29 => KvOp::Get { key },
            30..=64 => KvOp::Put {
                key,
                value: value(rng),
            },
            65..=74 => KvOp::Delete { key },
            75..=89 => KvOp::Cas {
                key,
                expected: value(rng),
                new: value(rng),
            },
            _ => KvOp::Scan {
                lo: key,
                hi: (key + 9).min(base + KEYS_PER_CLIENT - 1),
                limit: 8,
            },
        };
        batch.push(op);
    }
    batch
}

fn conformance_on<R: TxRuntime>() {
    let label = R::LABEL;
    let server = Arc::new(KvServer::<R>::new(&kv_config()));
    let net = NetServer::serve(Arc::clone(&server), ("127.0.0.1", 0), &net_config(2))
        .unwrap_or_else(|e| panic!("{label}: bind failed: {e}"));
    let addr = net.addr();

    // Concurrent clients on disjoint key ranges; each records its submitted
    // batches and the replies the server sent back.
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            let mut client = NetClient::connect(addr).expect("client connect");
            client.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
            let mut rng = TestRng::new(0xC0FFEE ^ c);
            let base = c * 1_000;
            let mut log = Vec::with_capacity(BATCHES_PER_CLIENT);
            for _ in 0..BATCHES_PER_CLIENT {
                let ops = gen_batch(&mut rng, base, 8);
                let replies = client.batch(&ops).expect("batch over loopback");
                log.push((ops, replies));
            }
            log
        }));
    }
    let logs: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();
    net.shutdown();

    // Per-client reply conformance, and a merged oracle for the final state
    // (disjoint ranges make the merge order irrelevant).
    let mut merged = RefStore::new(SHARDS);
    for (c, log) in logs.iter().enumerate() {
        let mut oracle = RefStore::new(SHARDS);
        for (batch_index, (ops, replies)) in log.iter().enumerate() {
            let want = oracle.batch(ops, GROUPS);
            assert_eq!(
                replies, &want,
                "{label}: client {c} batch {batch_index} diverges from the oracle"
            );
            merged.batch(ops, GROUPS);
        }
    }
    let mut got = server
        .store()
        .dump(&mut server.direct())
        .expect("direct dump cannot abort");
    let mut want = merged.dump();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(
        got, want,
        "{label}: final store state diverges from the oracle"
    );
}

#[test]
fn concurrent_clients_match_the_oracle_on_every_runtime() {
    with_default_watchdog(|| {
        conformance_on::<SwisstmRuntime>();
        conformance_on::<TlstmRuntime>();
        conformance_on::<SeqRefRuntime>();
    });
}

#[test]
fn pipelined_requests_coalesce_into_fewer_commits() {
    with_default_watchdog(|| {
        const PIPELINED: u64 = 64;
        let server = Arc::new(KvServer::<SeqRefRuntime>::new(&kv_config()));
        let net = NetServer::serve(Arc::clone(&server), ("127.0.0.1", 0), &net_config(1))
            .expect("bind failed");
        let mut client = NetClient::connect(net.addr()).expect("connect failed");
        client.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

        // All frames in one write: they arrive together, so the single
        // serving thread decodes (most of) them in one poll iteration and
        // executes them as (nearly) one coalesced store batch.
        let commits_before = server.stats().tx_commits;
        let mut wire = Vec::new();
        for id in 1..=PIPELINED {
            wire.extend_from_slice(&encode_frame(
                id,
                &encode_request(&[KvOp::Put {
                    key: id,
                    value: vec![id * 7],
                }]),
            ));
        }
        client.stream().write_all(&wire).expect("pipelined write");
        for id in 1..=PIPELINED {
            let (got_id, result) = client.recv().expect("pipelined recv");
            assert_eq!(got_id, id, "replies must come back in execution order");
            assert_eq!(result.expect("put reply"), vec![KvReply::Inserted(true)]);
        }
        let commits = server.stats().tx_commits - commits_before;
        assert!(commits >= 1, "at least one batch must have committed");
        assert!(
            commits < PIPELINED,
            "{PIPELINED} pipelined requests took {commits} commits — no coalescing happened"
        );
        net.shutdown();
    });
}

#[test]
fn durable_loopback_survives_a_crash_point_with_dense_lsns() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txnet-crash");
        let crash = CrashPoints::disabled();
        let config = DurableKvConfig {
            server: kv_config(),
            fsync: FsyncPolicy::Always,
            crash_points: crash.clone(),
            ..DurableKvConfig::default()
        };
        let store = Arc::new(
            DurableKvStore::<SwisstmRuntime>::boot(dir.path(), &config).expect("boot failed"),
        );
        let net = NetServer::serve_durable(Arc::clone(&store), ("127.0.0.1", 0), &net_config(1))
            .expect("bind failed");
        let mut client = NetClient::connect(net.addr()).expect("connect failed");
        client.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

        // A healthy prefix of acknowledged write batches (the first op is
        // always a write, so each one is logged and carries one LSN — the
        // client is sequential, so no coalescing blurs the count).
        let mut rng = TestRng::new(0xBEEF);
        let mut batches = Vec::new();
        let mut acked = 0u64;
        for _ in 0..6 {
            let mut ops = vec![KvOp::Put {
                key: rng.below(KEYS_PER_CLIENT),
                value: vec![rng.next_u64()],
            }];
            ops.extend(gen_batch(&mut rng, 0, 5));
            batches.push(ops.clone());
            client.batch(&ops).expect("acked write batch");
            acked += 1;
        }
        assert_eq!(store.durable_lsn(), acked);

        // The armed crash point kills the WAL writer mid-frame: the client
        // gets the typed durability error, not a hang and not a close.
        crash.arm(crash_points::MID_FRAME);
        let doomed = vec![KvOp::Put {
            key: 1,
            value: vec![0xDEAD],
        }];
        match client.batch(&doomed) {
            Err(NetError::Remote(remote)) => {
                assert_eq!(remote.code, ERR_WAL, "{}", remote.message);
            }
            other => panic!("crashed WAL must yield an ERR_WAL reply, got {other:?}"),
        }
        assert!(store.is_dead());
        assert_eq!(crash.fired(), Some(crash_points::MID_FRAME.to_string()));

        // Degraded mode over the wire: reads keep serving on the same
        // connection, writes keep being refused with the typed error.
        let acked_key = match &batches[0][0] {
            KvOp::Put { key, .. } => *key,
            _ => unreachable!("first op is always a put"),
        };
        assert!(client.get(acked_key).expect("degraded read").is_some());
        match client.batch(&doomed) {
            Err(NetError::Remote(remote)) => assert_eq!(remote.code, ERR_WAL),
            other => panic!("degraded write must yield ERR_WAL, got {other:?}"),
        }

        drop(client);
        net.shutdown();
        drop(store);

        // Recovery: the torn tail is discarded, LSNs are dense — exactly
        // the acknowledged batches are replayed, nothing skipped.
        let recovered = DurableKvStore::<SwisstmRuntime>::boot(
            dir.path(),
            &DurableKvConfig {
                server: kv_config(),
                fsync: FsyncPolicy::Always,
                crash_points: CrashPoints::disabled(),
                ..DurableKvConfig::default()
            },
        )
        .expect("recovery failed");
        let report = recovered.recovery().clone();
        assert_eq!(
            report.next_lsn, acked,
            "acknowledged writes lost or duplicated"
        );
        assert_eq!(report.replayed_records, acked, "LSNs are not dense");
        assert!(
            report.diagnostics.iter().any(|d| d.contains("torn tail")),
            "expected a torn-tail diagnostic, got {:?}",
            report.diagnostics
        );
        let mut oracle = RefStore::new(SHARDS);
        for ops in &batches {
            oracle.batch(ops, GROUPS);
        }
        let mut got = recovered
            .store()
            .dump(&mut recovered.server().direct())
            .expect("direct dump cannot abort");
        let mut want = oracle.dump();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(
            got, want,
            "recovered state diverges from the acked oracle prefix"
        );

        // And the recovered store serves the network again.
        let recovered = Arc::new(recovered);
        let net =
            NetServer::serve_durable(Arc::clone(&recovered), ("127.0.0.1", 0), &net_config(1))
                .expect("re-serve failed");
        let mut client = NetClient::connect(net.addr()).expect("reconnect failed");
        client.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        client
            .put(9_999, vec![1, 2, 3])
            .expect("post-recovery write");
        assert_eq!(
            client.get(9_999).expect("post-recovery read"),
            Some(vec![1, 2, 3])
        );
        net.shutdown();
    });
}
