//! Protocol fuzz / torn-frame matrix over a live server, mirroring
//! `txlog/tests/torn_tail.rs` for the wire instead of the disk.
//!
//! The containment contract under test (ISSUE 10, satellite): every
//! truncation offset and every single-bit flip of a request frame yields a
//! typed protocol error and a live connection (payload-level corruption
//! inside a CRC-valid frame) or a clean connection close (frame-level
//! corruption) — never a panic, never a desynced reply stream. The server
//! keeps serving other connections throughout.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use tlstm_testutil::with_default_watchdog;
use txkv::{KvOp, KvServer, KvServerConfig};
use txmem::SeqRefRuntime;
use txnet::{encode_frame, encode_request, NetClient, NetError, NetServer, NetServerConfig};

const READ_TIMEOUT: Duration = Duration::from_secs(10);

fn start_server() -> NetServer {
    let server = Arc::new(KvServer::<SeqRefRuntime>::new(&KvServerConfig::default()));
    let config = NetServerConfig {
        threads: 1,
        ..NetServerConfig::default()
    };
    NetServer::serve(server, ("127.0.0.1", 0), &config).expect("loopback bind failed")
}

/// One valid request frame (a single `Put`) to truncate and flip.
fn sample_frame() -> Vec<u8> {
    encode_frame(
        42,
        &encode_request(&[KvOp::Put {
            key: 5,
            value: vec![0xABCD],
        }]),
    )
}

/// Writes `bytes`, half-closes the write side, and returns everything the
/// server sent back before closing. A reset counts as a close (the server
/// dropped the socket); anything else — notably a read timeout, which would
/// mean the server is wedged — panics with `context`.
fn send_and_drain(addr: SocketAddr, bytes: &[u8], context: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("{context}: {e}"));
    stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    stream
        .write_all(bytes)
        .unwrap_or_else(|e| panic!("{context}: write: {e}"));
    stream
        .shutdown(Shutdown::Write)
        .unwrap_or_else(|e| panic!("{context}: shutdown: {e}"));
    let mut got = Vec::new();
    let mut scratch = [0u8; 4096];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => return got,
            Ok(n) => got.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == ErrorKind::ConnectionReset => return got,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => panic!("{context}: read: {e} (server wedged?)"),
        }
    }
}

/// A full round-trip on a fresh connection — the liveness probe run after
/// each corruption barrage.
fn assert_server_alive(addr: SocketAddr, key: u64) {
    let mut client = NetClient::connect(addr).expect("reconnect failed");
    client.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    client
        .put(key, vec![key * 3])
        .expect("put after corruption");
    assert_eq!(
        client.get(key).expect("get after corruption"),
        Some(vec![key * 3])
    );
}

#[test]
fn every_truncation_of_a_request_frame_closes_cleanly() {
    with_default_watchdog(|| {
        let server = start_server();
        let addr = server.addr();
        let frame = sample_frame();
        // A truncated frame is an incomplete prefix: the server waits for
        // the rest, sees EOF instead, and closes without replying. No cut
        // may elicit reply bytes (that would be a desync) or wedge the
        // server (that would be the torn-tail livelock this matrix guards
        // against on disk).
        for cut in 0..frame.len() {
            let context = format!("truncation at {cut}");
            let got = send_and_drain(addr, &frame[..cut], &context);
            assert!(got.is_empty(), "{context}: unsolicited reply {got:?}");
        }
        assert_server_alive(addr, 7001);
        server.shutdown();
    });
}

#[test]
fn every_single_bit_flip_of_a_request_frame_is_contained() {
    with_default_watchdog(|| {
        let server = start_server();
        let addr = server.addr();
        let frame = sample_frame();
        // CRC32 detects every single-bit error, so no flip can smuggle a
        // mutated request through: each one is either a frame-level error
        // (bad magic, bad CRC, oversized length) that closes the
        // connection, or an inflated length claim the server waits out
        // until our half-close EOFs it. Either way: zero reply bytes.
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let context = format!("bit flip at byte {byte} bit {bit}");
                let mut flipped = frame.clone();
                flipped[byte] ^= 1 << bit;
                let got = send_and_drain(addr, &flipped, &context);
                assert!(got.is_empty(), "{context}: unsolicited reply {got:?}");
            }
        }
        assert_server_alive(addr, 7002);
        server.shutdown();
    });
}

#[test]
fn garbage_and_desynced_streams_close_cleanly() {
    with_default_watchdog(|| {
        let server = start_server();
        let addr = server.addr();
        // Arbitrary garbage (bad magic immediately).
        let garbage: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(31) % 251) as u8)
            .collect();
        assert!(send_and_drain(addr, &garbage, "garbage").is_empty());
        // A valid frame followed by garbage: the request is answered, then
        // the stream desyncs and the connection closes — the reply bytes we
        // do get must decode as exactly one well-formed reply frame.
        let mut mixed = sample_frame();
        mixed.extend_from_slice(b"!!!!this is not a frame");
        let got = send_and_drain(addr, &mixed, "frame then garbage");
        match txnet::decode_frame(&got, txnet::DEFAULT_MAX_FRAME_LEN) {
            Ok(txnet::FrameDecode::Frame {
                req_id,
                payload,
                consumed,
            }) => {
                assert_eq!(req_id, 42);
                assert_eq!(consumed, got.len(), "trailing bytes after the reply");
                assert!(txnet::decode_reply(&payload)
                    .expect("reply decodes")
                    .is_ok());
            }
            other => panic!("frame then garbage: expected one reply frame, got {other:?}"),
        }
        assert_server_alive(addr, 7003);
        server.shutdown();
    });
}

#[test]
fn payload_level_corruption_gets_a_typed_reply_on_a_live_connection() {
    with_default_watchdog(|| {
        let server = start_server();
        let addr = server.addr();
        let mut client = NetClient::connect(addr).expect("connect failed");
        client.set_read_timeout(Some(READ_TIMEOUT)).unwrap();

        // Corrupt payloads wrapped in CRC-valid frames: the request-id is
        // trustworthy, so the server must answer each with its typed error
        // code — on the same connection, which stays usable afterwards.
        let bad_version = vec![9u8];
        let unknown_tag = {
            let mut p = encode_request(&[]);
            p[1..5].copy_from_slice(&1u32.to_le_bytes());
            p.push(200); // tag 200 is not an op
            p.extend_from_slice(&5u64.to_le_bytes());
            p
        };
        let truncated_op = {
            let mut p = encode_request(&[KvOp::Get { key: 1 }]);
            p.truncate(p.len() - 3); // op body cut short inside the payload
            p
        };
        let trailing_byte = {
            let mut p = encode_request(&[KvOp::Get { key: 1 }]);
            p.push(0);
            p
        };
        let cases: [(&str, Vec<u8>, u8); 4] = [
            ("bad version", bad_version, 4),
            ("unknown tag", unknown_tag, 5),
            ("truncated op", truncated_op, 6),
            ("trailing byte", trailing_byte, 6),
        ];
        let mut req_id = 1_000u64;
        for (name, payload, want_code) in cases {
            req_id += 1;
            client
                .stream()
                .write_all(&encode_frame(req_id, &payload))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let (got_id, result) = client.recv().unwrap_or_else(|e| panic!("{name}: {e:?}"));
            assert_eq!(got_id, req_id, "{name}: reply routed to the wrong request");
            let remote = result.expect_err(name);
            assert_eq!(remote.code, want_code, "{name}: {}", remote.message);
            // Same connection, next request: still live, still correct.
            client
                .put(req_id, vec![req_id])
                .unwrap_or_else(|e| panic!("{name}: connection died: {e:?}"));
        }

        // Frame-level corruption on this same connection *does* close it …
        let mut bad_magic = sample_frame();
        bad_magic[0] = b'X';
        client
            .stream()
            .write_all(&bad_magic)
            .expect("write bad magic");
        match client.recv() {
            Err(NetError::Io(e)) if e.kind() == ErrorKind::UnexpectedEof => {}
            Err(NetError::Io(e)) if e.kind() == ErrorKind::ConnectionReset => {}
            other => panic!("bad magic should close the connection, got {other:?}"),
        }
        // … but the server itself keeps serving.
        assert_server_alive(addr, 7004);
        server.shutdown();
    });
}
