//! Crash-recovery conformance for the durable KV store.
//!
//! The contract under test (ISSUE 5 acceptance criteria): for every injected
//! WAL crash point and both runtimes, a recovered [`DurableKvStore`] equals
//! the [`RefStore`] oracle replayed to a **batch-boundary prefix** of the
//! submitted stream, and no write acknowledged under `fsync=always`/`group`
//! is ever lost.

use swisstm::SwisstmRuntime;
use tlstm::TlstmRuntime;
use tlstm_testutil::{with_default_watchdog, TempDir, TestRng};
use txkv::{
    CrashPoints, DurableKvConfig, DurableKvStore, FsyncPolicy, KvOp, KvServerConfig, KvStoreParams,
    RefStore, WalError,
};
use txlog::crash_points;
use txmem::{SeqRefRuntime, TxConfig, TxRuntime};

const SHARDS: u64 = 8;
const GROUPS: usize = 4;

/// Boots a durable store on runtime `R` (turbofish-friendly shorthand for
/// the generic constructor the tests instantiate per runtime).
fn boot<R: TxRuntime>(
    dir: &std::path::Path,
    cfg: &DurableKvConfig,
) -> std::io::Result<DurableKvStore<R>> {
    DurableKvStore::boot(dir, cfg)
}

fn config(fsync: FsyncPolicy, crash_points: CrashPoints) -> DurableKvConfig {
    DurableKvConfig {
        server: KvServerConfig {
            store: KvStoreParams {
                shards: SHARDS,
                expected_keys: 512,
            },
            batch_tasks: GROUPS,
            tx: TxConfig::small(),
        },
        fsync,
        crash_points,
        ..DurableKvConfig::default()
    }
}

/// One seeded batch over a small key space. The first op is always a write,
/// so every batch is logged and batch index == LSN for a single session.
fn gen_batch(rng: &mut TestRng, ops: usize) -> Vec<KvOp> {
    let mut batch = Vec::with_capacity(ops);
    for i in 0..ops {
        let key = rng.below(64);
        let value = |rng: &mut TestRng| -> Vec<u64> { (0..3).map(|_| rng.next_u64()).collect() };
        let op = match if i == 0 { 40 } else { rng.below(100) } {
            0..=24 => KvOp::Get { key },
            25..=59 => KvOp::Put {
                key,
                value: value(rng),
            },
            60..=69 => KvOp::Delete { key },
            70..=84 => KvOp::Cas {
                key,
                expected: value(rng),
                new: value(rng),
            },
            _ => KvOp::Scan {
                lo: key,
                hi: key + 9,
                limit: 8,
            },
        };
        batch.push(op);
    }
    batch
}

fn dump<R: TxRuntime>(store: &DurableKvStore<R>) -> Vec<(u64, Vec<u64>)> {
    store
        .store()
        .dump(&mut store.server().direct())
        .expect("direct dump cannot abort")
}

/// Replays `batches[..n]` through the oracle and returns its contents.
fn oracle_prefix(batches: &[Vec<KvOp>], n: usize) -> Vec<(u64, Vec<u64>)> {
    let mut oracle = RefStore::new(SHARDS);
    for ops in &batches[..n] {
        oracle.batch(ops, GROUPS);
    }
    oracle.dump()
}

/// The crash matrix: a seeded op stream "crashes" at each named WAL point;
/// the recovered store must equal the oracle replay of a batch-boundary
/// prefix that contains every acknowledged write.
fn crash_matrix_on<R: TxRuntime>() {
    let label = R::LABEL;
    // Only the append-path points can fire from `session.batch`; the
    // rotation-path points are exercised by the rotation matrix below.
    for point in crash_points::APPEND {
        let context = format!("{label}/{point}");
        let dir = TempDir::new("txkv-crash");
        let crash = CrashPoints::disabled();
        let store = boot::<R>(dir.path(), &config(FsyncPolicy::Always, crash.clone()))
            .unwrap_or_else(|e| panic!("{context}: boot failed: {e}"));
        let mut session = store.session();
        let mut rng = TestRng::new(0xD00D ^ point.len() as u64);
        let mut batches = Vec::new();
        let mut acked = 0usize;

        // Phase 1: a healthy prefix, every batch acknowledged.
        for _ in 0..8 {
            let ops = gen_batch(&mut rng, 10);
            batches.push(ops.clone());
            session
                .batch(ops)
                .unwrap_or_else(|e| panic!("{context}: {e}"));
            acked += 1;
        }
        assert_eq!(store.durable_lsn(), acked as u64, "{context}");

        // Phase 2: arm the crash point; the next logged batch dies
        // at exactly that pipeline stage.
        crash.arm(point);
        let ops = gen_batch(&mut rng, 10);
        batches.push(ops.clone());
        let outcome = session.batch(ops);
        if point == crash_points::AFTER_FSYNC_BEFORE_ACK {
            // The fsync covering this batch succeeded before the writer
            // died, so its ticket reports durable even without the ack.
            assert!(outcome.is_ok(), "{context}: {outcome:?}");
            acked += 1;
        } else {
            assert_eq!(outcome.unwrap_err(), WalError::Crashed, "{context}");
        }
        assert!(store.is_dead(), "{context}");
        assert_eq!(crash.fired(), Some(point.to_string()), "{context}");
        drop(session);
        drop(store);

        // Phase 3: recover and compare against the oracle.
        let recovered = boot::<R>(
            dir.path(),
            &config(FsyncPolicy::Always, CrashPoints::disabled()),
        )
        .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
        let report = recovered.recovery().clone();
        let n = report.next_lsn as usize;
        assert!(n >= acked, "{context}: acknowledged writes lost");
        assert!(n <= batches.len(), "{context}");
        // The exact prefix is deterministic per crash point: before the
        // bytes hit the file the record is gone, after that the in-process
        // file keeps it even though it was never acked (and for the
        // post-fsync point it *was* acked — counted into `acked` above).
        let want_n = match point {
            crash_points::BEFORE_APPEND
            | crash_points::MID_FRAME
            | crash_points::AFTER_FSYNC_BEFORE_ACK => acked,
            _ => acked + 1,
        };
        assert_eq!(n, want_n, "{context}");
        assert_eq!(
            dump(&recovered),
            oracle_prefix(&batches, n),
            "{context}: recovered state diverges from the oracle prefix"
        );
        recovered
            .store()
            .check_consistency(&mut recovered.server().direct())
            .unwrap();
        if point == crash_points::MID_FRAME {
            assert!(
                report.diagnostics.iter().any(|d| d.contains("torn tail")),
                "{context}: expected a torn-tail diagnostic, got {:?}",
                report.diagnostics
            );
        }

        // The recovered store keeps serving and logging.
        let mut session = recovered.session();
        let ops = gen_batch(&mut rng, 6);
        batches.truncate(n);
        batches.push(ops.clone());
        session
            .batch(ops)
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        assert_eq!(
            dump(&recovered),
            oracle_prefix(&batches, batches.len()),
            "{context}: post-recovery writes diverge"
        );
    }
}

#[test]
fn crash_matrix_recovers_an_acked_prefix_on_every_runtime() {
    with_default_watchdog(|| {
        crash_matrix_on::<SwisstmRuntime>();
        crash_matrix_on::<TlstmRuntime>();
        crash_matrix_on::<SeqRefRuntime>();
    });
}

/// The rotation crash matrix (the rotation path previously had zero crash
/// coverage): arm each rotation point, crash inside the log-truncation
/// rotate that follows a snapshot, and recover on every runtime. The
/// snapshot itself is written durably *before* the rotation, so recovery
/// must come back through it — never losing an acknowledged batch, whether
/// the crash left an untrimmed outgoing segment or an orphaned all-zero
/// successor segment.
fn rotation_crash_matrix_on<R: TxRuntime>() {
    let label = R::LABEL;
    for point in crash_points::ROTATION {
        let context = format!("{label}/{point}");
        let dir = TempDir::new("txkv-rotate-crash");
        let crash = CrashPoints::disabled();
        let store = boot::<R>(dir.path(), &config(FsyncPolicy::Always, crash.clone()))
            .unwrap_or_else(|e| panic!("{context}: boot failed: {e}"));
        let mut session = store.session();
        let mut rng = TestRng::new(0x0707 ^ point.len() as u64);
        let mut batches = Vec::new();
        for _ in 0..8 {
            let ops = gen_batch(&mut rng, 10);
            batches.push(ops.clone());
            session
                .batch(ops)
                .unwrap_or_else(|e| panic!("{context}: {e}"));
        }
        assert_eq!(store.durable_lsn(), 8, "{context}");

        crash.arm(point);
        assert!(store.snapshot().is_err(), "{context}: rotation must fail");
        assert!(store.is_dead(), "{context}");
        assert_eq!(crash.fired(), Some(point.to_string()), "{context}");
        // No premature prune: the crashed rotation must leave the
        // pre-snapshot log segment in place (it is still the only
        // home of records the orphaned successor never received).
        assert!(
            !txlog::list_segments(dir.path()).unwrap().is_empty(),
            "{context}: segments pruned after a failed rotation"
        );
        let ops = gen_batch(&mut rng, 10);
        assert_eq!(
            session.batch(ops).unwrap_err(),
            WalError::Crashed,
            "{context}: dead stores must refuse writes"
        );
        drop(session);
        drop(store);

        let recovered = boot::<R>(
            dir.path(),
            &config(FsyncPolicy::Always, CrashPoints::disabled()),
        )
        .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
        let report = recovered.recovery().clone();
        assert_eq!(report.next_lsn, 8, "{context}: acked batches lost");
        assert_eq!(
            report.snapshot_lsn,
            Some(8),
            "{context}: the pre-rotation snapshot must be used"
        );
        assert_eq!(report.replayed_records, 0, "{context}");
        assert_eq!(
            dump(&recovered),
            oracle_prefix(&batches, 8),
            "{context}: recovered state diverges from the oracle"
        );
        recovered
            .store()
            .check_consistency(&mut recovered.server().direct())
            .unwrap();

        // The recovered store serves, logs, and can rotate again.
        let mut session = recovered.session();
        let ops = gen_batch(&mut rng, 6);
        batches.push(ops.clone());
        session
            .batch(ops)
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        let snap = recovered
            .snapshot()
            .unwrap_or_else(|e| panic!("{context}: post-recovery snapshot failed: {e}"));
        assert_eq!(snap, 9, "{context}");
        assert_eq!(
            dump(&recovered),
            oracle_prefix(&batches, batches.len()),
            "{context}: post-recovery writes diverge"
        );
    }
}

#[test]
fn rotation_crash_matrix_recovers_every_acked_batch_on_every_runtime() {
    with_default_watchdog(|| {
        rotation_crash_matrix_on::<SwisstmRuntime>();
        rotation_crash_matrix_on::<TlstmRuntime>();
        rotation_crash_matrix_on::<SeqRefRuntime>();
    });
}

/// Acked writes survive under `fsync=group` too (acks wait for the covering
/// fsync, so the acknowledged prefix is always on disk).
#[test]
fn group_fsync_acks_are_never_lost() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txkv-crash-group");
        let crash = CrashPoints::disabled();
        let store = DurableKvStore::swisstm(
            dir.path(),
            &config(
                FsyncPolicy::Group(std::time::Duration::from_millis(1)),
                crash.clone(),
            ),
        )
        .unwrap();
        let mut session = store.session();
        let mut rng = TestRng::new(77);
        let mut batches = Vec::new();
        for _ in 0..10 {
            let ops = gen_batch(&mut rng, 8);
            batches.push(ops.clone());
            session.batch(ops).unwrap();
        }
        let acked = batches.len();
        crash.arm(crash_points::BEFORE_APPEND);
        let ops = gen_batch(&mut rng, 8);
        batches.push(ops.clone());
        assert_eq!(session.batch(ops).unwrap_err(), WalError::Crashed);
        drop(session);
        drop(store);

        let recovered = DurableKvStore::swisstm(
            dir.path(),
            &config(FsyncPolicy::None, CrashPoints::disabled()),
        )
        .unwrap();
        let n = recovered.recovery().next_lsn as usize;
        assert!(n >= acked, "group-fsync acknowledged writes lost");
        assert_eq!(dump(&recovered), oracle_prefix(&batches, n));
    });
}

/// Snapshot + truncation: recovery loads the snapshot and replays only the
/// suffix; covered segments and older snapshots are pruned.
fn snapshot_truncation_on<R: TxRuntime>() {
    {
        {
            let label = R::LABEL;
            let dir = TempDir::new("txkv-snap");
            let store = boot::<R>(
                dir.path(),
                &config(FsyncPolicy::Always, CrashPoints::disabled()),
            )
            .unwrap();
            let mut session = store.session();
            let mut rng = TestRng::new(0xABCD);
            let mut batches = Vec::new();
            for _ in 0..6 {
                let ops = gen_batch(&mut rng, 10);
                batches.push(ops.clone());
                session.batch(ops).unwrap();
            }
            let snap_lsn = store.snapshot().unwrap();
            assert_eq!(snap_lsn, 6, "{label}");
            for _ in 0..4 {
                let ops = gen_batch(&mut rng, 10);
                batches.push(ops.clone());
                session.batch(ops).unwrap();
            }
            // A second snapshot prunes the first and the covered segments.
            let snap_lsn = store.snapshot().unwrap();
            assert_eq!(snap_lsn, 10, "{label}");
            let snapshots = txlog::list_snapshots(dir.path()).unwrap();
            assert_eq!(
                snapshots.iter().map(|&(l, _)| l).collect::<Vec<_>>(),
                vec![10],
                "{label}: older snapshot not pruned"
            );
            for _ in 0..3 {
                let ops = gen_batch(&mut rng, 10);
                batches.push(ops.clone());
                session.batch(ops).unwrap();
            }
            drop(session);
            drop(store);

            let recovered = boot::<R>(
                dir.path(),
                &config(FsyncPolicy::Always, CrashPoints::disabled()),
            )
            .unwrap();
            let report = recovered.recovery().clone();
            assert_eq!(report.snapshot_lsn, Some(10), "{label}");
            assert_eq!(
                report.replayed_records, 3,
                "{label}: replay must start at the snapshot"
            );
            assert_eq!(report.next_lsn, 13, "{label}");
            assert_eq!(
                dump(&recovered),
                oracle_prefix(&batches, batches.len()),
                "{label}: snapshot+suffix recovery diverges"
            );
        }
    }
}

#[test]
fn snapshot_truncates_the_log_and_recovery_uses_it() {
    with_default_watchdog(|| {
        snapshot_truncation_on::<SwisstmRuntime>();
        snapshot_truncation_on::<TlstmRuntime>();
        snapshot_truncation_on::<SeqRefRuntime>();
    });
}

/// Clean shutdown → reopen: nothing is lost, LSNs continue densely, and a
/// log written under one runtime recovers under any other (the record
/// stream is runtime-agnostic).
fn restart_pair<A: TxRuntime, B: TxRuntime>() {
    {
        let label = A::LABEL;
        {
            let other_label = B::LABEL;
            {
                let dir = TempDir::new("txkv-restart");
                let store = boot::<A>(
                    dir.path(),
                    &config(FsyncPolicy::Always, CrashPoints::disabled()),
                )
                .unwrap();
                let mut session = store.session();
                let mut rng = TestRng::new(0x5EED);
                let mut batches = Vec::new();
                for _ in 0..12 {
                    let ops = gen_batch(&mut rng, 8);
                    batches.push(ops.clone());
                    session.batch(ops).unwrap();
                }
                let before = dump(&store);
                drop(session);
                drop(store);

                let reopened = boot::<B>(
                    dir.path(),
                    &config(FsyncPolicy::Always, CrashPoints::disabled()),
                )
                .unwrap();
                let context = format!("{label} -> {other_label}");
                assert_eq!(reopened.recovery().next_lsn, 12, "{context}");
                assert_eq!(
                    dump(&reopened),
                    before,
                    "{context}: clean restart lost data"
                );
                assert_eq!(
                    dump(&reopened),
                    oracle_prefix(&batches, batches.len()),
                    "{context}"
                );
                // LSNs continue densely after the restart.
                let mut session = reopened.session();
                let ops = gen_batch(&mut rng, 8);
                batches.push(ops.clone());
                session.batch(ops).unwrap();
                assert_eq!(reopened.durable_lsn(), 13, "{context}");
            }
        }
    }
}

#[test]
fn clean_restart_and_cross_runtime_recovery() {
    with_default_watchdog(|| {
        restart_pair::<SwisstmRuntime, SwisstmRuntime>();
        restart_pair::<SwisstmRuntime, TlstmRuntime>();
        restart_pair::<SwisstmRuntime, SeqRefRuntime>();
        restart_pair::<TlstmRuntime, SwisstmRuntime>();
        restart_pair::<TlstmRuntime, TlstmRuntime>();
        restart_pair::<TlstmRuntime, SeqRefRuntime>();
        restart_pair::<SeqRefRuntime, SwisstmRuntime>();
        restart_pair::<SeqRefRuntime, TlstmRuntime>();
        restart_pair::<SeqRefRuntime, SeqRefRuntime>();
    });
}

/// Concurrent durable sessions: the WAL re-sequences racing post-commit
/// appends into LSN order, so a clean restart reproduces the exact
/// committed state.
fn concurrent_restart_on<R: TxRuntime>() {
    {
        {
            let label = R::LABEL;
            let dir = TempDir::new("txkv-concurrent");
            let store = boot::<R>(
                dir.path(),
                &config(
                    FsyncPolicy::Group(std::time::Duration::from_millis(1)),
                    CrashPoints::disabled(),
                ),
            )
            .unwrap();
            std::thread::scope(|scope| {
                for thread in 0..3u64 {
                    let store = &store;
                    scope.spawn(move || {
                        let mut session = store.session();
                        let mut rng = TestRng::new(0xFEED ^ thread);
                        for _ in 0..20 {
                            let ops = gen_batch(&mut rng, 6);
                            session.batch(ops).unwrap();
                        }
                    });
                }
            });
            let before = dump(&store);
            assert_eq!(store.durable_lsn(), 60, "{label}: every batch acked");
            drop(store);

            let reopened = boot::<R>(
                dir.path(),
                &config(FsyncPolicy::Always, CrashPoints::disabled()),
            )
            .unwrap();
            assert_eq!(reopened.recovery().next_lsn, 60, "{label}");
            assert_eq!(
                dump(&reopened),
                before,
                "{label}: concurrent stream replay diverged"
            );
            reopened
                .store()
                .check_consistency(&mut reopened.server().direct())
                .unwrap();
        }
    }
}

#[test]
fn concurrent_sessions_survive_a_restart() {
    with_default_watchdog(|| {
        concurrent_restart_on::<SwisstmRuntime>();
        concurrent_restart_on::<TlstmRuntime>();
        concurrent_restart_on::<SeqRefRuntime>();
    });
}

/// Population is non-transactional and unlogged by design: without a
/// snapshot it does not survive a restart (recovery replays the log onto an
/// empty store). With a snapshot it does.
#[test]
fn populate_is_volatile_until_snapshotted() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txkv-populate");
        let cfg = config(FsyncPolicy::Always, CrashPoints::disabled());
        let store = DurableKvStore::swisstm(dir.path(), &cfg).unwrap();
        store.populate((0..32u64).map(|k| (k, vec![k, k])));
        let mut session = store.session();
        session.put(100, vec![1]).unwrap();
        drop(session);
        drop(store);

        // Without a snapshot the populated base is gone; the logged put
        // replays onto an empty store.
        let reopened = DurableKvStore::swisstm(dir.path(), &cfg).unwrap();
        assert_eq!(dump(&reopened), vec![(100, vec![1])]);
        reopened.populate((0..32u64).map(|k| (k, vec![k, k])));
        reopened.snapshot().unwrap();
        drop(reopened);

        let reopened = DurableKvStore::swisstm(dir.path(), &cfg).unwrap();
        assert_eq!(reopened.recovery().snapshot_lsn, Some(1));
        assert_eq!(dump(&reopened).len(), 33, "snapshot persists the base");
    });
}

/// Read-only batches skip the log entirely: no LSN is consumed, nothing is
/// appended, and they still work after the writer dies.
#[test]
fn read_only_batches_bypass_the_wal() {
    with_default_watchdog(|| {
        let dir = TempDir::new("txkv-readonly");
        let crash = CrashPoints::disabled();
        let store =
            DurableKvStore::swisstm(dir.path(), &config(FsyncPolicy::Always, crash.clone()))
                .unwrap();
        let mut session = store.session();
        session.put(5, vec![50]).unwrap();
        let replies = session
            .batch(vec![
                KvOp::Get { key: 5 },
                KvOp::Scan {
                    lo: 0,
                    hi: 10,
                    limit: 10,
                },
            ])
            .unwrap();
        assert_eq!(replies.len(), 2);
        assert_eq!(store.durable_lsn(), 1, "reads consumed no LSN");

        // Kill the writer; reads keep working, writes fail.
        crash.arm(crash_points::BEFORE_APPEND);
        assert_eq!(session.put(6, vec![60]).unwrap_err(), WalError::Crashed);
        assert_eq!(session.get(5), Some(vec![50]));
        assert_eq!(session.put(7, vec![70]).unwrap_err(), WalError::Crashed);
    });
}
