//! Graceful degradation under injected disk faults (ISSUE 8 acceptance
//! demo): a storage failure moves the store to `Health::Degraded` — the
//! in-flight batch gets the typed root cause, later writes fail fast
//! *before* their in-memory commit, reads keep serving the committed state
//! (oracle-checked), and `try_rearm` restores full write service in place
//! once the fault clears. An injected *crash* is `Health::Failed` and
//! deliberately not re-armable.

use std::io::ErrorKind;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Once};

use swisstm::SwisstmRuntime;
use tlstm_testutil::{with_default_watchdog, TempDir, TestRng};
use txkv::{
    CrashPoints, DurableKvConfig, DurableKvStore, Fault, FaultError, FaultFs, FsyncPolicy, Health,
    KvOp, KvServerConfig, KvStoreParams, RefStore, RetryPolicy, StorageOp, WalError,
};
use txlog::crash_points;
use txmem::{SeqRefRuntime, TxConfig, TxRuntime};

const SHARDS: u64 = 8;
const GROUPS: usize = 4;

/// Counts every panic anywhere in the process: degradation must be made of
/// typed errors, not unwinding stage threads.
static PANICS: AtomicUsize = AtomicUsize::new(0);

fn install_panic_counter() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            PANICS.fetch_add(1, Ordering::SeqCst);
            previous(info);
        }));
    });
}

fn config(fs: &FaultFs, fsync: FsyncPolicy) -> DurableKvConfig {
    DurableKvConfig {
        server: KvServerConfig {
            store: KvStoreParams {
                shards: SHARDS,
                expected_keys: 256,
            },
            batch_tasks: GROUPS,
            tx: TxConfig::small(),
        },
        fsync,
        crash_points: CrashPoints::disabled(),
        fs: Arc::new(fs.clone()),
        // No retries: the first injected error is surfaced as-is, so the
        // tests can pin exact outcomes (the retry path itself is covered by
        // txlog's fault matrix).
        retry: RetryPolicy::none(),
    }
}

fn clean_config(fsync: FsyncPolicy) -> DurableKvConfig {
    config(&FaultFs::new(), fsync)
}

/// One seeded batch whose first op is always a write, so every batch is
/// logged and batch index == LSN for a single session.
fn gen_batch(rng: &mut TestRng, ops: usize) -> Vec<KvOp> {
    let mut batch = Vec::with_capacity(ops);
    for i in 0..ops {
        let key = rng.below(64);
        let value = |rng: &mut TestRng| -> Vec<u64> { (0..3).map(|_| rng.next_u64()).collect() };
        let op = match if i == 0 { 40 } else { rng.below(100) } {
            0..=24 => KvOp::Get { key },
            25..=59 => KvOp::Put {
                key,
                value: value(rng),
            },
            60..=69 => KvOp::Delete { key },
            70..=84 => KvOp::Cas {
                key,
                expected: value(rng),
                new: value(rng),
            },
            _ => KvOp::Scan {
                lo: key,
                hi: key + 9,
                limit: 8,
            },
        };
        batch.push(op);
    }
    batch
}

fn dump<R: TxRuntime>(store: &DurableKvStore<R>) -> Vec<(u64, Vec<u64>)> {
    store
        .store()
        .dump(&mut store.server().direct())
        .expect("direct dump cannot abort")
}

/// Replays `batches` through the oracle.
fn oracle(batches: &[Vec<KvOp>]) -> RefStore {
    let mut oracle = RefStore::new(SHARDS);
    for ops in batches {
        oracle.batch(ops, GROUPS);
    }
    oracle
}

/// The log directory must never hold partial snapshot residue.
fn assert_no_stray_files(dir: &Path, context: &str) {
    for entry in std::fs::read_dir(dir).expect("log dir must be readable") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "{context}: stray temp file {name}");
    }
}

/// The full degradation story, on both fsync policies: healthy prefix →
/// storage fault → typed error on the in-flight batch → fail-fast refusals
/// that never touch storage or state → oracle-checked reads → failed rearm
/// while the fault persists → successful rearm after it clears → writes
/// resume through the *same* sessions → a restart agrees with the oracle.
fn degradation_demo_on<R: TxRuntime>(fsync: FsyncPolicy) {
    let context = format!("{}/{fsync}", R::LABEL);
    let dir = TempDir::new("txkv-fault");
    let fs = FaultFs::new();
    let plan = fs.plan();
    let store = DurableKvStore::<R>::boot(dir.path(), &config(&fs, fsync))
        .unwrap_or_else(|e| panic!("{context}: boot failed: {e}"));
    let mut session = store.session();
    let mut rng = TestRng::new(0xFA0172);

    // Phase 1: a healthy, acknowledged prefix.
    let mut applied = Vec::new();
    for _ in 0..4 {
        let ops = gen_batch(&mut rng, 10);
        applied.push(ops.clone());
        session
            .batch(ops)
            .unwrap_or_else(|e| panic!("{context}: healthy batch failed: {e}"));
    }
    assert_eq!(store.health(), Health::Healthy, "{context}");
    assert_eq!(store.durable_lsn(), 4, "{context}");

    // Phase 2: the disk starts failing every write. The in-flight batch
    // gets the root cause; its in-memory commit stands (the oracle includes
    // it), but it is not acknowledged as durable.
    plan.arm(StorageOp::Write, Fault::forever(FaultError::Eio));
    let ops = gen_batch(&mut rng, 10);
    applied.push(ops.clone());
    assert_eq!(
        session.batch(ops).unwrap_err(),
        WalError::storage(StorageOp::Write, ErrorKind::Other),
        "{context}: in-flight batch must carry the root cause"
    );
    assert_eq!(
        store.health(),
        Health::Degraded(WalError::storage(StorageOp::Write, ErrorKind::Other)),
        "{context}"
    );
    assert!(store.is_dead(), "{context}");
    assert_eq!(
        store.durable_lsn(),
        4,
        "{context}: failed write must not ack"
    );

    // Phase 3: later writes are refused up front — no storage traffic, no
    // in-memory commit, no sequence number consumed.
    let touched = plan.fired_count(StorageOp::Write);
    for _ in 0..3 {
        let refused = gen_batch(&mut rng, 10); // deliberately NOT in `applied`
        assert_eq!(
            session.batch(refused).unwrap_err(),
            WalError::Degraded,
            "{context}: degraded writes must fail fast"
        );
    }
    assert_eq!(
        plan.fired_count(StorageOp::Write),
        touched,
        "{context}: refusals must not touch storage"
    );

    // Phase 4: reads keep serving the committed in-memory state, checked
    // against the oracle — gets, scans, and read-only batches all work.
    let expect = oracle(&applied);
    assert_eq!(dump(&store), expect.dump(), "{context}: degraded state");
    for (key, value) in expect.dump().into_iter().take(8) {
        assert_eq!(session.get(key), Some(value), "{context}: degraded get");
    }
    assert_eq!(
        session.scan(0, 64, 100),
        expect.scan(0, 64, 100),
        "{context}: degraded scan"
    );
    session
        .batch(vec![
            KvOp::Get { key: 1 },
            KvOp::Scan {
                lo: 0,
                hi: 9,
                limit: 4,
            },
        ])
        .unwrap_or_else(|e| panic!("{context}: read-only batch refused: {e}"));

    // Phase 5: snapshots are refused with the typed root cause, before any
    // file is created; a rearm attempt while the fault persists fails and
    // leaves the store degraded — and neither leaves partial files behind.
    let error = store.snapshot().unwrap_err();
    assert_eq!(error.kind(), ErrorKind::Other, "{context}: {error}");
    assert!(
        txlog::list_snapshots(dir.path()).unwrap().is_empty(),
        "{context}: refused snapshot left a file"
    );
    assert!(store.try_rearm().is_err(), "{context}: fault still armed");
    assert_ne!(store.health(), Health::Healthy, "{context}");
    assert_no_stray_files(dir.path(), &context);

    // Phase 6: the fault clears; rearm snapshots the full committed state
    // (including the never-acknowledged batch) onto a fresh segment and
    // restores service — through the sessions that already exist.
    plan.clear();
    assert!(store.try_rearm().unwrap(), "{context}: rearm must succeed");
    assert_eq!(store.health(), Health::Healthy, "{context}");
    assert!(!store.is_dead(), "{context}");
    let ops = gen_batch(&mut rng, 10);
    applied.push(ops.clone());
    session
        .batch(ops)
        .unwrap_or_else(|e| panic!("{context}: post-rearm batch failed: {e}"));
    assert_eq!(dump(&store), oracle(&applied).dump(), "{context}");
    assert_eq!(store.durable_lsn(), 6, "{context}: 5 logged + 1 post-rearm");
    drop(session);
    drop(store);

    // Phase 7: a restart recovers through the rearm snapshot to the exact
    // oracle state.
    let recovered = DurableKvStore::<R>::boot(dir.path(), &clean_config(fsync))
        .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
    assert_eq!(recovered.recovery().snapshot_lsn, Some(5), "{context}");
    assert_eq!(
        dump(&recovered),
        oracle(&applied).dump(),
        "{context}: restart diverges from the oracle"
    );
    recovered
        .store()
        .check_consistency(&mut recovered.server().direct())
        .unwrap();
}

#[test]
fn a_storage_fault_degrades_reads_survive_and_rearm_restores_service() {
    install_panic_counter();
    with_default_watchdog(|| {
        for fsync in [
            FsyncPolicy::Always,
            FsyncPolicy::Group(std::time::Duration::from_millis(1)),
        ] {
            degradation_demo_on::<SwisstmRuntime>(fsync);
            degradation_demo_on::<SeqRefRuntime>(fsync);
        }
    });
    assert_eq!(
        PANICS.load(Ordering::SeqCst),
        0,
        "degradation must be typed errors, not panics"
    );
}

/// A failed fsync degrades the store without ever acknowledging the batch
/// the fsync should have covered (the fsyncgate rule, surfaced at the store
/// level), and the store re-arms once the disk recovers.
#[test]
fn a_failed_fsync_degrades_without_acking() {
    install_panic_counter();
    with_default_watchdog(|| {
        let dir = TempDir::new("txkv-fault-fsync");
        let fs = FaultFs::new();
        let plan = fs.plan();
        let store =
            DurableKvStore::<SwisstmRuntime>::boot(dir.path(), &config(&fs, FsyncPolicy::Always))
                .unwrap();
        let mut session = store.session();
        let mut rng = TestRng::new(0xF57C);
        let mut applied = Vec::new();
        for _ in 0..3 {
            let ops = gen_batch(&mut rng, 8);
            applied.push(ops.clone());
            session.batch(ops).unwrap();
        }
        plan.arm(StorageOp::Fsync, Fault::once(FaultError::Enospc));
        let ops = gen_batch(&mut rng, 8);
        applied.push(ops.clone());
        assert_eq!(
            session.batch(ops).unwrap_err(),
            WalError::storage(StorageOp::Fsync, ErrorKind::StorageFull)
        );
        assert_eq!(
            store.durable_lsn(),
            3,
            "a failed fsync must never advance the acknowledged prefix"
        );
        assert_eq!(
            store.health(),
            Health::Degraded(WalError::storage(StorageOp::Fsync, ErrorKind::StorageFull))
        );
        // The fault budget is already spent, so the rearm goes through
        // directly and the store serves again.
        assert!(store.try_rearm().unwrap());
        let ops = gen_batch(&mut rng, 8);
        applied.push(ops.clone());
        session.batch(ops).unwrap();
        assert_eq!(dump(&store), oracle(&applied).dump());
    });
    assert_eq!(PANICS.load(Ordering::SeqCst), 0);
}

/// Restarting a degraded store *without* re-arming recovers exactly the
/// acknowledged prefix: the failed record never reached the log, so the
/// un-acked in-memory commit is gone — the documented contract.
#[test]
fn restart_without_rearm_recovers_the_acked_prefix() {
    install_panic_counter();
    with_default_watchdog(|| {
        let dir = TempDir::new("txkv-fault-restart");
        let fs = FaultFs::new();
        let plan = fs.plan();
        let store =
            DurableKvStore::<SwisstmRuntime>::boot(dir.path(), &config(&fs, FsyncPolicy::Always))
                .unwrap();
        let mut session = store.session();
        let mut rng = TestRng::new(0x2E57A27);
        let mut acked = Vec::new();
        for _ in 0..3 {
            let ops = gen_batch(&mut rng, 8);
            acked.push(ops.clone());
            session.batch(ops).unwrap();
        }
        plan.arm(StorageOp::Write, Fault::forever(FaultError::Eio));
        let err = session.batch(gen_batch(&mut rng, 8)).unwrap_err();
        assert_eq!(err, WalError::storage(StorageOp::Write, ErrorKind::Other));
        drop(session);
        drop(store);

        let recovered =
            DurableKvStore::<SwisstmRuntime>::boot(dir.path(), &clean_config(FsyncPolicy::Always))
                .unwrap();
        assert_eq!(recovered.recovery().next_lsn, 3);
        assert_eq!(dump(&recovered), oracle(&acked).dump());
    });
    assert_eq!(PANICS.load(Ordering::SeqCst), 0);
}

/// A crashed writer is `Health::Failed`: reads still serve, but rearm is
/// refused — an injected crash simulates process death, and only a restart
/// plus recovery brings the store back.
#[test]
fn a_crashed_store_refuses_rearm() {
    install_panic_counter();
    with_default_watchdog(|| {
        let dir = TempDir::new("txkv-fault-crash");
        let crash = CrashPoints::disabled();
        let mut cfg = clean_config(FsyncPolicy::Always);
        cfg.crash_points = crash.clone();
        let store = DurableKvStore::<SwisstmRuntime>::boot(dir.path(), &cfg).unwrap();
        let mut session = store.session();
        session.put(1, vec![10]).unwrap();
        crash.arm(crash_points::BEFORE_APPEND);
        assert_eq!(session.put(2, vec![20]).unwrap_err(), WalError::Crashed);
        assert_eq!(store.health(), Health::Failed);
        // Every later write is `Crashed` (not `Degraded`): the process
        // "died", nothing was merely poisoned.
        assert_eq!(session.put(3, vec![30]).unwrap_err(), WalError::Crashed);
        assert_eq!(session.get(1), Some(vec![10]), "reads must survive");
        assert!(store.try_rearm().is_err());
        let error = store.snapshot().unwrap_err();
        assert_eq!(error.kind(), ErrorKind::Other, "{error}");
        assert_no_stray_files(dir.path(), "crashed snapshot");
    });
    assert_eq!(PANICS.load(Ordering::SeqCst), 0);
}
