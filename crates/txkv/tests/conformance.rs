//! Conformance: identical seeded operation streams through `KvStore` on
//! every registered runtime — SwissTM, TLSTM (including the batched
//! task-split mode), and the sequential `seqref` reference — must produce
//! exactly the replies and final contents of the sequential `RefStore`
//! oracle, and must agree with each other pairwise.

use swisstm::SwisstmRuntime;
use tlstm::TlstmRuntime;
use tlstm_testutil::{with_default_watchdog, TestRng};
use txkv::{KvOp, KvServer, KvServerConfig, KvStoreParams, RefStore};
use txmem::{SeqRefRuntime, TxConfig, TxRuntime};

const SHARDS: u64 = 8;

fn config(batch_tasks: usize) -> KvServerConfig {
    KvServerConfig {
        store: KvStoreParams {
            shards: SHARDS,
            expected_keys: 512,
        },
        batch_tasks,
        tx: TxConfig::small(),
    }
}

/// Generates one operation over a small key space so streams revisit keys.
fn gen_op(rng: &mut TestRng, key_space: u64, value_words: u64) -> KvOp {
    let key = rng.below(key_space);
    let value =
        |rng: &mut TestRng| -> Vec<u64> { (0..value_words).map(|_| rng.next_u64()).collect() };
    match rng.below(100) {
        0..=34 => KvOp::Get { key },
        35..=64 => KvOp::Put {
            key,
            value: value(rng),
        },
        65..=74 => KvOp::Delete { key },
        75..=89 => KvOp::Cas {
            key,
            expected: value(rng),
            new: value(rng),
        },
        _ => {
            let lo = rng.below(key_space);
            KvOp::Scan {
                lo,
                hi: lo + rng.below(16) + 1,
                limit: 8,
            }
        }
    }
}

fn gen_batch(rng: &mut TestRng, ops: usize) -> Vec<KvOp> {
    (0..ops).map(|_| gen_op(rng, 64, 3)).collect()
}

/// Runs `batches` seeded batches through a server and the oracle, asserting
/// reply-for-reply and state-for-state equality.
fn run_stream_against_oracle<R: TxRuntime>(
    server: &KvServer<R>,
    seed: u64,
    batches: usize,
    batch_len: usize,
) {
    let label = server.runtime_label();
    let tasks = server.batch_tasks();
    let mut oracle = RefStore::new(SHARDS);
    let mut session = server.session();
    let mut rng = TestRng::new(seed);
    for batch_no in 0..batches {
        let ops = gen_batch(&mut rng, batch_len);
        let got = session.batch(ops.clone());
        let want = oracle.batch(&ops, tasks);
        assert_eq!(
            got, want,
            "{label}/k{tasks}: replies diverged at batch {batch_no}"
        );
    }
    assert_eq!(
        server.store().dump(&mut server.direct()).unwrap(),
        oracle.dump(),
        "{label}/k{tasks}: final contents diverged"
    );
    server
        .store()
        .check_consistency(&mut server.direct())
        .unwrap();
}

#[test]
fn swisstm_store_matches_oracle_on_seeded_streams() {
    with_default_watchdog(|| {
        for seed in [1u64, 0xBEEF, 42] {
            let server = KvServer::swisstm(&config(1));
            run_stream_against_oracle(&server, seed, 40, 12);
        }
    });
}

#[test]
fn swisstm_planned_batches_match_oracle() {
    // Same streams, but planned into 4 shard-groups (the grouping SwissTM
    // shares with a 4-task TLSTM server).
    with_default_watchdog(|| {
        for seed in [1u64, 0xBEEF, 42] {
            let server = KvServer::swisstm(&config(4));
            run_stream_against_oracle(&server, seed, 40, 12);
        }
    });
}

#[test]
fn tlstm_task_split_batches_match_oracle() {
    with_default_watchdog(|| {
        for (seed, tasks) in [(1u64, 2usize), (0xBEEF, 4), (42, 4)] {
            let server = KvServer::tlstm(&config(tasks));
            run_stream_against_oracle(&server, seed, 40, 12);
        }
    });
}

#[test]
fn seqref_store_matches_oracle_on_seeded_streams() {
    // The sequential reference runtime runs the same batch plans with a
    // global lock; it is the conformance floor every other runtime is
    // compared against.
    with_default_watchdog(|| {
        for (seed, tasks) in [(1u64, 1usize), (0xBEEF, 4), (42, 2)] {
            let server = KvServer::seqref(&config(tasks));
            run_stream_against_oracle(&server, seed, 40, 12);
        }
    });
}

/// A stream's observable outcome: per-batch replies plus the final committed
/// contents, so runtimes can be compared pairwise.
type StreamOutcome = (Vec<Vec<txkv::KvReply>>, Vec<(u64, Vec<u64>)>);

/// Replays one seeded stream on a server and returns its [`StreamOutcome`].
fn replay_stream<R: TxRuntime>(tasks: usize, seed: u64, batches: usize) -> StreamOutcome {
    let server = KvServer::<R>::new(&config(tasks));
    let mut session = server.session();
    let mut rng = TestRng::new(seed);
    let replies = (0..batches)
        .map(|_| session.batch(gen_batch(&mut rng, 10)))
        .collect();
    drop(session);
    let dump = server.store().dump(&mut server.direct()).unwrap();
    (replies, dump)
}

#[test]
fn all_runtimes_agree_with_each_other_on_the_same_stream() {
    // Servers with the same batch grouping execute the same plan, so every
    // runtime pair must agree reply-for-reply and state-for-state, not just
    // with the oracle.
    with_default_watchdog(|| {
        let (tasks, seed, batches) = (4, 7, 30);
        let swisstm = replay_stream::<SwisstmRuntime>(tasks, seed, batches);
        let tlstm = replay_stream::<TlstmRuntime>(tasks, seed, batches);
        let seqref = replay_stream::<SeqRefRuntime>(tasks, seed, batches);
        assert_eq!(swisstm, tlstm, "swisstm vs tlstm diverged");
        assert_eq!(swisstm, seqref, "swisstm vs seqref diverged");
        assert_eq!(tlstm, seqref, "tlstm vs seqref diverged");
    });
}

/// Hammers one server from several client threads, then checks structural
/// invariants. (Reply conformance is single-threaded by nature; this pins
/// shard-map/index integrity under real concurrency.)
fn hammer_concurrently<R: TxRuntime>() {
    let server = KvServer::<R>::new(&config(2));
    server.populate((0..64u64).map(|k| (k, vec![k])));
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let server = &server;
            scope.spawn(move || {
                let mut session = server.session();
                let mut rng = TestRng::new(0x5EED ^ t);
                for _ in 0..60 {
                    let ops = gen_batch(&mut rng, 8);
                    session.batch(ops);
                }
            });
        }
    });
    let keys = server
        .store()
        .check_consistency(&mut server.direct())
        .unwrap();
    assert_eq!(keys, server.store().len(&mut server.direct()).unwrap());
    let label = server.runtime_label();
    let stats = server.stats();
    assert!(stats.tx_commits >= 180, "{label}: all batches committed");
}

#[test]
fn concurrent_sessions_preserve_store_invariants() {
    with_default_watchdog(|| {
        hammer_concurrently::<SwisstmRuntime>();
        hammer_concurrently::<TlstmRuntime>();
        hammer_concurrently::<SeqRefRuntime>();
    });
}
