//! Cross-shard atomicity: a multi-key batch — in particular a multi-key
//! `cas` batch in TLSTM's task-split mode, where each key's update runs in a
//! *different speculative task* — must commit all-or-nothing, and no
//! concurrent transaction may ever observe a torn cross-shard state.

use tlstm_testutil::{bounded_threads, with_default_watchdog, TestRng};
use txkv::{shard_of, KvOp, KvReply, KvServer, KvServerConfig, KvStoreParams};
use txmem::{SeqRefRuntime, TxConfig, TxRuntime};

const SHARDS: u64 = 8;

fn config(batch_tasks: usize) -> KvServerConfig {
    KvServerConfig {
        store: KvStoreParams {
            shards: SHARDS,
            expected_keys: 64,
        },
        batch_tasks,
        tx: TxConfig::small(),
    }
}

/// Finds `n` keys that all live on pairwise different shards, so a batch
/// over them is genuinely cross-shard.
fn keys_on_distinct_shards(n: usize) -> Vec<u64> {
    let mut keys = Vec::new();
    let mut used = std::collections::HashSet::new();
    let mut candidate = 0u64;
    while keys.len() < n {
        let shard = shard_of(candidate, SHARDS);
        if used.insert(shard) {
            keys.push(candidate);
        }
        candidate += 1;
    }
    keys
}

/// Writers advance every key of a cross-shard group from `v` to `v+1` with
/// one multi-key cas batch; readers assert all keys always agree. A torn
/// commit (some cas applied, some not) would break both sides.
fn torn_state_hunt<R: TxRuntime>(server: &KvServer<R>, batch_tasks: usize) {
    let label = server.runtime_label();
    let keys = keys_on_distinct_shards(4);
    server.populate(keys.iter().map(|&k| (k, vec![0])));
    let writer_threads = bounded_threads(2).max(1);
    let reader_threads = bounded_threads(2).max(1);
    let rounds = 150;

    std::thread::scope(|scope| {
        for w in 0..writer_threads {
            let server = &server;
            let keys = &keys;
            scope.spawn(move || {
                let mut session = server.session();
                let mut advanced = 0u64;
                let mut rng = TestRng::new(0xA110 + w as u64);
                while advanced < rounds {
                    // Read the current (consistent) version...
                    let current = match session.get(keys[0]) {
                        Some(v) => v[0],
                        None => panic!("{label}: key vanished"),
                    };
                    // ...then try to advance every key with one atomic
                    // multi-key cas batch.
                    let ops: Vec<KvOp> = keys
                        .iter()
                        .map(|&key| KvOp::Cas {
                            key,
                            expected: vec![current],
                            new: vec![current + 1],
                        })
                        .collect();
                    let replies = session.batch(ops);
                    let swapped: Vec<bool> = replies
                        .iter()
                        .map(|r| match r {
                            KvReply::Swapped(s) => *s,
                            other => panic!("{label}: unexpected reply {other:?}"),
                        })
                        .collect();
                    // All-or-nothing: the cas-es share one snapshot, so they
                    // either all see `current` or all see a newer value.
                    assert!(
                        swapped.iter().all(|&s| s) || swapped.iter().all(|&s| !s),
                        "{label}: torn multi-key cas batch: {swapped:?}"
                    );
                    if swapped[0] {
                        advanced += 1;
                    }
                    if rng.percent(10) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        for r in 0..reader_threads {
            let server = &server;
            let keys = &keys;
            scope.spawn(move || {
                let mut session = server.session();
                for _ in 0..rounds * 4 {
                    let ops: Vec<KvOp> = keys.iter().map(|&key| KvOp::Get { key }).collect();
                    let replies = session.batch(ops);
                    let values: Vec<u64> = replies
                        .iter()
                        .map(|reply| match reply {
                            KvReply::Value(Some(v)) => v[0],
                            other => panic!("{label}: unexpected reply {other:?}"),
                        })
                        .collect();
                    assert!(
                        values.windows(2).all(|w| w[0] == w[1]),
                        "{label} (reader {r}, k{batch_tasks}): observed torn \
                         cross-shard state {values:?}"
                    );
                }
            });
        }
    });

    // Every writer advanced the group `rounds` times, all-or-nothing.
    let mut mem = server.direct();
    let final_values: Vec<u64> = keys
        .iter()
        .map(|&k| server.store().get(&mut mem, k).unwrap().unwrap()[0])
        .collect();
    assert!(
        final_values.windows(2).all(|w| w[0] == w[1]),
        "{label}: final state is torn: {final_values:?}"
    );
    assert_eq!(
        final_values[0],
        rounds * writer_threads as u64,
        "{label}: lost updates"
    );
}

#[test]
fn swisstm_multi_key_cas_is_never_torn() {
    with_default_watchdog(|| {
        let server = KvServer::swisstm(&config(1));
        torn_state_hunt(&server, 1);
    });
}

#[test]
fn tlstm_task_split_multi_key_cas_is_never_torn() {
    // The adversarial case: each cas of the batch runs in its own
    // speculative task (4 tasks, 4 shards), yet the batch must stay atomic.
    with_default_watchdog(|| {
        let server = KvServer::tlstm(&config(4));
        torn_state_hunt(&server, 4);
    });
}

#[test]
fn seqref_multi_key_cas_is_never_torn() {
    // The sequential reference runtime serializes batches behind a global
    // lock, so tearing is impossible by construction — this pins that the
    // shared harness agrees.
    with_default_watchdog(|| {
        let server = KvServer::seqref(&config(2));
        torn_state_hunt(&server, 2);
    });
}

/// Classic write-skew shape, spread across shards: two keys must always
/// sum to a constant. Transfers move value between them in one batch;
/// auditors assert the invariant inside their own transactions.
fn write_skew_hunt<R: TxRuntime>() {
    let server = KvServer::<R>::new(&config(2));
    let label = server.runtime_label();
    let keys = keys_on_distinct_shards(2);
    let (a, b) = (keys[0], keys[1]);
    const TOTAL: u64 = 1000;
    server.populate([(a, vec![TOTAL / 2]), (b, vec![TOTAL / 2])]);

    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let server = &server;
            scope.spawn(move || {
                let mut session = server.session();
                let mut rng = TestRng::new(0x7AB5 ^ t);
                for _ in 0..200 {
                    // Snapshot both balances…
                    let replies = session.batch(vec![KvOp::Get { key: a }, KvOp::Get { key: b }]);
                    let (va, vb) = match (&replies[0], &replies[1]) {
                        (KvReply::Value(Some(va)), KvReply::Value(Some(vb))) => (va[0], vb[0]),
                        other => panic!("{label}: unexpected replies {other:?}"),
                    };
                    assert_eq!(va + vb, TOTAL, "{label}: snapshot is torn");
                    // …and move a random amount with a guarded batch: both
                    // cas-es must see the same snapshot or fail together.
                    let amount = rng.below(va + 1);
                    let replies = session.batch(vec![
                        KvOp::Cas {
                            key: a,
                            expected: vec![va],
                            new: vec![va - amount],
                        },
                        KvOp::Cas {
                            key: b,
                            expected: vec![vb],
                            new: vec![vb + amount],
                        },
                    ]);
                    let applied: Vec<bool> = replies
                        .iter()
                        .map(|r| matches!(r, KvReply::Swapped(true)))
                        .collect();
                    assert!(
                        applied.iter().all(|&s| s) || applied.iter().all(|&s| !s),
                        "{label}: half-applied transfer {applied:?}"
                    );
                }
            });
        }
    });

    let mut mem = server.direct();
    let va = server.store().get(&mut mem, a).unwrap().unwrap()[0];
    let vb = server.store().get(&mut mem, b).unwrap().unwrap()[0];
    assert_eq!(va + vb, TOTAL, "{label}: invariant broken at rest");
}

#[test]
fn write_skew_style_cross_shard_invariant_holds() {
    with_default_watchdog(|| {
        write_skew_hunt::<swisstm::SwisstmRuntime>();
        write_skew_hunt::<tlstm::TlstmRuntime>();
        write_skew_hunt::<SeqRefRuntime>();
    });
}
