//! The sharded transactional key-value store.
//!
//! A [`KvStore`] is a thin `Copy` handle (like every `txcollections`
//! structure) to heap-resident state:
//!
//! * a *shard directory* block `[n_shards, index_hdr, shard_0_hdr, ...]`;
//! * one pre-sized [`TxHashMap`] per shard — the primary index, chosen by a
//!   key hash that is independent of the in-shard bucket hash;
//! * one [`TxRbTree`] secondary index over *all* keys — the ordered view that
//!   serves `scan(lo..hi)`.
//!
//! Values are whole-word records `[len, w_0, ..., w_{len-1}]` in the
//! transactional heap; both indexes store the record address. Overwrites of a
//! same-length value update the record in place (no allocation in steady
//! state), so a fixed-value-size workload runs allocation-free after warmup.
//!
//! Every operation takes `&mut M: TxMem`, so the same store code runs inside
//! SwissTM transactions, TLSTM tasks, and non-transactional `DirectMem`
//! initialisation.

use txcollections::{TxHashMap, TxRbTree};
use txmem::{Abort, TxMem, WordAddr};

use crate::ops::{checksum_word, shard_of, KvOp, KvReply, CHECKSUM_SEED, MAX_SHARDS};

const DIR_SHARDS: u64 = 0;
const DIR_INDEX: u64 = 1;
const DIR_TABLE: u64 = 2;

/// Record layout: `len` followed by the value words.
const REC_LEN: u64 = 0;
const REC_WORDS: u64 = 1;

/// Handle to a sharded transactional key-value store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvStore {
    dir: WordAddr,
    n_shards: u64,
}

/// Sizing parameters of a store.
#[derive(Debug, Clone, Copy)]
pub struct KvStoreParams {
    /// Number of hash shards (clamped to `1..=MAX_SHARDS`).
    pub shards: u64,
    /// Expected number of resident keys; each shard's bucket table is
    /// pre-sized for its portion so chains stay short without rehashing.
    pub expected_keys: u64,
}

impl Default for KvStoreParams {
    fn default() -> Self {
        KvStoreParams {
            shards: 16,
            expected_keys: 16 * 1024,
        }
    }
}

impl KvStore {
    /// Allocates an empty store with `params.shards` pre-sized shards.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure from the underlying memory.
    pub fn create<M: TxMem + ?Sized>(mem: &mut M, params: &KvStoreParams) -> Result<Self, Abort> {
        let n_shards = params.shards.clamp(1, MAX_SHARDS);
        let dir = mem.alloc(DIR_TABLE + n_shards)?;
        mem.write(dir.offset(DIR_SHARDS), n_shards)?;
        let index = TxRbTree::create(mem)?;
        mem.write(dir.offset(DIR_INDEX), index.header().index())?;
        let per_shard = (params.expected_keys / n_shards).max(1);
        for s in 0..n_shards {
            let shard = TxHashMap::with_capacity(mem, per_shard)?;
            mem.write(dir.offset(DIR_TABLE + s), shard.header().index())?;
        }
        Ok(KvStore { dir, n_shards })
    }

    /// Re-opens a store from its directory address (e.g. from another
    /// thread's handle).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn open<M: TxMem + ?Sized>(mem: &mut M, dir: WordAddr) -> Result<Self, Abort> {
        let n_shards = mem.read(dir.offset(DIR_SHARDS))?;
        Ok(KvStore { dir, n_shards })
    }

    /// The heap address of the shard directory.
    pub fn dir(&self) -> WordAddr {
        self.dir
    }

    /// Number of hash shards.
    pub fn shards(&self) -> u64 {
        self.n_shards
    }

    /// The shard a key lives in.
    pub fn shard_of(&self, key: u64) -> u64 {
        shard_of(key, self.n_shards)
    }

    fn shard<M: TxMem + ?Sized>(&self, mem: &mut M, shard: u64) -> Result<TxHashMap, Abort> {
        let header = mem.read(self.dir.offset(DIR_TABLE + shard))?;
        Ok(TxHashMap::from_header(WordAddr::new(header)))
    }

    fn shard_for_key<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<TxHashMap, Abort> {
        let shard = self.shard_of(key);
        self.shard(mem, shard)
    }

    fn index<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<TxRbTree, Abort> {
        let header = mem.read(self.dir.offset(DIR_INDEX))?;
        Ok(TxRbTree::from_header(WordAddr::new(header)))
    }

    /// Total number of resident keys (sums the shard sizes).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<u64, Abort> {
        let mut total = 0;
        for s in 0..self.n_shards {
            total += self.shard(mem, s)?.len(mem)?;
        }
        Ok(total)
    }

    /// Reads the value of `key` into `buf` (cleared first). Returns `true`
    /// if the key was present. This is the allocation-free read path the
    /// workload drivers use.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get_into<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        key: u64,
        buf: &mut Vec<u64>,
    ) -> Result<bool, Abort> {
        buf.clear();
        let map = self.shard_for_key(mem, key)?;
        match map.get(mem, key)? {
            None => Ok(false),
            Some(record) => {
                let record = WordAddr::new(record);
                let len = mem.read(record.offset(REC_LEN))?;
                buf.reserve(len as usize);
                for i in 0..len {
                    buf.push(mem.read(record.offset(REC_WORDS + i))?);
                }
                Ok(true)
            }
        }
    }

    /// Reads the value of `key`.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<Option<Vec<u64>>, Abort> {
        let mut buf = Vec::new();
        Ok(self.get_into(mem, key, &mut buf)?.then_some(buf))
    }

    /// Inserts or overwrites `key → value`. Returns `true` if the key was
    /// newly inserted. Overwrites reuse the existing record when the value
    /// length is unchanged.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn put<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        key: u64,
        value: &[u64],
    ) -> Result<bool, Abort> {
        let map = self.shard_for_key(mem, key)?;
        if let Some(record) = map.get(mem, key)? {
            let record = WordAddr::new(record);
            let len = mem.read(record.offset(REC_LEN))?;
            if len == value.len() as u64 {
                for (i, &word) in value.iter().enumerate() {
                    mem.write(record.offset(REC_WORDS + i as u64), word)?;
                }
                return Ok(false);
            }
        }
        let record = self.write_record(mem, value)?;
        map.insert(mem, key, record.index())?;
        let index = self.index(mem)?;
        index.insert(mem, key, record.index())
    }

    fn write_record<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        value: &[u64],
    ) -> Result<WordAddr, Abort> {
        let record = mem.alloc(REC_WORDS + value.len() as u64)?;
        mem.write(record.offset(REC_LEN), value.len() as u64)?;
        for (i, &word) in value.iter().enumerate() {
            mem.write(record.offset(REC_WORDS + i as u64), word)?;
        }
        Ok(record)
    }

    /// Removes `key`. Returns `true` if it was present. The record block is
    /// leaked (matching `txmem`'s research-prototype allocation model).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn delete<M: TxMem + ?Sized>(&self, mem: &mut M, key: u64) -> Result<bool, Abort> {
        let map = self.shard_for_key(mem, key)?;
        if !map.remove(mem, key)? {
            return Ok(false);
        }
        let index = self.index(mem)?;
        index.remove(mem, key)?;
        Ok(true)
    }

    /// Compare-and-swap: replaces the value of `key` with `new` iff the
    /// current value equals `expected` word-for-word. Fails (returns `false`)
    /// if the key is absent.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn cas<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        key: u64,
        expected: &[u64],
        new: &[u64],
    ) -> Result<bool, Abort> {
        let map = self.shard_for_key(mem, key)?;
        let record = match map.get(mem, key)? {
            None => return Ok(false),
            Some(record) => WordAddr::new(record),
        };
        let len = mem.read(record.offset(REC_LEN))?;
        if len != expected.len() as u64 {
            return Ok(false);
        }
        for (i, &want) in expected.iter().enumerate() {
            if mem.read(record.offset(REC_WORDS + i as u64))? != want {
                return Ok(false);
            }
        }
        if new.len() as u64 == len {
            for (i, &word) in new.iter().enumerate() {
                mem.write(record.offset(REC_WORDS + i as u64), word)?;
            }
        } else {
            let fresh = self.write_record(mem, new)?;
            map.insert(mem, key, fresh.index())?;
            let index = self.index(mem)?;
            index.insert(mem, key, fresh.index())?;
        }
        Ok(true)
    }

    /// Ordered scan: appends up to `limit` `(key, checksum(value))` pairs for
    /// keys in `lo..hi`, ascending, to `out`. Reads every value word, so scan
    /// cost is proportional to the data scanned (the YCSB scan shape).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn scan_into<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        lo: u64,
        hi: u64,
        limit: u64,
        out: &mut Vec<(u64, u64)>,
    ) -> Result<(), Abort> {
        let index = self.index(mem)?;
        // One pruned in-order walk (O(log n + limit) node visits) appends
        // `(key, record_addr)` pairs to `out`; the addresses are then
        // replaced by value digests in place, so the scan needs no buffer
        // beyond `out` itself.
        let start = out.len();
        index.range_into(mem, lo, hi, limit, out)?;
        for hit in out[start..].iter_mut() {
            let record = WordAddr::new(hit.1);
            let len = mem.read(record.offset(REC_LEN))?;
            let mut digest = CHECKSUM_SEED;
            for i in 0..len {
                digest = checksum_word(digest, mem.read(record.offset(REC_WORDS + i))?);
            }
            hit.1 = digest;
        }
        Ok(())
    }

    /// Ordered scan, collected (see [`Self::scan_into`]).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn scan<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        lo: u64,
        hi: u64,
        limit: u64,
    ) -> Result<Vec<(u64, u64)>, Abort> {
        let mut out = Vec::new();
        self.scan_into(mem, lo, hi, limit, &mut out)?;
        Ok(out)
    }

    /// Executes one operation and produces its reply.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn apply<M: TxMem + ?Sized>(&self, mem: &mut M, op: &KvOp) -> Result<KvReply, Abort> {
        match op {
            KvOp::Get { key } => Ok(KvReply::Value(self.get(mem, *key)?)),
            KvOp::Put { key, value } => Ok(KvReply::Inserted(self.put(mem, *key, value)?)),
            KvOp::Delete { key } => Ok(KvReply::Removed(self.delete(mem, *key)?)),
            KvOp::Cas { key, expected, new } => {
                Ok(KvReply::Swapped(self.cas(mem, *key, expected, new)?))
            }
            KvOp::Scan { lo, hi, limit } => Ok(KvReply::Scan(self.scan(mem, *lo, *hi, *limit)?)),
        }
    }

    /// Dumps the full store contents in ascending key order (conformance
    /// helper: comparable against [`crate::RefStore::dump`]).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn dump<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<Vec<(u64, Vec<u64>)>, Abort> {
        let index = self.index(mem)?;
        let mut out = Vec::new();
        for (key, record) in index.to_vec(mem)? {
            let record = WordAddr::new(record);
            let len = mem.read(record.offset(REC_LEN))?;
            let mut value = Vec::with_capacity(len as usize);
            for i in 0..len {
                value.push(mem.read(record.offset(REC_WORDS + i))?);
            }
            out.push((key, value));
        }
        Ok(out)
    }

    /// Dumps one shard's contents, sorted by key (the snapshot building
    /// block: a consistent snapshot walks the shards inside one transaction).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn dump_shard<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        shard: u64,
    ) -> Result<Vec<(u64, Vec<u64>)>, Abort> {
        let map = self.shard(mem, shard)?;
        let mut out = Vec::new();
        for (key, record) in map.to_vec(mem)? {
            let record = WordAddr::new(record);
            let len = mem.read(record.offset(REC_LEN))?;
            let mut value = Vec::with_capacity(len as usize);
            for i in 0..len {
                value.push(mem.read(record.offset(REC_WORDS + i))?);
            }
            out.push((key, value));
        }
        out.sort_unstable_by_key(|&(key, _)| key);
        Ok(out)
    }

    /// Checks the cross-structure invariants: the ordered index holds exactly
    /// the keys of the shard maps, both point at the same records, and every
    /// key hashes to the shard that holds it. Returns the number of keys.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated (test/diagnostic helper).
    pub fn check_consistency<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<u64, Abort> {
        let mut shard_entries = Vec::new();
        for s in 0..self.n_shards {
            let map = self.shard(mem, s)?;
            let entries = map.to_vec(mem)?;
            assert_eq!(
                entries.len() as u64,
                map.len(mem)?,
                "shard {s} size counter drifted"
            );
            for (key, record) in entries {
                assert_eq!(self.shard_of(key), s, "key {key} is in the wrong shard");
                shard_entries.push((key, record));
            }
        }
        shard_entries.sort_unstable();
        let index_entries = self.index(mem)?.to_vec(mem)?;
        assert_eq!(
            shard_entries, index_entries,
            "ordered index and shard maps disagree"
        );
        Ok(shard_entries.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::checksum;
    use txmem::{DirectMem, TxConfig, TxHeap};

    fn store_on(heap: &TxHeap) -> (KvStore, DirectMem<'_>) {
        let mut mem = DirectMem::new(heap);
        let store = KvStore::create(
            &mut mem,
            &KvStoreParams {
                shards: 4,
                expected_keys: 64,
            },
        )
        .unwrap();
        (store, mem)
    }

    #[test]
    fn put_get_delete_round_trip() {
        let heap = TxHeap::new(&TxConfig::small());
        let (store, mut mem) = store_on(&heap);
        assert!(store.put(&mut mem, 1, &[10, 11]).unwrap());
        assert!(store.put(&mut mem, 2, &[20]).unwrap());
        assert!(!store.put(&mut mem, 1, &[12, 13]).unwrap(), "overwrite");
        assert_eq!(store.get(&mut mem, 1).unwrap(), Some(vec![12, 13]));
        assert_eq!(store.get(&mut mem, 2).unwrap(), Some(vec![20]));
        assert_eq!(store.get(&mut mem, 3).unwrap(), None);
        assert_eq!(store.len(&mut mem).unwrap(), 2);
        assert!(store.delete(&mut mem, 1).unwrap());
        assert!(!store.delete(&mut mem, 1).unwrap());
        assert_eq!(store.get(&mut mem, 1).unwrap(), None);
        store.check_consistency(&mut mem).unwrap();
    }

    #[test]
    fn same_length_overwrite_reuses_the_record() {
        let heap = TxHeap::new(&TxConfig::small());
        let (store, mut mem) = store_on(&heap);
        store.put(&mut mem, 5, &[1, 2, 3]).unwrap();
        let used_before = heap.words_allocated();
        store.put(&mut mem, 5, &[4, 5, 6]).unwrap();
        assert_eq!(
            heap.words_allocated(),
            used_before,
            "same-length overwrite must not allocate"
        );
        assert_eq!(store.get(&mut mem, 5).unwrap(), Some(vec![4, 5, 6]));
        // A different length allocates a fresh record and re-points both
        // indexes at it.
        store.put(&mut mem, 5, &[9]).unwrap();
        assert_eq!(store.get(&mut mem, 5).unwrap(), Some(vec![9]));
        store.check_consistency(&mut mem).unwrap();
    }

    #[test]
    fn cas_swaps_only_on_exact_match() {
        let heap = TxHeap::new(&TxConfig::small());
        let (store, mut mem) = store_on(&heap);
        store.put(&mut mem, 7, &[100, 200]).unwrap();
        assert!(!store.cas(&mut mem, 7, &[100, 999], &[0, 0]).unwrap());
        assert!(!store.cas(&mut mem, 7, &[100], &[0]).unwrap(), "wrong len");
        assert!(!store.cas(&mut mem, 8, &[100, 200], &[0, 0]).unwrap());
        assert_eq!(store.get(&mut mem, 7).unwrap(), Some(vec![100, 200]));
        assert!(store.cas(&mut mem, 7, &[100, 200], &[1, 2]).unwrap());
        assert_eq!(store.get(&mut mem, 7).unwrap(), Some(vec![1, 2]));
        // CAS to a different length re-records.
        assert!(store.cas(&mut mem, 7, &[1, 2], &[9, 9, 9]).unwrap());
        assert_eq!(store.get(&mut mem, 7).unwrap(), Some(vec![9, 9, 9]));
        store.check_consistency(&mut mem).unwrap();
    }

    #[test]
    fn scan_returns_ordered_checksummed_ranges() {
        let heap = TxHeap::new(&TxConfig::small());
        let (store, mut mem) = store_on(&heap);
        for key in [5u64, 1, 9, 3, 7] {
            store.put(&mut mem, key, &[key * 2, key * 3]).unwrap();
        }
        let hits = store.scan(&mut mem, 2, 8, 10).unwrap();
        assert_eq!(
            hits,
            vec![
                (3, checksum(&[6, 9])),
                (5, checksum(&[10, 15])),
                (7, checksum(&[14, 21])),
            ]
        );
        // Limit truncates from the front.
        let hits = store.scan(&mut mem, 0, 100, 2).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 1);
        assert_eq!(hits[1].0, 3);
        // Empty range.
        assert!(store.scan(&mut mem, 4, 4, 10).unwrap().is_empty());
    }

    #[test]
    fn open_sees_the_same_store() {
        let heap = TxHeap::new(&TxConfig::small());
        let (store, mut mem) = store_on(&heap);
        store.put(&mut mem, 11, &[1]).unwrap();
        let reopened = KvStore::open(&mut mem, store.dir()).unwrap();
        assert_eq!(reopened.shards(), store.shards());
        assert_eq!(reopened.get(&mut mem, 11).unwrap(), Some(vec![1]));
    }

    #[test]
    fn apply_covers_every_op_kind() {
        let heap = TxHeap::new(&TxConfig::small());
        let (store, mut mem) = store_on(&heap);
        let script = [
            (
                KvOp::Put {
                    key: 1,
                    value: vec![5],
                },
                KvReply::Inserted(true),
            ),
            (KvOp::Get { key: 1 }, KvReply::Value(Some(vec![5]))),
            (
                KvOp::Cas {
                    key: 1,
                    expected: vec![5],
                    new: vec![6],
                },
                KvReply::Swapped(true),
            ),
            (
                KvOp::Scan {
                    lo: 0,
                    hi: 10,
                    limit: 10,
                },
                KvReply::Scan(vec![(1, checksum(&[6]))]),
            ),
            (KvOp::Delete { key: 1 }, KvReply::Removed(true)),
            (KvOp::Get { key: 1 }, KvReply::Value(None)),
        ];
        for (op, want) in script {
            assert_eq!(store.apply(&mut mem, &op).unwrap(), want, "op {op:?}");
        }
    }

    #[test]
    fn empty_value_records_work() {
        let heap = TxHeap::new(&TxConfig::small());
        let (store, mut mem) = store_on(&heap);
        assert!(store.put(&mut mem, 3, &[]).unwrap());
        assert_eq!(store.get(&mut mem, 3).unwrap(), Some(vec![]));
        assert!(store.cas(&mut mem, 3, &[], &[1]).unwrap());
        assert_eq!(store.get(&mut mem, 3).unwrap(), Some(vec![1]));
    }
}
