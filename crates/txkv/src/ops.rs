//! The key-value operation vocabulary shared by [`crate::KvStore`], the
//! sequential [`crate::RefStore`] oracle and the [`crate::KvServer`]
//! front-end.
//!
//! A *batch* is a list of [`KvOp`]s executed as one atomic transaction. Batch
//! execution is defined over a deterministic *plan* ([`plan_batch`]): the
//! operations are partitioned into `groups` shard-groups (by the shard of the
//! key they touch) and applied group by group, preserving submission order
//! inside each group. Under TLSTM each group becomes one speculative task, so
//! a long multi-key batch runs as parallel tasks that commit in plan order;
//! under SwissTM and in the reference oracle the plan is applied sequentially.
//! Because every execution path shares the same plan, identical batches
//! produce identical replies and identical committed state on all three.

/// Number of hash shards is bounded so a shard directory always fits in one
/// small heap block.
pub const MAX_SHARDS: u64 = 1 << 16;

/// One key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Read the value of `key`.
    Get {
        /// The key to read.
        key: u64,
    },
    /// Insert or overwrite `key` with `value`.
    Put {
        /// The key to write.
        key: u64,
        /// The value, as whole words.
        value: Vec<u64>,
    },
    /// Remove `key`.
    Delete {
        /// The key to remove.
        key: u64,
    },
    /// Compare-and-swap: replace the value of `key` with `new` iff the
    /// current value equals `expected` (fails if the key is absent).
    Cas {
        /// The key to update.
        key: u64,
        /// The value the entry must currently hold.
        expected: Vec<u64>,
        /// The replacement value.
        new: Vec<u64>,
    },
    /// Ordered scan of keys in `lo..hi` (up to `limit` entries), returning
    /// `(key, checksum(value))` pairs.
    Scan {
        /// Inclusive lower bound.
        lo: u64,
        /// Exclusive upper bound.
        hi: u64,
        /// Maximum number of entries returned.
        limit: u64,
    },
}

impl KvOp {
    /// The key that determines which shard-group the operation is planned
    /// into. Scans span shards; they are planned by their lower bound.
    pub fn planning_key(&self) -> u64 {
        match self {
            KvOp::Get { key }
            | KvOp::Put { key, .. }
            | KvOp::Delete { key }
            | KvOp::Cas { key, .. } => *key,
            KvOp::Scan { lo, .. } => *lo,
        }
    }
}

/// The reply to one [`KvOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvReply {
    /// Reply to `Get`: the value, if the key was present.
    Value(Option<Vec<u64>>),
    /// Reply to `Put`: `true` if the key was newly inserted.
    Inserted(bool),
    /// Reply to `Delete`: `true` if the key was present.
    Removed(bool),
    /// Reply to `Cas`: `true` if the swap was applied.
    Swapped(bool),
    /// Reply to `Scan`: ascending `(key, checksum(value))` pairs.
    Scan(Vec<(u64, u64)>),
}

/// Maps a key to its shard. This deliberately uses a different mixing
/// constant than `TxHashMap`'s in-shard bucket hash, so shard choice and
/// bucket choice stay uncorrelated.
pub fn shard_of(key: u64, n_shards: u64) -> u64 {
    debug_assert!(n_shards > 0);
    key.wrapping_mul(0xD1B5_4A32_D192_ED03) % n_shards
}

/// Partitions the operations of one batch into `groups` shard-groups.
///
/// Returns one list of operation indices per group; concatenating the groups
/// yields the batch's *plan order* — the order in which the operations are
/// (logically) applied. Operations on the same key always land in the same
/// group, so per-key ordering within a batch is preserved.
pub fn plan_batch(ops: &[KvOp], n_shards: u64, groups: usize) -> Vec<Vec<usize>> {
    let groups = groups.max(1).min(ops.len().max(1));
    let mut plan: Vec<Vec<usize>> = vec![Vec::new(); groups];
    for (index, op) in ops.iter().enumerate() {
        let shard = shard_of(op.planning_key(), n_shards);
        plan[(shard % groups as u64) as usize].push(index);
    }
    plan
}

/// Splits the reply vector of a coalesced batch back into one reply list
/// per original request, given the per-request operation counts. Inverse of
/// concatenating the requests' operations: request order and operation order
/// within each request are preserved.
///
/// # Panics
///
/// Panics if `lens` does not sum to `replies.len()` (a coalescing bug — the
/// transaction produced one reply per operation by construction).
pub fn split_replies(lens: &[usize], replies: Vec<KvReply>) -> Vec<Vec<KvReply>> {
    assert_eq!(
        lens.iter().sum::<usize>(),
        replies.len(),
        "coalesced reply count diverges from the request plan"
    );
    let mut it = replies.into_iter();
    lens.iter()
        .map(|&n| it.by_ref().take(n).collect())
        .collect()
}

/// Seed of the per-value scan checksum.
pub const CHECKSUM_SEED: u64 = 0xCBF2_9CE4_8422_2325;

/// One step of the scan checksum fold (order-sensitive, so torn or reordered
/// values cannot cancel out). Streaming readers fold value words through this
/// directly; [`checksum`] is the whole-slice form.
#[inline]
pub fn checksum_word(acc: u64, word: u64) -> u64 {
    (acc.rotate_left(7) ^ word).wrapping_mul(0x1000_0000_01B3)
}

/// The word checksum scans report per entry.
pub fn checksum(value: &[u64]) -> u64 {
    value
        .iter()
        .fold(CHECKSUM_SEED, |acc, &w| checksum_word(acc, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planning_key_is_the_touched_key() {
        assert_eq!(KvOp::Get { key: 7 }.planning_key(), 7);
        assert_eq!(
            KvOp::Put {
                key: 9,
                value: vec![1]
            }
            .planning_key(),
            9
        );
        assert_eq!(KvOp::Delete { key: 3 }.planning_key(), 3);
        assert_eq!(
            KvOp::Cas {
                key: 4,
                expected: vec![],
                new: vec![]
            }
            .planning_key(),
            4
        );
        assert_eq!(
            KvOp::Scan {
                lo: 10,
                hi: 20,
                limit: 5
            }
            .planning_key(),
            10
        );
    }

    #[test]
    fn plan_partitions_every_op_exactly_once() {
        let ops: Vec<KvOp> = (0..32).map(|k| KvOp::Get { key: k * 13 }).collect();
        let plan = plan_batch(&ops, 8, 4);
        assert_eq!(plan.len(), 4);
        let mut seen: Vec<usize> = plan.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
        // Within a group, submission order is preserved.
        for group in &plan {
            assert!(group.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn same_key_ops_share_a_group() {
        let ops = vec![
            KvOp::Put {
                key: 42,
                value: vec![1],
            },
            KvOp::Get { key: 42 },
            KvOp::Delete { key: 42 },
        ];
        for groups in 1..=4 {
            let plan = plan_batch(&ops, 16, groups);
            let non_empty: Vec<_> = plan.iter().filter(|g| !g.is_empty()).collect();
            assert_eq!(non_empty.len(), 1, "groups={groups}");
            assert_eq!(*non_empty[0], vec![0, 1, 2]);
        }
    }

    #[test]
    fn plan_never_produces_more_groups_than_ops() {
        let ops = vec![KvOp::Get { key: 1 }];
        assert_eq!(plan_batch(&ops, 8, 4).len(), 1);
        assert_eq!(plan_batch(&[], 8, 4).len(), 1);
    }

    #[test]
    fn split_replies_inverts_concatenation() {
        let replies = vec![
            KvReply::Inserted(true),
            KvReply::Value(None),
            KvReply::Removed(false),
        ];
        let split = split_replies(&[1, 0, 2], replies.clone());
        assert_eq!(split.len(), 3);
        assert_eq!(split[0], vec![replies[0].clone()]);
        assert!(split[1].is_empty());
        assert_eq!(split[2], replies[1..].to_vec());
        assert!(split_replies(&[], Vec::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "coalesced reply count")]
    fn split_replies_rejects_mismatched_plan() {
        let _ = split_replies(&[2], vec![KvReply::Inserted(true)]);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(&[1, 2]), checksum(&[2, 1]));
        assert_ne!(checksum(&[]), checksum(&[0]));
        assert_eq!(checksum(&[5, 6, 7]), checksum(&[5, 6, 7]));
    }
}
